"""Figure 1 and Table 2: the cloud-instance landscape and the machines used.

Figure 1 of the paper counts, for each (GPU count, vCPU count) cell, how many
instance types AWS, Azure and GCP offer — the point being that vCPU:GPU ratios
are coarse-grained and high-CPU variants are disproportionately expensive,
which is what motivates reducing the CPU requirement of data loading.  The
catalogue below transcribes the figure's grid (values read from the figure;
they are counts of instance types, not of machines).

Table 2 lists the servers and cloud instances the evaluation runs on, with
on-demand prices; it is generated from :mod:`repro.hardware.instances` so the
cost model used by Figures 11/13 and the table stay consistent.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.base import ExperimentResult
from repro.hardware.instances import machine_catalog

#: vCPU row labels used by Figure 1 (top to bottom in the paper's heat map).
FIGURE1_VCPU_ROWS: Tuple[int, ...] = (96, 64, 48, 32, 24, 16, 8, 4)
#: GPU count column labels.
FIGURE1_GPU_COLS: Tuple[int, ...] = (1, 2, 4, 6, 8, 16)

#: Instance-type counts per (vcpus, gpus) cell, transcribed from Figure 1.
FIGURE1_GRID: Dict[str, Dict[Tuple[int, int], int]] = {
    "aws": {
        (4, 1): 1, (8, 1): 2, (16, 1): 5, (32, 1): 1,
        (48, 1): 2, (96, 1): 2, (48, 4): 2, (96, 4): 4,
        (32, 4): 2, (96, 8): 4, (64, 8): 1, (96, 16): 6,
        (48, 8): 1, (24, 1): 9, (16, 2): 8,
    },
    "azure": {
        (4, 1): 2, (8, 1): 1, (16, 1): 1, (24, 1): 1,
        (32, 1): 2, (48, 4): 1, (96, 4): 1, (96, 8): 1,
    },
    "gcp": {
        (4, 1): 2, (8, 1): 1, (16, 1): 1, (32, 1): 2,
        (48, 1): 2, (96, 1): 1, (16, 2): 2, (32, 2): 1,
        (48, 2): 2, (96, 2): 3, (24, 4): 3, (48, 4): 3,
        (96, 4): 3, (64, 8): 1, (96, 8): 4, (96, 16): 3,
        (48, 8): 3, (64, 4): 3, (64, 2): 1, (64, 1): 1,
    },
}

#: The vCPU:GPU ratios the paper calls out as the common, affordable band.
TYPICAL_VCPU_PER_GPU_RANGE = (4, 12)


def vcpu_gpu_ratio_histogram(provider: str) -> Dict[float, int]:
    """Instance-type count per vCPU:GPU ratio for one provider."""
    grid = FIGURE1_GRID[provider.lower()]
    histogram: Dict[float, int] = {}
    for (vcpus, gpus), count in grid.items():
        ratio = vcpus / gpus
        histogram[ratio] = histogram.get(ratio, 0) + count
    return dict(sorted(histogram.items()))


def run_figure1(fast: bool = False) -> ExperimentResult:
    """Figure 1: cloud instances by vCPU-to-GPU ratio across providers."""
    result = ExperimentResult(
        experiment_id="fig1",
        title="Cloud instances by vCPU:GPU ratio (AWS, Azure, GCP)",
        notes=(
            "Counts of instance types per (vCPU, GPU) cell, transcribed from the "
            "paper's Figure 1.  Most offerings sit at or below 12 vCPUs per GPU, "
            "which is the regime where shared data loading pays off."
        ),
    )
    for provider, grid in FIGURE1_GRID.items():
        total = sum(grid.values())
        low_ratio = sum(
            count for (vcpus, gpus), count in grid.items() if vcpus / gpus <= TYPICAL_VCPU_PER_GPU_RANGE[1]
        )
        result.add_row(
            provider=provider,
            instance_types=total,
            types_at_or_below_12_vcpu_per_gpu=low_ratio,
            share_at_or_below_12=round(low_ratio / total, 2) if total else 0.0,
            max_vcpu_per_gpu=max(v / g for (v, g) in grid),
            min_vcpu_per_gpu=min(v / g for (v, g) in grid),
        )
    return result


def run_table2(fast: bool = False) -> ExperimentResult:
    """Table 2: the evaluation machines and their on-demand prices."""
    result = ExperimentResult(
        experiment_id="tab2",
        title="On-prem servers and cloud instances used in the evaluation",
    )
    for name, spec in machine_catalog().items():
        result.add_row(
            instance=name,
            vcpus=spec.vcpus,
            gpu=spec.gpu.model,
            gpu_count=spec.gpu_count,
            vram_gb=spec.gpu.vram_gb,
            cost_per_hour=spec.cost_per_hour if spec.cost_per_hour is not None else "-",
            vcpus_per_gpu=round(spec.vcpus_per_gpu, 1),
        )
    return result


def cost_ratio(small_instance: str, large_instance: str) -> float:
    """Hourly-cost ratio between two cloud instances (used for savings claims)."""
    catalog = machine_catalog()
    return catalog[large_instance].hourly_cost() / catalog[small_instance].hourly_cost()
