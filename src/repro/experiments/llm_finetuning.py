"""Table 4: Qwen2.5-0.5B fine-tuning on Alpaca (two models, separate A100s).

Setup (paper Section 4.6): two Qwen2.5-0.5B fine-tuning jobs (TorchTune
recipe, batch size 8) run on A100 GPUs 1 and 2; under TensorSocket the
producer lives on GPU 0 so its traffic and memory can be observed separately.
LLM fine-tuning is GPU-bound, so the point of the table is not speedup but
that sharing costs nothing: tokens/s unchanged, data traffic negligible
(~150 KB/s of NVLink), no VRAM overhead on the consumers and ~1.5 GB on the
producer GPU.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, durations
from repro.experiments.harness import DATASET_BYTES
from repro.hardware.instances import A100_SERVER
from repro.training.collocation import CollocationRunner, SharingStrategy
from repro.training.model_zoo import get_model
from repro.training.workload import TrainingWorkload

PAPER_REFERENCE = {
    "baseline": {"tokens_per_s": 7450.0, "pcie_mb_s": 48.0, "vram_gb": 7.3},
    "shared_producer": {"pcie_mb_s": 0.3, "vram_gb": 1.5},
    "shared_consumer": {"tokens_per_s": 7550.0, "pcie_mb_s": 48.0, "nvlink_kb_s": 152.0, "vram_gb": 7.3},
}

BATCH_SIZE = 8
LOADER_WORKERS = 8


def _run(strategy: SharingStrategy, fast: bool):
    model = get_model("Qwen2.5 0.5B")
    consumer_gpus = (1, 2) if strategy is SharingStrategy.TENSORSOCKET else (0, 1)
    workloads = [
        TrainingWorkload(model=model, gpu_index=gpu, batch_size=BATCH_SIZE, name=f"qwen-{i}")
        for i, gpu in enumerate(consumer_gpus)
    ]
    runner = CollocationRunner(
        A100_SERVER,
        strategy=strategy,
        total_loader_workers=LOADER_WORKERS,
        producer_gpu=0,
        dataset_bytes=DATASET_BYTES["alpaca"],
        **durations(fast),
    )
    return runner.run(workloads), consumer_gpus


def run_table4(fast: bool = False) -> ExperimentResult:
    """Reproduce Table 4 (tokens/s, PCIe, NVLink and VRAM per GPU)."""
    result = ExperimentResult(
        experiment_id="tab4",
        title="Qwen2.5-0.5B fine-tuning: training speed, traffic and memory per GPU",
        notes=(
            "LLM fine-tuning is GPU-bound: TensorSocket neither helps nor hurts tokens/s, "
            "its data traffic is negligible next to the training's own PCIe use, and the "
            "only memory cost is a small producer-side allocation (paper Table 4)."
        ),
    )

    baseline, baseline_gpus = _run(SharingStrategy.NONE, fast)
    for index, gpu in enumerate(baseline_gpus):
        workload = baseline.workloads[index]
        result.add_row(
            mode="baseline",
            gpu=gpu,
            role="trainer",
            tokens_per_s=round(workload.tokens_per_second),
            pcie_mb_s=round(baseline.traffic_mb_s[f"pcie{gpu}_mb_s"], 1),
            nvlink_kb_s=0.0,
            vram_gb=round(baseline.gpu_vram_gb[gpu], 1),
            paper_tokens_per_s=PAPER_REFERENCE["baseline"]["tokens_per_s"],
            paper_vram_gb=PAPER_REFERENCE["baseline"]["vram_gb"],
        )

    shared, consumer_gpus = _run(SharingStrategy.TENSORSOCKET, fast)
    result.add_row(
        mode="shared",
        gpu=0,
        role="producer",
        tokens_per_s=0,
        pcie_mb_s=round(shared.traffic_mb_s["pcie0_mb_s"], 2),
        nvlink_kb_s=round(
            sum(v for k, v in shared.traffic_mb_s.items() if k.startswith("nvlink0-")) * 1024, 1
        ),
        vram_gb=round(shared.gpu_vram_gb[0], 1),
        paper_tokens_per_s=0,
        paper_vram_gb=PAPER_REFERENCE["shared_producer"]["vram_gb"],
    )
    for index, gpu in enumerate(consumer_gpus):
        workload = shared.workloads[index]
        nvlink_kb = shared.traffic_mb_s.get(f"nvlink0-{gpu}_mb_s", 0.0) * 1024
        result.add_row(
            mode="shared",
            gpu=gpu,
            role="consumer",
            tokens_per_s=round(workload.tokens_per_second),
            pcie_mb_s=round(shared.traffic_mb_s[f"pcie{gpu}_mb_s"], 1),
            nvlink_kb_s=round(nvlink_kb, 1),
            vram_gb=round(shared.gpu_vram_gb[gpu], 1),
            paper_tokens_per_s=PAPER_REFERENCE["shared_consumer"]["tokens_per_s"],
            paper_vram_gb=PAPER_REFERENCE["shared_consumer"]["vram_gb"],
        )
    return result
