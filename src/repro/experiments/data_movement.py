"""Table 3: data movement for four MobileNet L models on separate A100 GPUs.

The table reports, per GPU, the disk I/O, CPU→GPU PCIe traffic, GPU→GPU NVLink
traffic and GPU memory usage, for conventional loading vs. TensorSocket.  The
paper's headline: the shared producer loads the data once, so disk reads and
per-consumer PCIe traffic collapse and are replaced by NVLink broadcasts from
the producer GPU, at the cost of a small VRAM increase on that GPU.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.harness import make_workloads, run_collocation
from repro.hardware.instances import A100_SERVER
from repro.training.collocation import SharingStrategy

#: Values reported in the paper's Table 3 (MB/s and GB).
PAPER_REFERENCE = {
    "baseline": {
        "disk_mb_s": 613.0,
        "pcie_mb_s_per_gpu": 268.0,
        "nvlink_mb_s_per_gpu": 0.0,
        "vram_gb": 8.5,
    },
    "shared": {
        "disk_mb_s": 161.0,
        "producer_pcie_mb_s": 286.0,
        "consumer_pcie_mb_s": 23.0,
        "nvlink_mb_s_per_consumer": 268.0,
        "producer_vram_gb": 9.8,
        "consumer_vram_gb": 8.4,
    },
}

MODEL = "MobileNet L"
COLLOCATION_DEGREE = 4
TOTAL_WORKERS = 48


def run_table3(fast: bool = False) -> ExperimentResult:
    """Reproduce Table 3 (disk, PCIe, NVLink traffic and VRAM per GPU)."""
    result = ExperimentResult(
        experiment_id="tab3",
        title="Data movement for 4x MobileNet L on separate A100 GPUs",
        notes=(
            "TensorSocket reads and stages each batch once: disk and per-consumer PCIe "
            "traffic drop sharply and are replaced by NVLink broadcasts from GPU 0, with "
            "a small VRAM increase on the producer GPU (paper Table 3)."
        ),
    )

    baseline = run_collocation(
        A100_SERVER,
        make_workloads(MODEL, COLLOCATION_DEGREE, same_gpu=False),
        SharingStrategy.NONE,
        fast=fast,
        total_loader_workers=TOTAL_WORKERS,
    )
    shared = run_collocation(
        A100_SERVER,
        make_workloads(MODEL, COLLOCATION_DEGREE, same_gpu=False),
        SharingStrategy.TENSORSOCKET,
        fast=fast,
        total_loader_workers=TOTAL_WORKERS,
    )

    for gpu in range(COLLOCATION_DEGREE):
        result.add_row(
            mode="baseline",
            gpu=gpu,
            disk_mb_s=round(baseline.traffic_mb_s["disk_read_mb_s"], 1),
            pcie_mb_s=round(baseline.traffic_mb_s[f"pcie{gpu}_mb_s"], 1),
            nvlink_mb_s=0.0,
            vram_gb=round(baseline.gpu_vram_gb[gpu], 1),
            paper_pcie_mb_s=PAPER_REFERENCE["baseline"]["pcie_mb_s_per_gpu"],
            paper_vram_gb=PAPER_REFERENCE["baseline"]["vram_gb"],
        )
    for gpu in range(COLLOCATION_DEGREE):
        nvlink = 0.0
        if gpu != 0:
            nvlink = shared.traffic_mb_s.get(f"nvlink0-{gpu}_mb_s", 0.0)
        else:
            nvlink = sum(
                value
                for key, value in shared.traffic_mb_s.items()
                if key.startswith("nvlink0-")
            )
        result.add_row(
            mode="shared",
            gpu=gpu,
            disk_mb_s=round(shared.traffic_mb_s["disk_read_mb_s"], 1),
            pcie_mb_s=round(shared.traffic_mb_s[f"pcie{gpu}_mb_s"], 1),
            nvlink_mb_s=round(nvlink, 1),
            vram_gb=round(shared.gpu_vram_gb[gpu], 1),
            paper_pcie_mb_s=(
                PAPER_REFERENCE["shared"]["producer_pcie_mb_s"]
                if gpu == 0
                else PAPER_REFERENCE["shared"]["consumer_pcie_mb_s"]
            ),
            paper_vram_gb=(
                PAPER_REFERENCE["shared"]["producer_vram_gb"]
                if gpu == 0
                else PAPER_REFERENCE["shared"]["consumer_vram_gb"]
            ),
        )
    return result
