"""Figure 9: throughput vs. degree of collocation for MobileNet Small / Large.

Setup (paper Section 4.2, "Degree of collocation"): 1 to 4 instances of the
same model, each on its own A100 GPU, with the 48-core worker budget split
across the collocated training processes.  The small MobileNet relies on
TensorSocket to keep its throughput as the per-process CPU share shrinks; the
large MobileNet is GPU-bound and barely affected either way.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.harness import make_workloads, run_collocation
from repro.hardware.instances import A100_SERVER
from repro.training.collocation import SharingStrategy

PAPER_REFERENCE = {
    "MobileNet S": "non-shared throughput decays with collocation degree; shared stays ~flat near 3.9k samples/s",
    "MobileNet L": "both modes flat near 1.3k samples/s (GPU-bound)",
}

MODELS = ("MobileNet S", "MobileNet L")
DEGREES = (1, 2, 3, 4)
TOTAL_WORKERS = 48


def run_figure9(fast: bool = False) -> ExperimentResult:
    """Reproduce Figure 9 (per-model throughput vs. collocation degree)."""
    result = ExperimentResult(
        experiment_id="fig9",
        title="Per-model throughput of MobileNet S/L with increasing collocation degree",
        notes=(
            "Each collocated model trains on its own A100; the 48-worker budget is split "
            "across the training processes under conventional loading, so the small model "
            "starves as the degree grows while TensorSocket holds its throughput."
        ),
    )
    degrees = DEGREES if not fast else (1, 4)
    for display_name in MODELS:
        for degree in degrees:
            baseline = run_collocation(
                A100_SERVER,
                make_workloads(display_name, degree, same_gpu=False),
                SharingStrategy.NONE,
                fast=fast,
                total_loader_workers=TOTAL_WORKERS,
            )
            shared = run_collocation(
                A100_SERVER,
                make_workloads(display_name, degree, same_gpu=False),
                SharingStrategy.TENSORSOCKET,
                fast=fast,
                total_loader_workers=TOTAL_WORKERS,
            )
            result.add_row(
                model=display_name,
                collocation_degree=degree,
                non_shared_samples_per_s=round(baseline.per_model_samples_per_second, 1),
                shared_samples_per_s=round(shared.per_model_samples_per_second, 1),
                speedup=round(
                    shared.per_model_samples_per_second
                    / max(baseline.per_model_samples_per_second, 1e-9),
                    2,
                ),
            )
    return result
