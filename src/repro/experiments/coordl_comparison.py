"""Figure 14: comparison against CoorDL (normalized CPU and throughput scaling).

Setup (paper Section 4.7): 1 to 4 ResNet18 models, each on its own A100, batch
size 512, four data-loading workers, automatic mixed precision disabled (so
the GPU ceiling is lower than in Figure 8).  Because CoorDL's codebase is tied
to Python 3.6 / PyTorch 1, the paper normalizes every technique by its own
single-model (1x) value rather than comparing absolute numbers; this driver
reports the same normalized quantities.

Expected shape: both CoorDL and TensorSocket hold per-model throughput at 1.0
as collocation grows while the baseline collapses to ~0.25 at 4x; CoorDL's
normalized CPU utilization climbs toward ~1.5x while TensorSocket stays near
1.0 (and the baseline, whose fixed worker pool is already saturated, also
stays near 1.0).

Beyond the simulated comparison, the driver also *runs the real epoch cache*
(``repro.cache`` — the CoorDL-style reuse regime implemented on TensorSocket's
shared-memory path): a small multi-epoch run with an expensive transform,
reporting epoch-0 vs cached-epoch throughput and the cache's hit/miss
counters.  That turns the CoorDL row from a purely simulated claim into a
measured one on this library's own hot path.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.base import ExperimentResult
from repro.experiments.harness import make_workloads, measure_epoch_throughput, run_collocation
from repro.hardware.instances import A100_SERVER
from repro.training.collocation import SharingStrategy

PAPER_REFERENCE = {
    "baseline_throughput_4x": 0.25,
    "tensorsocket_throughput_4x": 1.0,
    "coordl_throughput_4x": 1.0,
    "baseline_cpu_4x": 1.0,
    "tensorsocket_cpu_4x": 1.05,
    "coordl_cpu_4x": 1.5,
}

MODEL = "ResNet18"
BATCH_SIZE = 512
TOTAL_WORKERS = 4
DEGREES = (1, 2, 3, 4)

STRATEGIES = {
    "baseline": SharingStrategy.NONE,
    "tensorsocket": SharingStrategy.TENSORSOCKET,
    "coordl": SharingStrategy.COORDL,
}


def run_real_epoch_cache(fast: bool = False) -> Dict[str, object]:
    """Measure the real epoch cache: epoch 0 loads, epoch 1+ republishes.

    Returns per-epoch batches/sec from an actual ``repro.serve(...,
    cache="all")`` session with a deliberately expensive transform (the
    regime where CoorDL-style caching pays), plus the cache counters.
    """
    import repro
    from repro.data import DataLoader, SyntheticImageDataset
    from repro.data.transforms import Compose, DecodeJpeg, Normalize, SleepTransform, ToTensor

    n_items = 32 if fast else 96
    batch_size = 4
    epochs = 2 if fast else 3
    seconds_per_item = 0.001 if fast else 0.002

    dataset = SyntheticImageDataset(n_items, image_size=16, payload_bytes=32)
    loader = DataLoader(
        dataset,
        batch_size=batch_size,
        transform=SleepTransform(
            Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()]),
            seconds_per_item=seconds_per_item,
        ),
    )
    session = repro.serve(
        loader,
        address="inproc://fig14-real-cache",
        epochs=epochs,
        cache="all",
        poll_interval=0.002,
        start=False,
    )
    epoch_rate, _ = measure_epoch_throughput(
        session, epochs=epochs, batches_per_epoch=n_items // batch_size
    )
    stats = session.stats()["producer"]
    session.shutdown()
    epoch0 = epoch_rate.get(0, 0.0)
    cached = min((rate for e, rate in epoch_rate.items() if e >= 1), default=0.0)
    return {
        "real_cache": "inproc",
        "epoch0_batches_per_s": round(epoch0, 1),
        "cached_epoch_batches_per_s": round(cached, 1),
        "real_cache_speedup_x": round(cached / epoch0, 2) if epoch0 else 0.0,
        "cache_hits": stats["cache"]["hits"],
        "cache_misses": stats["cache"]["misses"],
    }


def run_figure14(fast: bool = False) -> ExperimentResult:
    """Reproduce Figure 14 (normalized CPU utilization and per-model throughput)."""
    result = ExperimentResult(
        experiment_id="fig14",
        title="CoorDL vs. TensorSocket vs. baseline: scaling with collocation degree",
        notes=(
            "Values are normalized to each technique's own single-model run, as in the "
            "paper.  CoorDL matches TensorSocket's throughput but needs progressively more "
            "CPU; the baseline's fixed worker pool makes its throughput collapse."
        ),
    )
    degrees = DEGREES if not fast else (1, 4)
    single_model: Dict[str, object] = {}
    for label, strategy in STRATEGIES.items():
        single_model[label] = run_collocation(
            A100_SERVER,
            make_workloads(MODEL, 1, same_gpu=False, batch_size=BATCH_SIZE),
            strategy,
            fast=fast,
            total_loader_workers=TOTAL_WORKERS,
        )

    for degree in degrees:
        row = {"collocation_degree": degree}
        for label, strategy in STRATEGIES.items():
            if degree == 1:
                run = single_model[label]
            else:
                run = run_collocation(
                    A100_SERVER,
                    make_workloads(MODEL, degree, same_gpu=False, batch_size=BATCH_SIZE),
                    strategy,
                    fast=fast,
                    total_loader_workers=TOTAL_WORKERS,
                )
            base = single_model[label]
            row[f"{label}_throughput_x"] = round(
                run.per_model_samples_per_second / max(base.per_model_samples_per_second, 1e-9), 2
            )
            row[f"{label}_cpu_x"] = round(
                run.cpu_utilization_percent / max(base.cpu_utilization_percent, 1e-9), 2
            )
        result.add_row(**row)

    # The real (non-simulated) epoch cache, measured on this library's own
    # shared-memory hot path: CoorDL's reuse regime as an executable claim.
    result.add_row(**run_real_epoch_cache(fast=fast))
    return result
