"""Figure 11: CLMR audio classification on AWS G5 instances.

Setup (paper Section 4.3): four CLMR training processes collocated on the
single A10G GPU of a g5.2xlarge (8 vCPU), g5.4xlarge (16 vCPU) and g5.8xlarge
(32 vCPU), with and without TensorSocket, and under both MPS and multi-stream
GPU sharing.  The raw-waveform augmentation pipeline is so CPU-hungry that the
non-shared configuration collapses on the 8-vCPU instance; TensorSocket feeds
all four models from one loader, so even the smallest instance sustains full
throughput — a ~75% reduction in required vCPUs and ~50% lower cloud cost.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.harness import make_workloads, run_collocation
from repro.hardware.gpu import GpuSharingMode
from repro.hardware.instances import aws_g5_instances
from repro.training.collocation import SharingStrategy

PAPER_REFERENCE = {
    "shape": (
        "non-shared throughput drops drastically at 8 vCPUs and only reaches parity at "
        "32 vCPUs; shared loading holds ~55-60 samples/s per model on every instance; "
        "MPS adds a little over multi-streams"
    ),
    "cost_saving": "~50% (g5.2xlarge shared ≈ g5.8xlarge non-shared at half the price)",
}

COLLOCATION_DEGREE = 4


def run_figure11(fast: bool = False) -> ExperimentResult:
    """Reproduce Figure 11 (CLMR per-model samples/s across G5 instance sizes)."""
    result = ExperimentResult(
        experiment_id="fig11",
        title="CLMR 4-way collocation on AWS G5 instances (per-model samples/s)",
        notes=(
            "Per-model throughput with/without TensorSocket under MPS and multi-stream GPU "
            "sharing.  The samples-per-dollar column quantifies the paper's ~50% cloud-cost "
            "saving from running the shared loader on the smallest instance."
        ),
    )
    modes = (GpuSharingMode.MPS, GpuSharingMode.MULTI_STREAM)
    if fast:
        modes = (GpuSharingMode.MPS,)
    for spec in aws_g5_instances():
        for mode in modes:
            for strategy in (SharingStrategy.NONE, SharingStrategy.TENSORSOCKET):
                run = run_collocation(
                    spec,
                    make_workloads("CLMR", COLLOCATION_DEGREE, same_gpu=True),
                    strategy,
                    fast=fast,
                    total_loader_workers=spec.vcpus,
                    sharing_mode=mode,
                )
                result.add_row(
                    instance=spec.name,
                    vcpus=spec.vcpus,
                    gpu_sharing=str(mode),
                    strategy=str(strategy),
                    per_model_samples_per_s=round(run.per_model_samples_per_second, 1),
                    aggregate_samples_per_s=round(run.aggregate_samples_per_second, 1),
                    cpu_percent=round(run.cpu_utilization_percent, 1),
                    cost_per_hour=spec.cost_per_hour,
                    samples_per_dollar=round(run.samples_per_dollar() or 0.0),
                )
    return result


def cost_saving_summary(result: ExperimentResult) -> dict:
    """The paper's cost argument: shared small instance vs. non-shared large one."""
    shared_small = result.row_where(
        instance="g5.2xlarge", gpu_sharing="mps", strategy="tensorsocket"
    )
    nonshared_large = result.row_where(
        instance="g5.8xlarge", gpu_sharing="mps", strategy="none"
    )
    throughput_ratio = (
        shared_small["aggregate_samples_per_s"] / nonshared_large["aggregate_samples_per_s"]
        if nonshared_large["aggregate_samples_per_s"]
        else float("inf")
    )
    cost_ratio = shared_small["cost_per_hour"] / nonshared_large["cost_per_hour"]
    return {
        "throughput_ratio": round(throughput_ratio, 2),
        "cost_ratio": round(cost_ratio, 2),
        "cost_saving_percent": round(100 * (1 - cost_ratio), 1),
    }
