"""Figure 15: comparison against Joader on the H100 server.

Setup (paper Section 4.7): 1 to 8 MobileNetV3-Small models collocated on the
single H100 GPU under MPS, with the data-loading worker budget capped at 8
across all collocated loaders.  The baseline's per-model throughput collapses
roughly as 1/k; TensorSocket holds ~1.1k samples/s per model up to 6-way
collocation and only dips at 7-8x; Joader sits in between — its shared loading
beats the baseline but the per-iteration dependent-sampling cost grows with
the number of jobs.

The paper's measured values (samples/s per model) are embedded below so the
benchmark can print paper-vs-measured rows.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.harness import make_workloads, run_collocation
from repro.hardware.instances import H100_SERVER
from repro.training.collocation import SharingStrategy

#: Per-model samples/s from the paper's Figure 15.
PAPER_REFERENCE = {
    "baseline": {1: 1128, 2: 577, 3: 391, 4: 295, 5: 222, 6: 187, 7: 159, 8: 137},
    "tensorsocket": {1: 1141, 2: 1116, 3: 1099, 4: 1113, 5: 1104, 6: 1112, 7: 1075, 8: 965},
    "joader": {1: 983, 2: 733, 3: 557, 4: 437, 5: 414, 6: 374, 7: 324, 8: 287},
}

MODEL = "MobileNet S"
TOTAL_WORKERS = 8
DEGREES = (1, 2, 3, 4, 5, 6, 7, 8)

STRATEGIES = {
    "baseline": SharingStrategy.NONE,
    "tensorsocket": SharingStrategy.TENSORSOCKET,
    "joader": SharingStrategy.JOADER,
}


def run_figure15(fast: bool = False) -> ExperimentResult:
    """Reproduce Figure 15 (per-model samples/s for 1-8 collocated MobileNet S)."""
    result = ExperimentResult(
        experiment_id="fig15",
        title="Baseline vs. Joader vs. TensorSocket under constrained CPU (H100)",
        notes=(
            "Per-model training throughput with 8 loader workers shared across all "
            "collocated models on one H100 GPU.  paper_* columns are the values read "
            "from the paper's Figure 15."
        ),
    )
    degrees = DEGREES if not fast else (1, 4, 8)
    for degree in degrees:
        row = {"collocation_degree": degree}
        for label, strategy in STRATEGIES.items():
            run = run_collocation(
                H100_SERVER,
                make_workloads(MODEL, degree, same_gpu=True),
                strategy,
                fast=fast,
                total_loader_workers=TOTAL_WORKERS,
            )
            row[f"{label}_samples_per_s"] = round(run.per_model_samples_per_second, 1)
            row[f"paper_{label}"] = PAPER_REFERENCE[label][degree]
        result.add_row(**row)
    return result
