"""Figure 10: flexible batch sizing vs. default operation.

Setup (paper Section 4.2, "Flexible batching"): three MobileNet Small models
collocated on the H100 GPU.  In the default mode every consumer uses batch
size 128; in flexible mode the consumers request 128, 192 and 224 (the
proportions of Figure 5's example).  The paper's finding: flexible batching
sustains training throughput while adding only a small CPU orchestration
overhead.

This driver reports both the simulated end-to-end run and the analytic
repetition cost of the slicing plan (from
:mod:`repro.core.flexible_batch`), which is the design-level quantity Figure 5
illustrates.
"""

from __future__ import annotations

from repro.core.flexible_batch import FlexibleBatcher, recommend_producer_batch_size
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import run_collocation
from repro.hardware.instances import H100_SERVER
from repro.training.collocation import SharingStrategy
from repro.training.model_zoo import get_model
from repro.training.workload import TrainingWorkload

PAPER_REFERENCE = {
    "throughput": "flexible ≈ default (Figure 10a)",
    "cpu": "flexible adds only a small CPU overhead (Figure 10b)",
}

DEFAULT_BATCH = 128
FLEXIBLE_BATCHES = (128, 192, 224)
TOTAL_WORKERS = 24


def _workloads(batch_sizes) -> list:
    model = get_model("MobileNet S")
    return [
        TrainingWorkload(model=model, gpu_index=0, batch_size=bs, name=f"mobilenet_s-{i}")
        for i, bs in enumerate(batch_sizes)
    ]


def run_figure10(fast: bool = False) -> ExperimentResult:
    """Reproduce Figure 10 (default vs. flexible batch sizing on the H100)."""
    result = ExperimentResult(
        experiment_id="fig10",
        title="Default vs. flexible batch sizing (3x MobileNet S on the H100 server)",
        notes=(
            "Aggregate throughput and CPU utilization for identical batch sizes (128) vs. "
            "consumer-specific batch sizes (128/192/224) served from sliced producer batches."
        ),
    )

    default = run_collocation(
        H100_SERVER,
        _workloads([DEFAULT_BATCH] * 3),
        SharingStrategy.TENSORSOCKET,
        fast=fast,
        total_loader_workers=TOTAL_WORKERS,
        flexible_batching=False,
    )
    flexible = run_collocation(
        H100_SERVER,
        _workloads(FLEXIBLE_BATCHES),
        SharingStrategy.TENSORSOCKET,
        fast=fast,
        total_loader_workers=TOTAL_WORKERS,
        flexible_batching=True,
    )
    result.add_row(
        mode="default",
        batch_sizes="128/128/128",
        aggregate_samples_per_s=round(default.aggregate_samples_per_second, 1),
        cpu_percent=round(default.cpu_utilization_percent, 1),
    )
    result.add_row(
        mode="flexible",
        batch_sizes="/".join(str(b) for b in FLEXIBLE_BATCHES),
        aggregate_samples_per_s=round(flexible.aggregate_samples_per_second, 1),
        cpu_percent=round(flexible.cpu_utilization_percent, 1),
    )

    # Design-level accounting: how much data repetition the flexible plan costs.
    sizes = {f"consumer-{i}": bs for i, bs in enumerate(FLEXIBLE_BATCHES)}
    producer_batch = recommend_producer_batch_size(list(sizes.values()))
    batcher = FlexibleBatcher(producer_batch, sizes)
    for consumer, share in batcher.repetition_report().items():
        result.add_row(
            mode="repetition",
            batch_sizes=f"{consumer} (bs={sizes[consumer]})",
            aggregate_samples_per_s=0.0,
            cpu_percent=0.0,
            producer_batch=producer_batch,
            repeated_share=round(share, 3),
        )
    return result
