"""Figure 12: online DALL-E 2 diffusion-prior training on the H100 server.

Setup (paper Section 4.4): 1-, 2- and 4-way collocation of DALL-E 2
diffusion-prior training on one H100.  Training is *online*: every batch first
passes through a frozen CLIP model that produces the image/text embeddings the
prior trains on.  Without sharing, each collocated process runs its own CLIP
inference; with TensorSocket the CLIP step moves into the producer and runs
once per batch, so sharing saves GPU work, not just CPU work.

The paper reports 10-15% higher aggregate throughput at 2- and 4-way
collocation.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.harness import make_workloads, run_collocation
from repro.hardware.instances import H100_SERVER
from repro.training.collocation import SharingStrategy

PAPER_REFERENCE = {
    1: "shared ≈ non-shared (nothing to deduplicate with a single trainer)",
    2: "shared 10-15% faster in aggregate",
    4: "shared 10-15% faster in aggregate",
}

DEGREES = (1, 2, 4)
TOTAL_WORKERS = 20


def run_figure12(fast: bool = False) -> ExperimentResult:
    """Reproduce Figure 12 (aggregate and per-model samples/s vs. collocation)."""
    result = ExperimentResult(
        experiment_id="fig12",
        title="Online DALL-E 2 training with shared CLIP inference (H100)",
        notes=(
            "TensorSocket moves the frozen CLIP embedding step into the producer so it "
            "runs once per batch regardless of how many diffusion priors are collocated — "
            "sharing work on the GPU, not only on the CPU (paper Section 4.4)."
        ),
    )
    degrees = DEGREES if not fast else (1, 4)
    for degree in degrees:
        baseline = run_collocation(
            H100_SERVER,
            make_workloads("DALL-E 2", degree, same_gpu=True),
            SharingStrategy.NONE,
            fast=fast,
            total_loader_workers=TOTAL_WORKERS,
        )
        shared = run_collocation(
            H100_SERVER,
            make_workloads("DALL-E 2", degree, same_gpu=True),
            SharingStrategy.TENSORSOCKET,
            fast=fast,
            total_loader_workers=TOTAL_WORKERS,
        )
        result.add_row(
            collocation_degree=degree,
            non_shared_aggregate=round(baseline.aggregate_samples_per_second, 1),
            shared_aggregate=round(shared.aggregate_samples_per_second, 1),
            non_shared_per_model=round(baseline.per_model_samples_per_second, 1),
            shared_per_model=round(shared.per_model_samples_per_second, 1),
            aggregate_speedup=round(
                shared.aggregate_samples_per_second
                / max(baseline.aggregate_samples_per_second, 1e-9),
                3,
            ),
            non_shared_gpu_percent=round(baseline.gpu_utilization_percent[0], 1),
            shared_gpu_percent=round(shared.gpu_utilization_percent[0], 1),
            paper=PAPER_REFERENCE[degree],
        )
    return result
