"""Ablations of TensorSocket's design choices (DESIGN.md Section 5).

These are not figures from the paper; they probe the design decisions the
paper motivates qualitatively:

* consumer batch-buffer depth (the paper states a buffer of two is enough),
* MPS vs. multi-stream vs. exclusive GPU sharing (Section 3.2.5 / Figure 11),
* pointer-handle delivery vs. byte-copy delivery (Section 3.2.4),
* producer-batch to consumer-batch size ratio vs. data repetition
  (Section 3.2.6's "at least twice the largest consumer batch" guidance),
* the rubberband join window (Section 3.2.5).
"""

from __future__ import annotations

import numpy as np

from repro.core.flexible_batch import plan_slices
from repro.core.rubberband import JoinDecision, RubberbandPolicy
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import make_workloads, run_collocation
from repro.hardware.gpu import GpuSharingMode
from repro.hardware.instances import AWS_G5_2XLARGE
from repro.tensor.payload import TensorPayload
from repro.tensor.shared_memory import SharedMemoryPool
from repro.tensor.tensor import from_numpy
from repro.training.collocation import SharingStrategy
from repro.training.model_zoo import get_model
from repro.training.workload import TrainingWorkload


def run_ablation_buffer_size(fast: bool = False) -> ExperimentResult:
    """Consumer batch-buffer depth: 1, 2, 4 and 8 outstanding batches.

    Uses a mixed workload (two models of different complexity on one GPU),
    which is where drift tolerance matters.  The paper's claim: two batches
    already give maximum throughput for similar tasks; deeper buffers only
    add GPU memory.
    """
    result = ExperimentResult(
        experiment_id="ablation_buffer",
        title="Effect of the consumer batch-buffer depth",
    )
    models = [get_model("RegNetX 2"), get_model("RegNetX 4")]
    sizes = (1, 2, 4, 8) if not fast else (1, 2)
    for buffer_size in sizes:
        workloads = [
            TrainingWorkload(model=m, gpu_index=0, name=f"{m.name}") for m in models
        ]
        run = run_collocation(
            AWS_G5_2XLARGE,
            workloads,
            SharingStrategy.TENSORSOCKET,
            fast=fast,
            total_loader_workers=AWS_G5_2XLARGE.vcpus,
            buffer_size=buffer_size,
        )
        result.add_row(
            buffer_size=buffer_size,
            aggregate_samples_per_s=round(run.aggregate_samples_per_second, 1),
            gpu0_vram_gb=round(run.gpu_vram_gb[0], 2),
        )
    return result


def run_ablation_gpu_sharing(fast: bool = False) -> ExperimentResult:
    """MPS vs. multi-stream vs. exclusive process sharing on one GPU."""
    result = ExperimentResult(
        experiment_id="ablation_gpu_sharing",
        title="GPU sharing primitive under 4-way collocation (CLMR on g5.8xlarge-class GPU)",
    )
    modes = (GpuSharingMode.MPS, GpuSharingMode.MULTI_STREAM, GpuSharingMode.EXCLUSIVE)
    if fast:
        modes = (GpuSharingMode.MPS, GpuSharingMode.MULTI_STREAM)
    for mode in modes:
        run = run_collocation(
            AWS_G5_2XLARGE,
            make_workloads("CLMR", 4, same_gpu=True),
            SharingStrategy.TENSORSOCKET,
            fast=fast,
            total_loader_workers=AWS_G5_2XLARGE.vcpus,
            sharing_mode=mode,
        )
        result.add_row(
            sharing_mode=str(mode),
            per_model_samples_per_s=round(run.per_model_samples_per_second, 1),
            aggregate_samples_per_s=round(run.aggregate_samples_per_second, 1),
        )
    return result


def run_ablation_delivery_mode(fast: bool = False) -> ExperimentResult:
    """Pointer-handle delivery vs. byte-copy delivery (real library measurement).

    Packs an ImageNet-sized batch both ways and reports the bytes that travel
    on the wire per batch — the quantity Section 3.2.4 argues must stay small
    for sharing to pay off.
    """
    result = ExperimentResult(
        experiment_id="ablation_delivery",
        title="Wire bytes per batch: pointer handles vs. byte copies",
    )
    pool = SharedMemoryPool()
    batch_sizes = (32, 128, 512) if not fast else (32, 128)
    try:
        for batch_size in batch_sizes:
            images = np.zeros((batch_size, 3, 224, 224), dtype=np.float32)
            labels = np.zeros(batch_size, dtype=np.int64)
            shared_img = pool.share_tensor(from_numpy(images))
            shared_lbl = pool.share_tensor(from_numpy(labels))
            pointer_bytes = (
                TensorPayload.from_shared(shared_img).payload_nbytes
                + TensorPayload.from_shared(shared_lbl).payload_nbytes
            )
            copy_bytes = (
                TensorPayload.inline(from_numpy(images)).payload_nbytes
                + TensorPayload.inline(from_numpy(labels)).payload_nbytes
            )
            result.add_row(
                batch_size=batch_size,
                pointer_wire_bytes=pointer_bytes,
                byte_copy_wire_bytes=copy_bytes,
                reduction_factor=round(copy_bytes / pointer_bytes, 1),
            )
            pool.release(shared_img.segment.name)
            pool.release(shared_lbl.segment.name)
    finally:
        pool.shutdown()
    return result


def run_ablation_producer_batch(fast: bool = False) -> ExperimentResult:
    """Producer-batch size vs. repeated-data share under flexible batching."""
    result = ExperimentResult(
        experiment_id="ablation_producer_batch",
        title="Repetition share vs. producer-batch / consumer-batch size ratio",
        notes="The paper recommends producer batches at least 2x the largest consumer batch.",
    )
    consumer_batch = 224
    ratios = (1.0, 1.5, 2.0, 3.0, 4.0) if not fast else (1.0, 2.0, 4.0)
    for ratio in ratios:
        producer_batch = int(consumer_batch * ratio)
        plan = plan_slices(producer_batch, consumer_batch)
        result.add_row(
            ratio=ratio,
            producer_batch=producer_batch,
            consumer_batch=consumer_batch,
            repeated_rows=plan.repeated_rows,
            repeated_share=round(plan.repeated_share, 3),
            bound_holds=plan.repeated_rows <= consumer_batch - 1,
        )
    return result


def run_ablation_rubberband(fast: bool = False) -> ExperimentResult:
    """Rubberband window size vs. how long a late joiner waits for data.

    For a consumer joining after J of B batches, a window of w admits it
    immediately (it replays the J missed batches) while J < w*B — strictly
    before the window has been fully iterated, per the paper's "before 2%"
    rule — otherwise it waits for the remaining (B - J) batches of the epoch
    to finish first.
    """
    result = ExperimentResult(
        experiment_id="ablation_rubberband",
        title="Rubberband window vs. admission of late-joining consumers",
    )
    batches_per_epoch = 1000
    join_points = (5, 20, 100, 500) if not fast else (5, 100)
    for window in (0.0, 0.02, 0.10):
        policy = RubberbandPolicy(window, batches_per_epoch)
        for join_at in join_points:
            decision = policy.decide(f"probe-{window}-{join_at}", join_at)
            batches_until_data = 0 if decision is not JoinDecision.WAIT_FOR_NEXT_EPOCH else (
                batches_per_epoch - join_at
            )
            result.add_row(
                window_fraction=window,
                join_after_batches=join_at,
                decision=str(decision),
                batches_until_training_starts=batches_until_data,
            )
    return result
