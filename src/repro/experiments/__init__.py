"""Experiment drivers: one per figure and table of the paper's evaluation.

Every driver follows the same contract:

* ``run_*(fast=False)`` builds the workloads and machines for that experiment,
  runs the collocation simulator once per configuration, and returns an
  :class:`~repro.experiments.base.ExperimentResult` whose rows mirror the
  figure's series / the table's cells,
* ``PAPER_REFERENCE`` in each module records the values (or qualitative
  shapes) the paper reports, so the benchmark harness can print
  paper-vs-measured side by side (see ``EXPERIMENTS.md``),
* ``fast=True`` shortens the simulated duration so the whole suite can run in
  seconds (used by tests); default durations match the benchmark harness.

The registry in :data:`EXPERIMENTS` maps experiment ids (``fig8``, ``tab3``,
...) to their drivers so ``python -m repro.experiments`` can run any subset.
"""

from repro.experiments.base import ExperimentResult, format_table
from repro.experiments.cloud_catalog import run_figure1, run_table2
from repro.experiments.image_classification import run_figure8
from repro.experiments.data_movement import run_table3
from repro.experiments.collocation_scaling import run_figure9
from repro.experiments.flexible_batching import run_figure10
from repro.experiments.audio_classification import run_figure11
from repro.experiments.image_generation import run_figure12
from repro.experiments.model_selection import run_figure13
from repro.experiments.llm_finetuning import run_table4
from repro.experiments.coordl_comparison import run_figure14
from repro.experiments.joader_comparison import run_figure15
from repro.experiments.ablations import (
    run_ablation_buffer_size,
    run_ablation_delivery_mode,
    run_ablation_gpu_sharing,
    run_ablation_producer_batch,
    run_ablation_rubberband,
)

EXPERIMENTS = {
    "fig1": run_figure1,
    "tab2": run_table2,
    "fig8": run_figure8,
    "tab3": run_table3,
    "fig9": run_figure9,
    "fig10": run_figure10,
    "fig11": run_figure11,
    "fig12": run_figure12,
    "fig13": run_figure13,
    "tab4": run_table4,
    "fig14": run_figure14,
    "fig15": run_figure15,
    "ablation_buffer": run_ablation_buffer_size,
    "ablation_gpu_sharing": run_ablation_gpu_sharing,
    "ablation_delivery": run_ablation_delivery_mode,
    "ablation_producer_batch": run_ablation_producer_batch,
    "ablation_rubberband": run_ablation_rubberband,
}

__all__ = [
    "ExperimentResult",
    "format_table",
    "EXPERIMENTS",
    "run_figure1",
    "run_table2",
    "run_figure8",
    "run_table3",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_figure13",
    "run_table4",
    "run_figure14",
    "run_figure15",
    "run_ablation_buffer_size",
    "run_ablation_gpu_sharing",
    "run_ablation_delivery_mode",
    "run_ablation_producer_batch",
    "run_ablation_rubberband",
]
