"""Small helpers shared by the experiment drivers."""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.base import durations
from repro.hardware.gpu import GpuSharingMode
from repro.hardware.instances import MachineSpec
from repro.hardware.metrics import GB
from repro.training.collocation import CollocationResult, CollocationRunner, SharingStrategy
from repro.training.model_zoo import ModelProfile, get_model
from repro.training.workload import TrainingWorkload

#: On-disk dataset sizes (bytes) used for storage / page-cache modeling.
DATASET_BYTES = {
    "imagenet": 145 * GB,
    "librispeech": 60 * GB,
    "cc3m": 420 * GB,
    "alpaca": int(0.05 * GB),
}


def make_workloads(
    model: str | ModelProfile,
    count: int,
    *,
    same_gpu: bool = False,
    batch_size: Optional[int] = None,
    start_delays: Optional[Sequence[float]] = None,
) -> List[TrainingWorkload]:
    """``count`` copies of one model, on separate GPUs or collocated on GPU 0."""
    profile = get_model(model) if isinstance(model, str) else model
    workloads = []
    for index in range(count):
        workloads.append(
            TrainingWorkload(
                model=profile,
                gpu_index=0 if same_gpu else index,
                batch_size=batch_size,
                name=f"{profile.name}-{index}",
                start_delay_s=start_delays[index] if start_delays else 0.0,
            )
        )
    return workloads


def run_collocation(
    spec: MachineSpec,
    workloads: Sequence[TrainingWorkload],
    strategy: SharingStrategy,
    *,
    fast: bool = False,
    total_loader_workers: Optional[int] = None,
    sharing_mode: GpuSharingMode = GpuSharingMode.MPS,
    producer_gpu: int = 0,
    buffer_size: int = 2,
    flexible_batching: bool = False,
    address: Optional[str] = None,
) -> CollocationResult:
    """Run one configuration with experiment-standard durations and dataset sizing.

    The run's loading pipeline is served at a ``sim://`` endpoint and trainers
    attach by address; pass ``address=`` to pin it, otherwise a unique one is
    generated per run.
    """
    dataset = workloads[0].model.dataset
    runner = CollocationRunner(
        spec,
        strategy=strategy,
        sharing_mode=sharing_mode,
        total_loader_workers=total_loader_workers,
        producer_gpu=producer_gpu,
        buffer_size=buffer_size,
        flexible_batching=flexible_batching,
        dataset_bytes=DATASET_BYTES.get(dataset, 100 * GB),
        address=address,
        **durations(fast),
    )
    return runner.run(list(workloads))


def observability_probe() -> Dict[str, object]:
    """Batch-latency percentiles and stall attribution from the obs registry.

    The registry-backed companion to :func:`measure_epoch_throughput`: the
    wall-clock harness times epochs from the outside, this probe reads what
    the instrumented data plane recorded on the inside (per-batch
    sampled->acked latency, per-phase stall seconds).  Returns ``{}``-valued
    entries when nothing was recorded (observability disabled or no batches
    flowed in this process).
    """
    from repro.obs.metrics import REGISTRY
    from repro.obs.stall import attribution

    probe: Dict[str, object] = {"stall": attribution(REGISTRY)}
    latency = REGISTRY.get("repro.consumer.batch_latency_seconds")
    if latency is not None and latency.count():
        probe["batch_latency_seconds"] = latency.snapshot()
    return probe


def measure_epoch_throughput(
    session,
    *,
    epochs: int,
    batches_per_epoch: int,
    consumers: int = 1,
    receive_timeout: float = 60.0,
    register_delay: float = 0.2,
    join_timeout: float = 180.0,
) -> Tuple[Dict[int, float], Dict[str, int]]:
    """Run a real (not simulated) session and measure per-epoch batches/sec.

    The shared harness behind the epoch-cache benchmark and the fig14
    real-cache probe: attach ``consumers`` trainers to a *not yet started*
    session, start it once everyone has registered, and time each epoch as
    seen by the first consumer (epoch boundaries are detected by batch count,
    so ``batches_per_epoch`` must be exact — size datasets to divide evenly).

    Returns ``(epoch_rates, counts)``: epoch index -> batches/sec, and
    consumer id -> total batches.  The session is left running/finished but
    **not** shut down, so callers can read ``session.stats()`` first.
    """
    from repro.core import ConsumerConfig

    epoch_rates: Dict[int, float] = {}
    counts: Dict[str, int] = {}

    def consume(name: str, record: Optional[Dict[int, float]]) -> None:
        consumer = session.consumer(
            ConsumerConfig(consumer_id=name, max_epochs=epochs, receive_timeout=receive_timeout)
        )
        count = 0
        started = time.perf_counter()
        for _ in consumer:
            count += 1
            if count % batches_per_epoch == 0:
                now = time.perf_counter()
                if record is not None:
                    record[count // batches_per_epoch - 1] = batches_per_epoch / (now - started)
                started = now
        counts[name] = count
        consumer.close()

    threads = [
        threading.Thread(
            target=consume,
            args=(f"epoch-rate-{i}", epoch_rates if i == 0 else None),
            name=f"repro-epoch-rate-{i}",
            daemon=True,
        )
        for i in range(consumers)
    ]
    for thread in threads:
        thread.start()
    time.sleep(register_delay)  # let every consumer register before batch 0
    session.start()
    for thread in threads:
        thread.join(timeout=join_timeout)
    alive = [t for t in threads if t.is_alive()]
    if alive:
        raise RuntimeError(f"epoch-throughput consumers wedged: {alive}")
    return epoch_rates, counts
