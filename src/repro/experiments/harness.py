"""Small helpers shared by the experiment drivers."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.base import durations
from repro.hardware.gpu import GpuSharingMode
from repro.hardware.instances import MachineSpec
from repro.hardware.metrics import GB
from repro.training.collocation import CollocationResult, CollocationRunner, SharingStrategy
from repro.training.model_zoo import ModelProfile, get_model
from repro.training.workload import TrainingWorkload

#: On-disk dataset sizes (bytes) used for storage / page-cache modeling.
DATASET_BYTES = {
    "imagenet": 145 * GB,
    "librispeech": 60 * GB,
    "cc3m": 420 * GB,
    "alpaca": int(0.05 * GB),
}


def make_workloads(
    model: str | ModelProfile,
    count: int,
    *,
    same_gpu: bool = False,
    batch_size: Optional[int] = None,
    start_delays: Optional[Sequence[float]] = None,
) -> List[TrainingWorkload]:
    """``count`` copies of one model, on separate GPUs or collocated on GPU 0."""
    profile = get_model(model) if isinstance(model, str) else model
    workloads = []
    for index in range(count):
        workloads.append(
            TrainingWorkload(
                model=profile,
                gpu_index=0 if same_gpu else index,
                batch_size=batch_size,
                name=f"{profile.name}-{index}",
                start_delay_s=start_delays[index] if start_delays else 0.0,
            )
        )
    return workloads


def run_collocation(
    spec: MachineSpec,
    workloads: Sequence[TrainingWorkload],
    strategy: SharingStrategy,
    *,
    fast: bool = False,
    total_loader_workers: Optional[int] = None,
    sharing_mode: GpuSharingMode = GpuSharingMode.MPS,
    producer_gpu: int = 0,
    buffer_size: int = 2,
    flexible_batching: bool = False,
    address: Optional[str] = None,
) -> CollocationResult:
    """Run one configuration with experiment-standard durations and dataset sizing.

    The run's loading pipeline is served at a ``sim://`` endpoint and trainers
    attach by address; pass ``address=`` to pin it, otherwise a unique one is
    generated per run.
    """
    dataset = workloads[0].model.dataset
    runner = CollocationRunner(
        spec,
        strategy=strategy,
        sharing_mode=sharing_mode,
        total_loader_workers=total_loader_workers,
        producer_gpu=producer_gpu,
        buffer_size=buffer_size,
        flexible_batching=flexible_batching,
        dataset_bytes=DATASET_BYTES.get(dataset, 100 * GB),
        address=address,
        **durations(fast),
    )
    return runner.run(list(workloads))
