"""Shared infrastructure for experiment drivers: results, tables, durations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence


#: Default simulated duration (seconds) and warm-up for full experiment runs.
DEFAULT_DURATION_S = 90.0
DEFAULT_WARMUP_S = 15.0
#: Shorter settings used by ``fast=True`` (unit tests, quick smoke runs).
FAST_DURATION_S = 40.0
FAST_WARMUP_S = 8.0


def durations(fast: bool) -> Dict[str, float]:
    """The (duration_s, warmup_s) pair as runner keyword arguments."""
    if fast:
        return {"duration_s": FAST_DURATION_S, "warmup_s": FAST_WARMUP_S}
    return {"duration_s": DEFAULT_DURATION_S, "warmup_s": DEFAULT_WARMUP_S}


@dataclass
class ExperimentResult:
    """The outcome of one experiment driver.

    ``rows`` holds one dictionary per plotted point / table cell group, with
    stable column names so benchmarks and EXPERIMENTS.md can consume them.
    ``reference`` carries the paper's reported values for the same quantities
    (where the paper gives numbers) for side-by-side comparison.
    """

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    reference: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def row_where(self, **criteria: object) -> Dict[str, object]:
        """The first row matching every key=value criterion."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                return row
        raise KeyError(f"no row matching {criteria} in {self.experiment_id}")

    def to_markdown(self) -> str:
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append(format_table(self.rows))
        if self.notes:
            lines.extend(["", self.notes])
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ExperimentResult({self.experiment_id!r}, rows={len(self.rows)})"


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}" if abs(value) < 100 else f"{value:.0f}"
        return str(value)

    header = "| " + " | ".join(columns) + " |"
    divider = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| " + " | ".join(fmt(row.get(column, "")) for column in columns) + " |" for row in rows
    ]
    return "\n".join([header, divider] + body)


def relative_change(new: float, old: float) -> float:
    """(new - old) / old, guarded against zero denominators."""
    if old == 0:
        return float("inf") if new > 0 else 0.0
    return (new - old) / old
