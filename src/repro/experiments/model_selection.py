"""Figure 13: mixed-workload model selection on AWS G5 instances.

Setup (paper Section 4.5): a RegNetX 002 and a RegNetX 004 train together on
one A10G GPU (a model-selection scenario where the candidate models differ in
complexity), on the three G5 instance sizes, with and without TensorSocket.
The paper plots aggregate throughput over elapsed time; the headline is that
the shared g5.2xlarge closely approximates the larger instances' throughput at
roughly half the cost, whereas the non-shared run throttles badly on the small
instance.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.harness import run_collocation
from repro.hardware.instances import aws_g5_instances
from repro.training.collocation import SharingStrategy
from repro.training.model_zoo import get_model
from repro.training.workload import TrainingWorkload

PAPER_REFERENCE = {
    "shape": (
        "non-shared throughput on g5.2xlarge throttles far below the larger instances; "
        "with sharing the g5.2xlarge nearly matches g5.8xlarge at about half the cost"
    ),
}

MODELS = ("RegNetX 2", "RegNetX 4")


def _workloads() -> List[TrainingWorkload]:
    return [
        TrainingWorkload(model=get_model(name), gpu_index=0, name=f"{get_model(name).name}")
        for name in MODELS
    ]


def run_figure13(fast: bool = False) -> ExperimentResult:
    """Reproduce Figure 13 (aggregate throughput of the mixed workload over time)."""
    result = ExperimentResult(
        experiment_id="fig13",
        title="Mixed workload (RegNetX 2 + RegNetX 4) on AWS G5 instances",
        notes=(
            "Aggregate steady-state throughput and a coarse time series per instance size. "
            "The samples-per-dollar column carries the paper's cost argument: the shared "
            "g5.2xlarge delivers large-instance throughput at half the price."
        ),
    )
    for spec in aws_g5_instances():
        for strategy in (SharingStrategy.NONE, SharingStrategy.TENSORSOCKET):
            run = run_collocation(
                spec,
                _workloads(),
                strategy,
                fast=fast,
                total_loader_workers=spec.vcpus,
            )
            series = aggregate_series(run)
            result.add_row(
                instance=spec.name,
                strategy=str(strategy),
                aggregate_samples_per_s=round(run.aggregate_samples_per_second, 1),
                per_model_samples_per_s={
                    w.name: round(w.samples_per_second, 1) for w in run.workloads
                },
                cpu_percent=round(run.cpu_utilization_percent, 1),
                cost_per_hour=spec.cost_per_hour,
                samples_per_dollar=round(run.samples_per_dollar() or 0.0),
                series_points=len(series),
                series_mean=round(
                    sum(v for _, v in series) / len(series), 1
                ) if series else 0.0,
            )
    return result


def aggregate_series(run) -> List[Tuple[float, float]]:
    """Sum the per-workload throughput series into one aggregate series."""
    # A simple union of sampling points (bucketed to whole seconds): for each
    # bucket take the sum of each workload's most recent rate at or before it.
    buckets = {
        round(time, 0)
        for workload in run.workloads
        for time, _value in workload.throughput_series
    }
    times = sorted(buckets)
    series: List[Tuple[float, float]] = []
    for time in times:
        total = 0.0
        for workload in run.workloads:
            last = 0.0
            for t, v in workload.throughput_series:
                if t <= time:
                    last = v
                else:
                    break
            total += last
        series.append((time, total))
    return series
