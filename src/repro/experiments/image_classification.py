"""Figure 8: image-classification training on the A100 server, 4-way collocation.

Setup (paper Section 4.2): each of the four A100 GPUs trains one instance of
the same model on ImageNet; 48 vCPUs total (12 per GPU).  Without sharing,
every training process runs its own loader with 12 workers; with TensorSocket
a single producer on GPU 0 feeds all four consumers over NVLink.

Reported per model: training throughput (samples/s), total CPU utilization and
per-GPU SM activity — the three panels of Figure 8.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.harness import make_workloads, run_collocation
from repro.hardware.instances import A100_SERVER
from repro.training.collocation import SharingStrategy

#: Models in the order the figure plots them (paper display names).
FIGURE8_MODELS = ("ResNet18", "RegNetX 2", "RegNetX 4", "MobileNet S", "MobileNet L")

#: Qualitative reference from the paper's Figure 8 and its discussion:
#: throughput gain from sharing and whether the baseline saturates the CPU.
PAPER_REFERENCE = {
    "ResNet18": {"gain": "5-10%", "baseline_cpu_bound": True},
    "RegNetX 2": {"gain": "large (>40%)", "baseline_cpu_bound": True},
    "RegNetX 4": {"gain": "moderate", "baseline_cpu_bound": True},
    "MobileNet S": {"gain": "~2x", "baseline_cpu_bound": True},
    "MobileNet L": {"gain": "~5%", "baseline_cpu_bound": False},
}

COLLOCATION_DEGREE = 4
TOTAL_WORKERS = 48


def run_figure8(fast: bool = False) -> ExperimentResult:
    """Reproduce Figure 8 (throughput, CPU utilization, GPU utilization)."""
    result = ExperimentResult(
        experiment_id="fig8",
        title="Image classification, 4-way collocation on the A100 server",
        notes=(
            "Per-model training throughput with conventional loading vs. TensorSocket, "
            "plus total CPU utilization and per-GPU SM activity.  The gain correlates "
            "with how input-bound the model is (paper Section 4.2)."
        ),
    )
    for display_name in FIGURE8_MODELS:
        workloads = make_workloads(display_name, COLLOCATION_DEGREE, same_gpu=False)
        baseline = run_collocation(
            A100_SERVER,
            workloads,
            SharingStrategy.NONE,
            fast=fast,
            total_loader_workers=TOTAL_WORKERS,
        )
        shared = run_collocation(
            A100_SERVER,
            make_workloads(display_name, COLLOCATION_DEGREE, same_gpu=False),
            SharingStrategy.TENSORSOCKET,
            fast=fast,
            total_loader_workers=TOTAL_WORKERS,
        )
        gain = (
            shared.per_model_samples_per_second / baseline.per_model_samples_per_second
            if baseline.per_model_samples_per_second
            else float("inf")
        )
        result.add_row(
            model=display_name,
            non_shared_samples_per_s=round(baseline.per_model_samples_per_second, 1),
            shared_samples_per_s=round(shared.per_model_samples_per_second, 1),
            speedup=round(gain, 2),
            non_shared_cpu_percent=round(baseline.cpu_utilization_percent, 1),
            shared_cpu_percent=round(shared.cpu_utilization_percent, 1),
            non_shared_gpu_percent=round(baseline.gpu_utilization_percent[1], 1),
            shared_gpu_percent=round(shared.gpu_utilization_percent[1], 1),
            paper_gain=PAPER_REFERENCE[display_name]["gain"],
        )
    return result
