"""Command-line entry point: run any subset of the paper's experiments.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig8 tab3
    python -m repro.experiments --all --fast
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run reproductions of the paper's figures and tables.",
    )
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. fig8 tab3)")
    parser.add_argument("--all", action="store_true", help="run every registered experiment")
    parser.add_argument("--fast", action="store_true", help="short simulated durations")
    parser.add_argument("--list", action="store_true", help="list available experiment ids")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0

    selected = list(EXPERIMENTS) if args.all else args.experiments
    if not selected:
        parser.print_help()
        return 1

    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; use --list", file=sys.stderr)
        return 2

    for experiment_id in selected:
        result = EXPERIMENTS[experiment_id](fast=args.fast)
        print(result.to_markdown())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
