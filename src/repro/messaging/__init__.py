"""Messaging layer: a small ZeroMQ-style socket library.

TensorSocket uses ZeroMQ PUB/SUB sockets for the data channel (producer
multicasts batch payloads to all consumers), a PUSH/PULL-style channel for
acknowledgements, and a separate heartbeat channel for liveness (paper
Section 3.2.3).  ZeroMQ is not available offline, so this subpackage provides
the same patterns:

* :class:`~repro.messaging.message.Message` — a typed envelope (topic, kind,
  sender, body) with a stable wire encoding.
* :class:`~repro.messaging.transport.InProcHub` — an in-process broker with
  named endpoints, used by threaded runs, tests and the simulator.
* :class:`~repro.messaging.transport.TcpHub` — the same API over TCP sockets
  for true multi-process runs.
* :mod:`~repro.messaging.sockets` — ``PubSocket`` / ``SubSocket``,
  ``PushSocket`` / ``PullSocket`` and ``ReqSocket`` / ``RepSocket`` pattern
  wrappers.
* :class:`~repro.messaging.heartbeat.HeartbeatMonitor` — per-peer liveness
  tracking with the detach-after-timeout behaviour the producer relies on.
"""

from repro.messaging.errors import MessagingError, EndpointClosedError, TimeoutError_
from repro.messaging.message import Message, MessageKind
from repro.messaging.transport import Endpoint, InProcHub, TcpHub
from repro.messaging.sockets import (
    PubSocket,
    PullSocket,
    PushSocket,
    RepSocket,
    ReqSocket,
    SubSocket,
)
from repro.messaging.heartbeat import HeartbeatMonitor, HeartbeatSender

__all__ = [
    "Message",
    "MessageKind",
    "Endpoint",
    "InProcHub",
    "TcpHub",
    "PubSocket",
    "SubSocket",
    "PushSocket",
    "PullSocket",
    "ReqSocket",
    "RepSocket",
    "HeartbeatMonitor",
    "HeartbeatSender",
    "MessagingError",
    "EndpointClosedError",
    "TimeoutError_",
]
