"""Messaging layer: a small ZeroMQ-style socket library.

TensorSocket uses ZeroMQ PUB/SUB sockets for the data channel (producer
multicasts batch payloads to all consumers), a PUSH/PULL-style channel for
acknowledgements, and a separate heartbeat channel for liveness (paper
Section 3.2.3).  ZeroMQ is not available offline, so this subpackage provides
the same patterns:

* :class:`~repro.messaging.message.Message` — a typed envelope (topic, kind,
  sender, body) with a stable wire encoding.
* :class:`~repro.messaging.transport.InProcHub` — an in-process broker with
  named endpoints, used by threaded runs, tests and the simulator.
* :class:`~repro.messaging.transport.TcpHub` — the same API over TCP sockets
  for true multi-process runs, with
  :class:`~repro.messaging.transport.TcpServerHub` /
  :class:`~repro.messaging.transport.TcpHubClient` adapters so the regular
  socket wrappers run unchanged on either side of the broker.
* :mod:`~repro.messaging.sockets` — ``PubSocket`` / ``SubSocket``,
  ``PushSocket`` / ``PullSocket`` and ``ReqSocket`` / ``RepSocket`` pattern
  wrappers.
* :class:`~repro.messaging.heartbeat.HeartbeatMonitor` — per-peer liveness
  tracking with the detach-after-timeout behaviour the producer relies on.
* :mod:`~repro.messaging.endpoint` — URI-addressed endpoints: a process-wide
  registry mapping schemes (``inproc://`` and ``tcp://`` built in; new
  schemes plug in the same way) to transports, so producers serve and
  consumers attach by address string instead of by shared hub/pool objects.
"""

from repro.messaging.endpoint import (
    InProcTransport,
    LocalObjectTransport,
    TcpTransport,
    Transport,
    TransportRegistry,
    available_schemes,
    bind,
    connect,
    default_registry,
    is_uri,
    parse_address,
    register_transport,
)
from repro.messaging.errors import (
    AddressError,
    AddressInUseError,
    AddressNotServedError,
    DuplicateConsumerError,
    EndpointClosedError,
    EndpointError,
    MessagingError,
    TimeoutError_,
    UnknownSchemeError,
)
from repro.messaging.message import Message, MessageKind
from repro.messaging.transport import (
    Endpoint,
    InProcHub,
    TcpHub,
    TcpHubClient,
    TcpServerHub,
    channel_key,
)
from repro.messaging.sockets import (
    PubSocket,
    PullSocket,
    PushSocket,
    RepSocket,
    ReqSocket,
    SubSocket,
)
from repro.messaging.heartbeat import HeartbeatMonitor, HeartbeatSender

__all__ = [
    "Message",
    "MessageKind",
    "Endpoint",
    "InProcHub",
    "TcpHub",
    "TcpHubClient",
    "TcpServerHub",
    "channel_key",
    "PubSocket",
    "SubSocket",
    "PushSocket",
    "PullSocket",
    "ReqSocket",
    "RepSocket",
    "HeartbeatMonitor",
    "HeartbeatSender",
    "MessagingError",
    "EndpointClosedError",
    "TimeoutError_",
    # URI endpoint layer
    "Transport",
    "TransportRegistry",
    "InProcTransport",
    "TcpTransport",
    "LocalObjectTransport",
    "register_transport",
    "available_schemes",
    "default_registry",
    "parse_address",
    "is_uri",
    "bind",
    "connect",
    "EndpointError",
    "AddressError",
    "UnknownSchemeError",
    "AddressInUseError",
    "AddressNotServedError",
    "DuplicateConsumerError",
]
