"""ZeroMQ-style socket pattern wrappers over a hub transport.

Three patterns are provided, matching the channels TensorSocket uses:

* **PUB/SUB** — the data channel.  The producer's :class:`PubSocket` binds the
  data address and multicasts :class:`BatchPayload` messages; every consumer's
  :class:`SubSocket` connects and filters on a topic prefix.
* **PUSH/PULL** — the acknowledgement and registration channel.  Consumers
  push ``ACK`` / ``HELLO`` / ``BYE`` messages toward the producer's single
  :class:`PullSocket`.
* **REQ/REP** — a small synchronous control channel used by utilities (e.g.
  querying producer status from a monitoring script).

All sockets work over anything with the hub surface
(``bind/connect/publish/push``): an
:class:`~repro.messaging.transport.InProcHub`, the broker-owning process's
:class:`~repro.messaging.transport.TcpServerHub`, or a remote process's
:class:`~repro.messaging.transport.TcpHubClient`, which routes through a
:class:`~repro.messaging.transport.TcpHub` broker over TCP.
"""

from __future__ import annotations

import uuid
from typing import Iterable, List, Optional

from repro.messaging.errors import MessagingError
from repro.messaging.message import Message, MessageKind
from repro.messaging.transport import Endpoint, InProcHub, TcpClientEndpoint


class _HubSocket:
    """Shared plumbing for sockets living on an in-process hub."""

    def __init__(self, hub: InProcHub, address: str, identity: Optional[str] = None) -> None:
        self._hub = hub
        self._address = address
        self.identity = identity or f"sock-{uuid.uuid4().hex[:8]}"
        self._endpoint: Optional[Endpoint] = None

    @property
    def address(self) -> str:
        return self._address

    def close(self) -> None:
        if self._endpoint is not None:
            self._hub.disconnect(self._endpoint)
            self._endpoint = None

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PubSocket(_HubSocket):
    """Publisher end of PUB/SUB: multicast to all connected subscribers."""

    def __init__(self, hub: InProcHub, address: str, identity: Optional[str] = None) -> None:
        super().__init__(hub, address, identity)
        self._messages_sent = 0
        self._deliveries = 0

    def send(self, kind: MessageKind, body=None, topic: str = "") -> int:
        """Publish a message; returns the number of subscribers it reached."""
        message = Message(topic=topic, kind=kind, sender=self.identity, body=body)
        delivered = self._hub.publish(self._address, message)
        self._messages_sent += 1
        self._deliveries += delivered
        return delivered

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def total_deliveries(self) -> int:
        return self._deliveries


class SubSocket(_HubSocket):
    """Subscriber end of PUB/SUB with topic-prefix filtering."""

    def __init__(
        self,
        hub: InProcHub,
        address: str,
        topics: Iterable[str] = ("",),
        identity: Optional[str] = None,
    ) -> None:
        super().__init__(hub, address, identity)
        # Subscriptions are applied atomically at connect time so no publish
        # can slip between the connect and a half-applied topic filter.
        self._endpoint = hub.connect(address, name=self.identity, subscriptions=tuple(topics))

    def subscribe(self, prefix: str) -> None:
        self._endpoint.subscribe(prefix)

    def recv(self, timeout: Optional[float] = None, block: bool = True) -> Message:
        return self._endpoint.receive(timeout=timeout, block=block)

    def try_recv(self) -> Optional[Message]:
        return self._endpoint.try_receive()

    def pending(self) -> int:
        return self._endpoint.pending()


class PushSocket(_HubSocket):
    """Push end of PUSH/PULL: deliver to the single bound pull socket."""

    def send(self, kind: MessageKind, body=None, topic: str = "") -> None:
        message = Message(topic=topic, kind=kind, sender=self.identity, body=body)
        self._hub.push(self._address, message)


class PullSocket(_HubSocket):
    """Pull end of PUSH/PULL: owns the bound endpoint at the address."""

    def __init__(self, hub: InProcHub, address: str, identity: Optional[str] = None) -> None:
        super().__init__(hub, address, identity)
        self._endpoint = hub.bind(address, name=self.identity)

    def recv(self, timeout: Optional[float] = None, block: bool = True) -> Message:
        return self._endpoint.receive(timeout=timeout, block=block)

    def try_recv(self) -> Optional[Message]:
        return self._endpoint.try_receive()

    def drain(self) -> List[Message]:
        """Receive every message currently queued without blocking."""
        messages = []
        while True:
            message = self._endpoint.try_receive()
            if message is None:
                return messages
            messages.append(message)

    def pending(self) -> int:
        return self._endpoint.pending()


class ReqSocket(_HubSocket):
    """Synchronous request socket: send one request, wait for its reply."""

    def __init__(self, hub: InProcHub, address: str, identity: Optional[str] = None) -> None:
        super().__init__(hub, address, identity)
        self._reply_address = f"{address}/reply/{self.identity}"
        self._endpoint = hub.bind(self._reply_address, name=self.identity)

    def request(self, body, timeout: Optional[float] = None):
        message = Message(
            topic="",
            kind=MessageKind.REQUEST,
            sender=self.identity,
            body={"reply_to": self._reply_address, "payload": body},
        )
        self._hub.push(self._address, message)
        reply = self._endpoint.receive(timeout=timeout)
        if reply.kind is not MessageKind.REPLY:
            raise MessagingError(f"expected a REPLY, got {reply.kind}")
        return reply.body

    def close(self) -> None:
        if self._endpoint is not None:
            self._hub.disconnect(self._endpoint)
            self._endpoint = None


class RepSocket(_HubSocket):
    """Reply socket: receive requests and route replies back to the requester."""

    def __init__(self, hub: InProcHub, address: str, identity: Optional[str] = None) -> None:
        super().__init__(hub, address, identity)
        self._endpoint = hub.bind(address, name=self.identity)

    def recv(self, timeout: Optional[float] = None) -> Message:
        return self._endpoint.receive(timeout=timeout)

    def try_recv(self) -> Optional[Message]:
        return self._endpoint.try_receive()

    def reply(self, request: Message, body) -> None:
        reply_to = request.body.get("reply_to") if isinstance(request.body, dict) else None
        if not reply_to:
            raise MessagingError("request carries no reply_to address")
        message = Message(topic="", kind=MessageKind.REPLY, sender=self.identity, body=body)
        self._hub.push(reply_to, message)

    def serve_pending(self, handler) -> int:
        """Answer every queued request with ``handler(payload)``; returns count."""
        served = 0
        while True:
            request = self.try_recv()
            if request is None:
                return served
            payload = request.body.get("payload") if isinstance(request.body, dict) else None
            self.reply(request, handler(payload))
            served += 1


# ---------------------------------------------------------------------------
# TCP-backed variants
# ---------------------------------------------------------------------------


class TcpPubSocket:
    """Publisher over a :class:`~repro.messaging.transport.TcpHub` broker."""

    def __init__(self, host: str, port: int, address: str, identity: Optional[str] = None) -> None:
        self.identity = identity or f"sock-{uuid.uuid4().hex[:8]}"
        self._address = address
        self._client = TcpClientEndpoint(host, port, op="open")

    def send(self, kind: MessageKind, body=None, topic: str = "") -> None:
        message = Message(topic=topic, kind=kind, sender=self.identity, body=body)
        self._client.send_publish(self._address, message)

    def close(self) -> None:
        self._client.close()


class TcpSubSocket:
    """Subscriber over a TCP broker."""

    def __init__(
        self,
        host: str,
        port: int,
        address: str,
        topics: Iterable[str] = ("",),
        identity: Optional[str] = None,
    ) -> None:
        self.identity = identity or f"sock-{uuid.uuid4().hex[:8]}"
        self._client = TcpClientEndpoint(
            host, port, op="connect", address=address, subscriptions=list(topics)
        )

    def recv(self, timeout: Optional[float] = None, block: bool = True) -> Message:
        return self._client.receive(timeout=timeout, block=block)

    def try_recv(self) -> Optional[Message]:
        return self._client.try_receive()

    def close(self) -> None:
        self._client.close()


class TcpPushSocket:
    """Push socket over a TCP broker."""

    def __init__(self, host: str, port: int, address: str, identity: Optional[str] = None) -> None:
        self.identity = identity or f"sock-{uuid.uuid4().hex[:8]}"
        self._address = address
        self._client = TcpClientEndpoint(host, port, op="open")

    def send(self, kind: MessageKind, body=None, topic: str = "") -> None:
        message = Message(topic=topic, kind=kind, sender=self.identity, body=body)
        self._client.send_push(self._address, message)

    def close(self) -> None:
        self._client.close()


class TcpPullSocket:
    """Pull socket over a TCP broker (binds the address broker-side)."""

    def __init__(self, host: str, port: int, address: str, identity: Optional[str] = None) -> None:
        self.identity = identity or f"sock-{uuid.uuid4().hex[:8]}"
        self._client = TcpClientEndpoint(host, port, op="bind", address=address)

    def recv(self, timeout: Optional[float] = None, block: bool = True) -> Message:
        return self._client.receive(timeout=timeout, block=block)

    def try_recv(self) -> Optional[Message]:
        return self._client.try_receive()

    def drain(self) -> List[Message]:
        messages = []
        while True:
            message = self._client.try_receive()
            if message is None:
                return messages
            messages.append(message)

    def close(self) -> None:
        self._client.close()
