"""The per-process consumer reactor: one event loop for every attach.

Before this module, each attached consumer cost threads: a blocking recv
pump, a heartbeat thread if backgrounded, one TCP reader thread per broker
connection, and — under sharding — a parked feeder thread per group member.
A node collocating hundreds of trainers (the paper's Section 4 scenario,
and DGL's ``dist_context`` deployment shape) burned threads and sockets
linearly in K consumers x M members.

:class:`ConsumerReactor` collapses all of that onto **one** daemon thread
(``repro-reactor``) per process:

* **Inbound messages** — hub deliveries are routed to registered handlers
  through :meth:`subscribe` instead of per-consumer receive loops.  In-proc
  endpoints forward into the reactor's inbox via an endpoint *sink*; TCP
  broker connections register their sockets with the reactor's selector, so
  no reader thread exists per connection.
* **Shared subscriptions** — one physical hub endpoint per
  ``(hub, channel)`` pair, subscribed to the union of its local consumers'
  topic prefixes and fanned out locally.  N consumers of one data channel
  cost one endpoint (and over TCP, one broker connection), not N.
* **Timer wheel** — periodic work (heartbeats, registration retries) runs
  from a heap of timers on the reactor thread via :meth:`every`, replacing
  per-consumer heartbeat threads.
* **Connection table** — :meth:`shared_tcp_client` refcounts one
  :class:`~repro.messaging.transport.TcpHubClient` (plus one attach-by-name
  shared-memory pool) per ``(host, port)``, so consumers of
  ``tcp://host:port/imagenet`` and ``.../audio`` share a single TCP
  connection set.

The reactor is a lazy process-wide singleton (:func:`get_reactor`), rebuilt
after ``fork()`` — a child inherits the parent's object but not its thread,
so reusing it would silently drop every message.
"""

from __future__ import annotations

import heapq
import itertools
import os
import queue
import selectors
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.messaging.message import Message
from repro.obs.metrics import counter

__all__ = [
    "ConsumerReactor",
    "SubscriptionHandle",
    "TimerHandle",
    "get_reactor",
    "reactor_only",
]

# Recording from the reactor thread is allowed precisely because these are
# per-thread-cell counters: inc() never blocks (reprolint RL006 verifies the
# method set statically).
_DISPATCHES = counter("repro.reactor.dispatches")
_TIMER_FIRES = counter("repro.reactor.timer_fires")
_SUBMITS = counter("repro.reactor.submits")


def reactor_only(fn):
    """Mark ``fn`` as running exclusively on the reactor thread.

    The decorator is a pure tag — zero runtime cost — whose meaning is
    enforced statically by ``reprolint`` (RL006): decorated code must never
    block (no ``time.sleep``, no blocking queue ops, no ``Event.wait``, no
    ``Thread.join``) and must never dial sockets, because it shares the one
    event loop every consumer in the process rides on.  Conversely, selector
    state may *only* be touched from decorated code, which is how the
    "selector lives on the reactor thread" invariant in this module's
    docstrings becomes machine-checked.
    """
    fn.__reactor_only__ = True
    return fn


class TimerHandle:
    """A periodic callback on the reactor's timer wheel; ``cancel()`` to stop."""

    __slots__ = ("interval", "callback", "cancelled")

    def __init__(self, interval: float, callback: Callable[[], None]) -> None:
        self.interval = interval
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SubscriptionHandle:
    """One local consumer's view of a shared channel subscription."""

    def __init__(self, reactor: "ConsumerReactor", channel: "_Channel",
                 topics, handler: Callable[[Message], None]) -> None:
        self._reactor = reactor
        self._channel = channel
        self.topics = tuple(topics)
        self.handler = handler
        self._active = True

    def matches(self, message: Message) -> bool:
        if not self.topics:
            return True
        return any(message.matches_topic(prefix) for prefix in self.topics)

    def unsubscribe(self) -> None:
        if not self._active:
            return
        self._active = False
        self._reactor._drop_subscriber(self._channel, self)


class _Channel:
    """One physical hub endpoint fanned out to N local subscribers.

    Dispatch happens on the reactor thread only, in arrival order, so every
    subscriber sees the same per-channel ordering a private endpoint would
    have given it.
    """

    def __init__(self, key, hub, address: str) -> None:
        self.key = key
        self.hub = hub
        self.address = address
        self.endpoint = None
        self.subscribers: List[SubscriptionHandle] = []

    def dispatch(self, message: Message) -> None:
        for subscriber in list(self.subscribers):
            if subscriber.matches(message):
                try:
                    subscriber.handler(message)
                except Exception:
                    # One consumer's handler bug must not starve its channel
                    # peers (or kill the loop every other consumer rides on).
                    pass


class _SharedTcpClient:
    """A refcounted ``(host, port)`` entry in the reactor's connection table."""

    def __init__(self, reactor: "ConsumerReactor", host: str, port: int) -> None:
        from repro.messaging.transport import TcpHubClient
        from repro.tensor.shared_memory import SharedMemoryPool

        self._reactor = reactor
        self.key = (host, int(port))
        self.client = TcpHubClient(host, port, reactor=reactor)
        self.pool = SharedMemoryPool(backend="posix", attach_by_name=True)
        self.refs = 0

    def release(self) -> None:
        self._reactor._release_client(self)


class ConsumerReactor:
    """A single event loop owning subscriptions, timers and TCP connections.

    Everything stateful (selector, timer heap) is touched only from the
    reactor thread; other threads communicate through the inbox queue plus a
    socketpair waker, the standard self-pipe trick.
    """

    def __init__(self, name: str = "repro-reactor") -> None:
        self.name = name
        self._inbox: "queue.SimpleQueue[Callable[[], None]]" = queue.SimpleQueue()
        self._timers: List[Tuple[float, int, TimerHandle]] = []
        self._seq = itertools.count()
        self._lock = threading.RLock()
        self._channels: Dict[Tuple[int, str], _Channel] = {}  #: guarded by _lock
        self._clients: Dict[Tuple[str, int], _SharedTcpClient] = {}  #: guarded by _lock
        self._selector = selectors.DefaultSelector()
        self._waker_recv, self._waker_send = socket.socketpair()
        self._waker_recv.setblocking(False)
        self._waker_send.setblocking(False)
        self._selector.register(self._waker_recv, selectors.EVENT_READ, None)
        # Sockets currently registered via register_socket (the waker is not
        # counted).  Written only from reactor-thread closures; stats() reads
        # the int for the test suite's quiescence check.
        self._registered_sockets = 0
        self._sleeping = False
        self._stopped = False
        self._thread: Optional[threading.Thread] = None
        self._thread_lock = threading.Lock()

    # ------------------------------------------------------------------ loop
    def _ensure_thread(self) -> None:
        with self._thread_lock:
            if self._stopped:
                raise RuntimeError("reactor has been shut down")
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name=self.name, daemon=True
                )
                self._thread.start()

    @reactor_only
    def _run(self) -> None:
        while not self._stopped:
            timeout = self._next_timer_delay()
            # The sleeping flag is raised *before* the final inbox-empty
            # check: a submitter that enqueues after the check is guaranteed
            # to observe it and write the waker, so no work item can strand
            # while the loop sleeps in select().
            self._sleeping = True
            if not self._inbox.empty():
                timeout = 0
            try:
                events = self._selector.select(timeout)
            except OSError:
                events = []
            self._sleeping = False
            for key, _mask in events:
                if key.fileobj is self._waker_recv:
                    try:
                        while self._waker_recv.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                elif key.data is not None:
                    _DISPATCHES.inc()
                    try:
                        key.data()
                    except Exception:
                        pass
            while True:
                try:
                    work = self._inbox.get_nowait()
                except queue.Empty:
                    break
                _DISPATCHES.inc()
                try:
                    work()
                except Exception:
                    pass
            self._fire_due_timers()

    @reactor_only
    def _next_timer_delay(self) -> Optional[float]:
        while self._timers and self._timers[0][2].cancelled:
            heapq.heappop(self._timers)
        if not self._timers:
            return None
        return max(0.0, self._timers[0][0] - time.monotonic())

    @reactor_only
    def _fire_due_timers(self) -> None:
        now = time.monotonic()
        while self._timers and self._timers[0][0] <= now:
            _due, _seq, handle = heapq.heappop(self._timers)
            if handle.cancelled:
                continue
            _TIMER_FIRES.inc()
            try:
                handle.callback()
            except Exception:
                pass
            heapq.heappush(
                self._timers, (now + handle.interval, next(self._seq), handle)
            )

    def on_reactor_thread(self) -> bool:
        """True when the caller *is* the reactor thread — code that would
        otherwise block on a delivery the reactor itself must parse (e.g. a
        subscribe confirmation) uses this to skip the wait."""
        return threading.current_thread() is self._thread

    # ------------------------------------------------------------------ submission
    def submit(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the reactor thread as soon as possible."""
        self._ensure_thread()
        _SUBMITS.inc()
        self._inbox.put(fn)
        if self._sleeping:
            self._wake()

    def _wake(self) -> None:
        try:
            self._waker_send.send(b"\0")
        except (BlockingIOError, OSError):
            # A full pipe means a wake-up is already pending.
            pass

    def every(self, interval: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` every ``interval`` seconds (first fire after
        one interval); returns a cancellable handle."""
        if interval <= 0:
            raise ValueError("timer interval must be positive")
        handle = TimerHandle(interval, callback)

        @reactor_only
        def arm() -> None:
            heapq.heappush(
                self._timers,
                (time.monotonic() + interval, next(self._seq), handle),
            )

        self.submit(arm)
        return handle

    # ------------------------------------------------------------------ sockets
    def register_socket(self, sock: socket.socket,
                        on_readable: Callable[[], None]) -> None:
        """Watch ``sock`` for readability, calling ``on_readable`` on the
        reactor thread.  The selector is only ever touched from the loop."""
        @reactor_only
        def register() -> None:
            try:
                self._selector.register(sock, selectors.EVENT_READ, on_readable)
            except (KeyError, ValueError, OSError):
                return
            self._registered_sockets += 1

        self.submit(register)

    def unregister_socket(self, sock: socket.socket,
                          after: Optional[Callable[[], None]] = None) -> None:
        """Stop watching ``sock``; ``after`` (e.g. ``sock.close``) runs on the
        reactor thread once it is out of the selector."""
        @reactor_only
        def unregister() -> None:
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError, OSError):
                pass
            else:
                self._registered_sockets -= 1
            if after is not None:
                try:
                    after()
                except Exception:
                    pass

        try:
            self.submit(unregister)
        except RuntimeError:
            # Reactor already shut down: nothing watches the socket anymore.
            if after is not None:
                after()

    # ------------------------------------------------------------------ shared subscriptions
    def subscribe(self, hub, address: str, topics,
                  handler: Callable[[Message], None]) -> SubscriptionHandle:
        """Deliver messages published at ``address`` matching ``topics`` to
        ``handler`` (reactor thread).

        Local consumers of the same ``(hub, channel)`` share one physical
        endpoint subscribed to the union of their topics; the reactor fans
        messages out by prefix, so ordering per consumer is what a private
        endpoint would have delivered.
        """
        # Deferred: transport imports ``reactor_only`` from this module at
        # import time, so the reverse import must happen at call time.
        from repro.messaging.transport import channel_key

        self._ensure_thread()
        key = (id(hub), channel_key(address))
        with self._lock:
            channel = self._channels.get(key)
            if channel is None:
                channel = _Channel(key, hub, address)
                self._channels[key] = channel
            subscription = SubscriptionHandle(self, channel, topics, handler)
            # Registered before any topic becomes active so no matching
            # message can arrive with nobody to fan it out to.
            channel.subscribers.append(subscription)
            if channel.endpoint is None:
                try:
                    endpoint = hub.connect(
                        address,
                        name=f"reactor-{channel_key(address)}",
                        subscriptions=tuple(dict.fromkeys(subscription.topics)),
                    )
                except BaseException:
                    channel.subscribers.remove(subscription)
                    if not channel.subscribers:
                        self._channels.pop(key, None)
                    raise
                channel.endpoint = endpoint
                endpoint.set_sink(self._make_sink(channel))
            else:
                for prefix in subscription.topics:
                    if prefix not in channel.endpoint.subscriptions:
                        channel.endpoint.subscribe(prefix)
        return subscription

    def _make_sink(self, channel: _Channel) -> Callable[[Message], None]:
        def sink(message: Message) -> None:
            # TCP frames are already parsed on the reactor thread; dispatch
            # inline.  In-proc deliveries arrive on the publisher's thread
            # and bounce through the inbox for single-threaded dispatch.
            if threading.current_thread() is self._thread:
                channel.dispatch(message)
            else:
                self.submit(lambda: channel.dispatch(message))

        return sink

    def _drop_subscriber(self, channel: _Channel, subscription: SubscriptionHandle) -> None:
        with self._lock:
            if subscription in channel.subscribers:
                channel.subscribers.remove(subscription)
            if channel.subscribers:
                return
            self._channels.pop(channel.key, None)
            endpoint, channel.endpoint = channel.endpoint, None
        if endpoint is not None:
            try:
                channel.hub.disconnect(endpoint)
            except Exception:
                pass

    # ------------------------------------------------------------------ connection table
    def shared_tcp_client(self, host: str, port: int) -> _SharedTcpClient:
        """A refcounted broker connection (+ attach pool) for ``host:port``.

        The first caller dials; later callers share.  Call ``release()`` on
        the returned entry once per ``shared_tcp_client`` call — the last
        release closes the connection and the attached pool.
        """
        key = (host, int(port))
        with self._lock:
            entry = self._clients.get(key)
            if entry is not None and entry.client.closed:
                # The broker went away under a previous generation of
                # consumers; a new attach deserves a fresh dial.
                self._clients.pop(key, None)
                entry = None
            if entry is None:
                entry = _SharedTcpClient(self, host, port)
                self._clients[key] = entry
            entry.refs += 1
            return entry

    def _release_client(self, entry: _SharedTcpClient) -> None:
        with self._lock:
            entry.refs -= 1
            if entry.refs > 0:
                return
            if self._clients.get(entry.key) is entry:
                self._clients.pop(entry.key)
        try:
            entry.client.close()
        except Exception:
            pass
        try:
            entry.pool.close_attached()
        except Exception:
            pass

    # ------------------------------------------------------------------ introspection / lifecycle
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "channels": len(self._channels),
                "subscribers": sum(
                    len(c.subscribers) for c in self._channels.values()
                ),
                "tcp_clients": len(self._clients),
                "tcp_client_refs": sum(e.refs for e in self._clients.values()),
                "sockets": self._registered_sockets,
                "timers": sum(1 for *_x, h in self._timers if not h.cancelled),
                "running": self._thread is not None and self._thread.is_alive(),
            }

    @property
    def is_running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def shutdown(self, timeout: float = 2.0) -> None:
        """Stop the loop and close the waker (test helper; the process-wide
        singleton normally lives for the life of the process)."""
        with self._thread_lock:
            self._stopped = True
            thread = self._thread
        self._wake()
        if thread is not None:
            thread.join(timeout=timeout)
        try:
            # The loop thread is stopped (or abandoned after the join
            # timeout); closing its selector here is the one sanctioned
            # off-thread touch.
            self._selector.close()  # reprolint: disable=RL006
        except OSError:
            pass
        for sock in (self._waker_recv, self._waker_send):
            try:
                sock.close()
            except OSError:
                pass

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ConsumerReactor(channels={stats['channels']}, "
            f"timers={stats['timers']}, tcp_clients={stats['tcp_clients']}, "
            f"running={stats['running']})"
        )


_singleton_lock = threading.Lock()
_singleton: Optional[ConsumerReactor] = None
_singleton_pid: Optional[int] = None


def get_reactor() -> ConsumerReactor:
    """The process-wide reactor, created on first use.

    Keyed by pid: a ``fork()`` child inherits the parent's reactor object but
    not its thread (and its selector fds are shared with the parent), so the
    child builds a fresh one instead of silently dropping messages.
    """
    global _singleton, _singleton_pid
    with _singleton_lock:
        if _singleton is None or _singleton_pid != os.getpid():
            _singleton = ConsumerReactor()
            _singleton_pid = os.getpid()
        return _singleton
