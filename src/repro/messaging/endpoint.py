"""URI-addressed endpoints: serve and attach by address instead of by object.

The paper deploys the producer as a long-lived server that trainers reach by
address (Section 3.3.1); the systems it compares against — CoorDL's MinIO
cache, Joader's shared-loader server — are likewise reached by endpoint, not
by handing Python objects around.  This module is the connection layer that
makes that literal for the reproduction:

* :func:`parse_address` — split ``scheme://locator`` URIs.
* :class:`Transport` — one entry per scheme: knows how to *bind* (serve) and
  *connect* (attach) a locator, producing a resolved :class:`Endpoint`.
* :class:`TransportRegistry` — a process-wide, thread-safe mapping from URI
  scheme to transport, with ``inproc`` and ``tcp`` registered by default.
  New schemes plug in through :func:`register_transport` without touching
  producer or consumer code.
* :class:`InProcTransport` — every bound locator owns a fresh
  :class:`~repro.messaging.transport.InProcHub` and
  :class:`~repro.tensor.shared_memory.SharedMemoryPool`, shared by everyone
  who connects to the same address from any thread in the process.
* :class:`TcpTransport` — the cross-process transport: binding starts a
  :class:`~repro.messaging.transport.TcpHub` broker (port 0 auto-assigns) and
  a ``posix`` shared-memory pool; connecting from any OS process dials the
  broker and attaches the producer's segments by name, so batches stay
  zero-copy while only the small pointer envelopes cross the socket.
* :class:`LocalObjectTransport` — a generic transport serving arbitrary
  Python objects at addresses; the simulation layer registers it under
  ``sim://`` so simulated loading pipelines are attached by URI too.

Typical flow (what :func:`repro.serve` / :func:`repro.attach` do internally)::

    endpoint = bind("inproc://demo")          # producer side: hub + pool created
    producer = TensorProducer(loader, hub=endpoint.hub, pool=endpoint.pool)

    endpoint = connect("inproc://demo")       # consumer side, any thread
    consumer = TensorConsumer(hub=endpoint.hub, pool=endpoint.pool)

``TensorProducer(loader, address="inproc://demo")`` and
``TensorConsumer(address="inproc://demo")`` run exactly this resolution when
no explicit ``hub=``/``pool=`` override is passed.

.. note::
   This module's :class:`Endpoint` (a resolved URI address) is distinct from
   :class:`repro.messaging.transport.Endpoint` (a hub-level receive queue,
   the one ``repro.messaging`` re-exports as ``Endpoint`` for backward
   compatibility).  Import this one as ``repro.messaging.endpoint.Endpoint``.
"""

from __future__ import annotations

import re
import threading
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.messaging.errors import (
    AddressError,
    AddressInUseError,
    AddressNotServedError,
    MessagingError,
    UnknownSchemeError,
)
from repro.messaging.transport import InProcHub, TcpHub, TcpServerHub

_SCHEME_RE = re.compile(r"^[a-z][a-z0-9+.-]*$")


def parse_address(address: str) -> Tuple[str, str]:
    """Split a ``scheme://locator`` URI; raises :class:`AddressError` if malformed."""
    if not isinstance(address, str) or "://" not in address:
        raise AddressError(
            f"address {address!r} is not a URI; expected '<scheme>://<locator>' "
            f"such as 'inproc://demo'"
        )
    scheme, _, locator = address.partition("://")
    if not _SCHEME_RE.match(scheme):
        raise AddressError(f"invalid scheme {scheme!r} in address {address!r}")
    if not locator:
        raise AddressError(f"address {address!r} has an empty locator")
    return scheme, locator


def is_uri(address: str) -> bool:
    """Whether a string looks like a URI address (as opposed to a bare channel name)."""
    try:
        parse_address(address)
    except AddressError:
        return False
    return True


class Endpoint:
    """A resolved address: the transport resources living behind a URI.

    ``hub`` and ``pool`` are set by messaging transports (``inproc``); object
    transports (``sim``) populate ``resource`` instead.  Bind-side endpoints
    own the address registration and release it with :meth:`release`;
    connect-side endpoints are passive references and release is a no-op.
    """

    def __init__(
        self,
        address: str,
        *,
        transport: "Transport",
        role: str,
        hub: Optional[Any] = None,
        pool: Optional[Any] = None,
        resource: Optional[Any] = None,
        closer: Optional[Callable[[], None]] = None,
    ) -> None:
        if role not in ("bind", "connect"):
            raise ValueError(f"endpoint role must be 'bind' or 'connect', got {role!r}")
        self.address = address
        self.scheme, self.locator = parse_address(address)
        self.transport = transport
        self.role = role
        self.hub = hub
        self.pool = pool
        self.resource = resource
        self._closer = closer
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Unregister a bind-side endpoint from its transport (idempotent).

        Connect-side endpoints holding per-attachment resources (e.g. a TCP
        client connection) close them here instead.
        """
        if self._released:
            return
        self._released = True
        try:
            if self.role == "bind":
                self.transport.release(self.locator)
        finally:
            if self._closer is not None:
                self._closer()

    def __enter__(self) -> "Endpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"Endpoint({self.address!r}, role={self.role!r})"


class Transport(ABC):
    """One URI scheme's way of turning locators into endpoints."""

    #: The scheme this transport serves (informational; the registry key wins).
    scheme: str = ""

    @abstractmethod
    def bind(self, address: str, resource: Optional[Any] = None) -> Endpoint:
        """Serve ``address``; raises :class:`AddressInUseError` on collision."""

    @abstractmethod
    def connect(self, address: str) -> Endpoint:
        """Attach to a served ``address``; raises :class:`AddressNotServedError`."""

    def release(self, locator: str) -> None:
        """Stop serving ``locator`` (called by bind-side :meth:`Endpoint.release`)."""
        return None  # deliberate no-op default: not every transport tracks binds

    def locators(self) -> List[str]:
        """Locators currently served (for introspection and error messages)."""
        return []


class InProcTransport(Transport):
    """``inproc://`` — shared loaders reachable from any thread in this process.

    Binding a locator creates a fresh hub (message broker) and shared-memory
    pool; connecting returns the same pair, so producer and consumers rendezvous
    purely by address string.
    """

    scheme = "inproc"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._served: Dict[str, Tuple[InProcHub, Any]] = {}  #: guarded by _lock

    def bind(self, address: str, resource: Optional[Any] = None) -> Endpoint:
        from repro.tensor.shared_memory import SharedMemoryPool

        _, locator = parse_address(address)
        if resource is not None:
            raise AddressError("inproc:// endpoints create their own hub and pool")
        with self._lock:
            if locator in self._served:
                raise AddressInUseError(
                    f"address {address!r} is already being served; shut the existing "
                    f"session down (or pick another address) before serving it again"
                )
            hub, pool = InProcHub(), SharedMemoryPool()
            self._served[locator] = (hub, pool)
        return Endpoint(address, transport=self, role="bind", hub=hub, pool=pool)

    def connect(self, address: str) -> Endpoint:
        _, locator = parse_address(address)
        with self._lock:
            pair = self._served.get(locator)
            known = sorted(self._served)
        if pair is None:
            served = ", ".join(known) or "none"
            raise AddressNotServedError(
                f"nothing is serving {address!r} (served inproc addresses: {served}); "
                f"call repro.serve(loader, address={address!r}) first"
            )
        hub, pool = pair
        return Endpoint(address, transport=self, role="connect", hub=hub, pool=pool)

    def release(self, locator: str) -> None:
        with self._lock:
            self._served.pop(locator, None)

    def locators(self) -> List[str]:
        with self._lock:
            return sorted(self._served)


def _split_host_port(address: str) -> Tuple[str, int, str]:
    """Split a ``tcp://host:port[/path]`` locator; raises :class:`AddressError`.

    Returns ``(host, port, path)`` with ``path`` empty when absent.  The path
    names a dataset behind a broker (``tcp://host:port/imagenet``): connects
    dial the broker at host:port and route by path, binds claim the bare
    authority.
    """
    _, locator = parse_address(address)
    netloc, _, path = locator.partition("/")
    host, sep, port_text = netloc.rpartition(":")
    if not sep or not host:
        raise AddressError(
            f"address {address!r} needs a 'tcp://<host>:<port>' locator "
            f"(port 0 binds an OS-assigned port)"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise AddressError(f"invalid port {port_text!r} in address {address!r}") from exc
    if not (0 <= port <= 65535):
        raise AddressError(f"port {port} out of range in address {address!r}")
    return host, port, path


def split_dataset_address(address: str) -> Tuple[str, Optional[str]]:
    """Split an address into ``(base, dataset)`` when it names a broker path.

    ``tcp://host:port/imagenet`` → ``("tcp://host:port", "imagenet")``; an
    address with no path — or a scheme whose locators have no authority/path
    structure (``inproc://`` locators may legitimately contain slashes) —
    returns ``(address, None)``.  Non-tcp brokers are resolved through the
    in-process session directory instead, where no splitting is needed.
    """
    try:
        scheme, _ = parse_address(address)
    except AddressError:
        return address, None
    if scheme != "tcp":
        return address, None
    try:
        host, port, path = _split_host_port(address)
    except AddressError:
        return address, None
    if not path:
        return address, None
    return f"tcp://{host}:{port}", path


class TcpTransport(Transport):
    """``tcp://`` — shared loaders reachable from other OS processes.

    Binding spins up a :class:`~repro.messaging.transport.TcpHub` broker
    thread on the locator's host:port (port ``0`` picks a free port; the
    endpoint's ``address`` carries the resolved one) plus a ``posix``-backed
    shared-memory pool, so message envelopes travel over TCP while tensor
    bytes are handed off zero-copy through OS shared memory — mirroring the
    paper's ZeroMQ + shared-memory deployment.  Connecting dials the broker
    and opens an attach-by-name pool that maps the producer's segments into
    this process.
    """

    scheme = "tcp"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._served: Dict[str, TcpHub] = {}  #: guarded by _lock

    def bind(self, address: str, resource: Optional[Any] = None) -> Endpoint:
        from repro.tensor.shared_memory import SharedMemoryPool

        if resource is not None:
            raise AddressError("tcp:// endpoints create their own broker and pool")
        host, port, path = _split_host_port(address)
        if path:
            raise AddressError(
                f"cannot bind {address!r}: a tcp:// bind claims the bare "
                f"'tcp://<host>:<port>' authority; dataset paths are mounted "
                f"behind a DatasetBroker (repro.broker)"
            )
        try:
            tcp_hub = TcpHub(host, port)
        except OSError as exc:
            raise AddressInUseError(f"cannot bind {address!r}: {exc}") from exc
        locator = f"{tcp_hub.host}:{tcp_hub.port}"
        with self._lock:
            self._served[locator] = tcp_hub
        return Endpoint(
            f"tcp://{locator}",
            transport=self,
            role="bind",
            hub=TcpServerHub(tcp_hub),
            pool=SharedMemoryPool(backend="posix"),
        )

    def connect(self, address: str) -> Endpoint:
        # Dial through the reactor's connection table: every consumer of the
        # same broker (tcp://host:port/imagenet, .../audio, ...) shares one
        # refcounted TcpHubClient + attach pool instead of opening its own.
        from repro.messaging.reactor import get_reactor

        host, port, _path = _split_host_port(address)
        if port == 0:
            raise AddressError(f"cannot connect to port 0 ({address!r}); use the "
                               f"resolved address the serving side reports")
        try:
            entry = get_reactor().shared_tcp_client(host, port)
        except (OSError, MessagingError) as exc:
            raise AddressNotServedError(
                f"nothing is serving {address!r} ({exc}); start the producer with "
                f"repro.serve(loader, address={address!r}) first"
            ) from exc
        return Endpoint(
            address,
            transport=self,
            role="connect",
            hub=entry.client,
            pool=entry.pool,
            closer=entry.release,
        )

    def release(self, locator: str) -> None:
        with self._lock:
            tcp_hub = self._served.pop(locator, None)
        if tcp_hub is not None:
            tcp_hub.close()

    def locators(self) -> List[str]:
        with self._lock:
            return sorted(self._served)


class LocalObjectTransport(Transport):
    """Serve arbitrary Python objects at URI addresses inside this process.

    Generic glue for layers whose "server" is not a hub/pool pair: the
    simulation layer registers an instance under ``sim://`` so that simulated
    loading pipelines (TensorSocket, CoorDL, Joader) can be attached by
    address, mirroring how the real systems are reached by endpoint.
    """

    def __init__(self, scheme: str) -> None:
        self.scheme = scheme
        self._lock = threading.Lock()
        self._served: Dict[str, Any] = {}  #: guarded by _lock

    def bind(self, address: str, resource: Optional[Any] = None) -> Endpoint:
        _, locator = parse_address(address)
        if resource is None:
            raise AddressError(
                f"{self.scheme}:// endpoints serve an existing object; pass resource="
            )
        with self._lock:
            if locator in self._served:
                raise AddressInUseError(f"address {address!r} is already being served")
            self._served[locator] = resource
        return Endpoint(address, transport=self, role="bind", resource=resource)

    def connect(self, address: str) -> Endpoint:
        _, locator = parse_address(address)
        with self._lock:
            if locator not in self._served:
                served = ", ".join(sorted(self._served)) or "none"
                raise AddressNotServedError(
                    f"nothing is serving {address!r} "
                    f"(served {self.scheme} addresses: {served})"
                )
            resource = self._served[locator]
        return Endpoint(address, transport=self, role="connect", resource=resource)

    def release(self, locator: str) -> None:
        with self._lock:
            self._served.pop(locator, None)

    def locators(self) -> List[str]:
        with self._lock:
            return sorted(self._served)


class TransportRegistry:
    """Thread-safe mapping from URI scheme to :class:`Transport`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._transports: Dict[str, Transport] = {}  #: guarded by _lock

    def register(self, scheme: str, transport: Transport, *, replace: bool = False) -> None:
        if not _SCHEME_RE.match(scheme):
            raise AddressError(f"invalid scheme {scheme!r}")
        with self._lock:
            if scheme in self._transports and not replace:
                raise AddressInUseError(
                    f"scheme {scheme!r} already has a registered transport; "
                    f"pass replace=True to override it"
                )
            self._transports[scheme] = transport

    def unregister(self, scheme: str) -> None:
        with self._lock:
            self._transports.pop(scheme, None)

    def registered(self, scheme: str) -> bool:
        with self._lock:
            return scheme in self._transports

    def get(self, scheme: str) -> Transport:
        with self._lock:
            transport = self._transports.get(scheme)
        if transport is None:
            known = ", ".join(sorted(self.schemes())) or "none"
            raise UnknownSchemeError(
                f"no transport registered for scheme {scheme!r} "
                f"(registered schemes: {known})"
            )
        return transport

    def schemes(self) -> List[str]:
        with self._lock:
            return sorted(self._transports)

    # -- address-level helpers ---------------------------------------------------------
    def bind(self, address: str, resource: Optional[Any] = None) -> Endpoint:
        scheme, _ = parse_address(address)
        return self.get(scheme).bind(address, resource=resource)

    def connect(self, address: str) -> Endpoint:
        scheme, _ = parse_address(address)
        return self.get(scheme).connect(address)

    def __repr__(self) -> str:
        return f"TransportRegistry(schemes={self.schemes()})"


#: The process-wide registry every address resolves against by default.
_default_registry = TransportRegistry()
_default_registry.register("inproc", InProcTransport())
_default_registry.register("tcp", TcpTransport())


def default_registry() -> TransportRegistry:
    return _default_registry


def register_transport(scheme: str, transport: Transport, *, replace: bool = False) -> None:
    """Register a transport for ``scheme`` in the process-wide registry."""
    _default_registry.register(scheme, transport, replace=replace)


def available_schemes() -> List[str]:
    return _default_registry.schemes()


def bind(address: str, resource: Optional[Any] = None) -> Endpoint:
    """Serve ``address`` through the process-wide registry."""
    return _default_registry.bind(address, resource=resource)


def connect(address: str) -> Endpoint:
    """Attach to a served ``address`` through the process-wide registry."""
    return _default_registry.connect(address)
