"""Message envelopes exchanged between producer and consumers.

Every unit of communication in the reproduction is a :class:`Message`: a topic
(which SUB sockets filter on), a :class:`MessageKind` describing the protocol
step, the sender's identity, an opaque body, and a monotonically increasing
sequence number stamped by the sending socket.

The protocol kinds map one-to-one onto the interactions described in the
paper (Section 3.2.3 and Figure 4):

========================  =====================================================
Kind                      Meaning
========================  =====================================================
``BATCH``                 producer → consumers: a packed :class:`BatchPayload`
``ACK``                   consumer → producer: finished with a batch
``HELLO``                 consumer → producer: registration (batch size, name)
``BYE``                   consumer → producer: graceful departure
``HEARTBEAT``             consumer → producer: liveness ping
``EPOCH_END``             producer → consumers: epoch boundary marker
``HALT`` / ``RESUME``     producer → consumers: rubberbanding pause control
``SHUTDOWN``              producer → consumers: the producer is going away
``REQUEST`` / ``REPLY``   generic REQ/REP bodies (used by control queries)
========================  =====================================================
"""

from __future__ import annotations

import enum
import itertools
import pickle
import time
from dataclasses import dataclass, field
from typing import Any


class MessageKind(str, enum.Enum):
    """Protocol step identifiers."""

    BATCH = "batch"
    ACK = "ack"
    HELLO = "hello"
    BYE = "bye"
    HEARTBEAT = "heartbeat"
    EPOCH_END = "epoch_end"
    HALT = "halt"
    RESUME = "resume"
    SHUTDOWN = "shutdown"
    REQUEST = "request"
    REPLY = "reply"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_SEQ = itertools.count()


@dataclass(frozen=True)
class Message:
    """An envelope traveling over a socket."""

    topic: str
    kind: MessageKind
    sender: str
    body: Any = None
    seq: int = field(default_factory=lambda: next(_SEQ))
    timestamp: float = field(default_factory=time.monotonic)

    # -- wire format -------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Encode for a byte-oriented transport (TCP)."""
        return pickle.dumps(
            {
                "topic": self.topic,
                "kind": self.kind.value,
                "sender": self.sender,
                "body": self.body,
                "seq": self.seq,
                "timestamp": self.timestamp,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Message":
        raw = pickle.loads(data)
        return Message(
            topic=raw["topic"],
            kind=MessageKind(raw["kind"]),
            sender=raw["sender"],
            body=raw["body"],
            seq=raw["seq"],
            timestamp=raw["timestamp"],
        )

    # -- helpers -------------------------------------------------------------------
    def matches_topic(self, prefix: str) -> bool:
        """ZeroMQ-style prefix matching used by SUB subscriptions."""
        return self.topic.startswith(prefix)

    def __repr__(self) -> str:
        return (
            f"Message(topic={self.topic!r}, kind={self.kind.value}, "
            f"sender={self.sender!r}, seq={self.seq})"
        )
