"""Transports: how message envelopes move between parties.

The socket patterns in :mod:`repro.messaging.sockets` are written against a
small transport abstraction so the same producer/consumer protocol code can
run in three settings:

* **In-process** (:class:`InProcHub`) — endpoints are thread-safe queues held
  in one registry.  Used by tests, threaded real-mode runs, and the
  discrete-event simulator.
* **TCP** (:class:`TcpHub`) — a lightweight broker thread speaking a
  length-prefixed pickle protocol, so producer and consumers can live in
  separate OS processes, mirroring the ZeroMQ deployment in the paper.

Both hubs expose the same two primitives:

* ``bind(address)`` / ``connect(address)`` → :class:`Endpoint`
* ``publish(address, message)`` — fan out to every endpoint connected to the
  address whose subscription matches the message topic (PUB/SUB), and
* ``push(address, message)`` — deliver to the single endpoint bound at the
  address (PUSH/PULL and REQ/REP routing).
"""

from __future__ import annotations

import pickle
import queue
import socket
import struct
import threading
import time
import uuid
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.messaging.errors import EndpointClosedError, MessagingError, TimeoutError_
from repro.messaging.message import Message, MessageKind
from repro.messaging.reactor import reactor_only


class Endpoint:
    """A receive queue owned by one socket.

    Endpoints hold subscriptions (topic prefixes).  An endpoint with no
    subscriptions receives everything published to the addresses it is
    connected to; this matches ZeroMQ SUB sockets subscribed to ``""``.
    """

    def __init__(self, name: str, address: str) -> None:
        self.name = name
        self.address = address
        self.subscriptions: Set[str] = set()
        self._queue: "queue.Queue[Message]" = queue.Queue()
        self._closed = False
        self._sink_lock = threading.Lock()
        self._sink = None  #: guarded by _sink_lock

    # -- subscription management ---------------------------------------------------
    def subscribe(self, prefix: str = "") -> None:
        self.subscriptions.add(prefix)

    def unsubscribe(self, prefix: str) -> None:
        self.subscriptions.discard(prefix)

    def accepts(self, message: Message) -> bool:
        if not self.subscriptions:
            return True
        return any(message.matches_topic(prefix) for prefix in self.subscriptions)

    # -- queue interface --------------------------------------------------------------
    def set_sink(self, sink) -> None:
        """Route future deliveries to ``sink(message)`` instead of the queue.

        The reactor installs a sink so deliveries push into its event loop
        rather than sitting in a queue behind a blocking reader.  Messages
        already queued are drained through the sink first, in order, so the
        handover cannot reorder or drop anything.
        """
        with self._sink_lock:
            self._sink = sink
            if sink is None:
                return
            while True:
                try:
                    backlog = self._queue.get_nowait()
                except queue.Empty:
                    break
                sink(backlog)

    def deliver(self, message: Message) -> None:
        if self._closed:
            return
        with self._sink_lock:
            if self._sink is not None:
                self._sink(message)
                return
            # The queue is unbounded; put_nowait makes that explicit so no
            # deliverer can ever park inside _sink_lock.
            self._queue.put_nowait(message)

    def receive(self, timeout: Optional[float] = None, block: bool = True) -> Message:
        if self._closed and self._queue.empty():
            raise EndpointClosedError(f"endpoint {self.name!r} is closed")
        try:
            return self._queue.get(block=block, timeout=timeout)
        except queue.Empty as exc:
            raise TimeoutError_(
                f"no message on endpoint {self.name!r} within timeout={timeout}"
            ) from exc

    def try_receive(self) -> Optional[Message]:
        """Non-blocking receive; returns ``None`` when the queue is empty."""
        try:
            return self._queue.get_nowait()
        except queue.Empty:
            return None

    def pending(self) -> int:
        return self._queue.qsize()

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return f"Endpoint(name={self.name!r}, address={self.address!r})"


class InProcHub:
    """An in-process broker: named addresses, bound and connected endpoints."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._bound: Dict[str, Endpoint] = {}  #: guarded by _lock
        self._connected: Dict[str, List[Endpoint]] = {}  #: guarded by _lock
        self._messages_published = 0
        self._messages_pushed = 0

    # -- endpoint management -----------------------------------------------------------
    def bind(self, address: str, name: Optional[str] = None) -> Endpoint:
        with self._lock:
            if address in self._bound:
                raise MessagingError(f"address {address!r} is already bound")
            endpoint = Endpoint(name or f"bound-{uuid.uuid4().hex[:8]}", address)
            self._bound[address] = endpoint
            return endpoint

    def connect(
        self,
        address: str,
        name: Optional[str] = None,
        subscriptions: Optional[Iterable[str]] = None,
    ) -> Endpoint:
        with self._lock:
            endpoint = Endpoint(name or f"conn-{uuid.uuid4().hex[:8]}", address)
            # Applied before the endpoint becomes reachable, so a publish can
            # never observe a half-subscribed endpoint.
            for prefix in subscriptions or ():
                endpoint.subscribe(prefix)
            self._prune_closed_locked(address)
            self._connected.setdefault(address, []).append(endpoint)
            return endpoint

    def _prune_closed_locked(self, address: str) -> List[Endpoint]:
        """Drop endpoints that were closed without a disconnect() call.

        A long-lived hub would otherwise keep one dead queue per departed
        consumer forever.  Returns the surviving endpoints for the address.
        """
        peers = self._connected.get(address)
        if not peers:
            return []
        live = [ep for ep in peers if not ep.closed]
        if len(live) != len(peers):
            if live:
                self._connected[address] = live
            else:
                del self._connected[address]
        return live

    def disconnect(self, endpoint: Endpoint) -> None:
        with self._lock:
            peers = self._connected.get(endpoint.address, [])
            if endpoint in peers:
                peers.remove(endpoint)
            if self._bound.get(endpoint.address) is endpoint:
                del self._bound[endpoint.address]
            endpoint.close()

    # -- delivery ------------------------------------------------------------------------
    def publish(self, address: str, message: Message) -> int:
        """Fan a message out to every matching connected endpoint.

        Returns the number of endpoints the message was delivered to.
        """
        with self._lock:
            targets = self._prune_closed_locked(address)
        delivered = 0
        for endpoint in targets:
            if endpoint.accepts(message):
                endpoint.deliver(message)
                delivered += 1
        self._messages_published += 1
        return delivered

    def push(self, address: str, message: Message) -> None:
        """Deliver a message to the endpoint bound at ``address``."""
        with self._lock:
            endpoint = self._bound.get(address)
        if endpoint is None or endpoint.closed:
            raise MessagingError(f"no endpoint bound at {address!r}")
        endpoint.deliver(message)
        self._messages_pushed += 1

    def has_bound(self, address: str) -> bool:
        with self._lock:
            return address in self._bound

    def connected_count(self, address: str) -> int:
        with self._lock:
            return len([ep for ep in self._connected.get(address, []) if not ep.closed])

    # -- statistics -----------------------------------------------------------------------
    @property
    def messages_published(self) -> int:
        return self._messages_published

    @property
    def messages_pushed(self) -> int:
        return self._messages_pushed

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"InProcHub(bound={len(self._bound)}, "
                f"connections={sum(len(v) for v in self._connected.values())})"
            )


# ---------------------------------------------------------------------------
# TCP transport
# ---------------------------------------------------------------------------
#
# Wire format: a 4-byte big-endian length, then a 1-byte tag, then the body
# (the length counts the tag).  Control frames carry a pickled dict exactly
# as before; the data-plane frames (DELIVER broker→client, PUBLISH/PUSH
# client→broker) carry the already-pickled ``Message.to_bytes()`` payload
# *raw* — the old protocol re-pickled those bytes inside a wrapper dict,
# serializing and copying every data frame twice on both directions of the
# hot path.  The pieces (header+tag, routing preamble, message bytes) go to
# the kernel via ``sendmsg`` scatter-gather, so they are never joined into
# one buffer in userspace either.

_HEADER = struct.Struct("!I")
#: PUBLISH/PUSH routing preamble: length of the UTF-8 channel address.
_ADDR = struct.Struct("!H")

_TAG_CTRL = 0  #: pickled dict (handshakes, subscribe, close, replies)
_TAG_DELIVER = 1  #: raw Message bytes (broker -> client)
_TAG_PUBLISH = 2  #: !H addr-len + addr + raw Message bytes (client -> broker)
_TAG_PUSH = 3  #: same layout as PUBLISH

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


def _frame_parts(tag: int, *parts) -> List:
    """The buffer list of one tagged frame (header+tag first, body unjoined)."""
    length = 1 + sum(len(part) for part in parts)
    return [_HEADER.pack(length) + bytes((tag,)), *parts]


def _send_parts(sock: socket.socket, parts: List) -> None:
    """sendall() a buffer list on a *blocking* socket, scatter-gather when
    the platform has ``sendmsg`` (no userspace join of the frame pieces)."""
    if not _HAS_SENDMSG:
        sock.sendall(b"".join(bytes(p) if not isinstance(p, bytes) else p for p in parts))
        return
    views = [memoryview(part) for part in parts]
    while views:
        try:
            sent = sock.sendmsg(views)
        except InterruptedError:
            continue
        while sent and views:
            head = views[0]
            if sent >= len(head):
                sent -= len(head)
                views.pop(0)
            else:
                views[0] = head[sent:]
                sent = 0


def _send_ctrl(sock: socket.socket, obj: dict) -> None:
    _send_parts(sock, _frame_parts(_TAG_CTRL, pickle.dumps(obj)))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Tuple[int, memoryview]:
    """One tagged frame: ``(tag, body)``; the body view skips the tag byte."""
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    body = _recv_exactly(sock, length)
    if not body:
        raise ConnectionError("zero-length frame (missing tag byte)")
    return body[0], memoryview(body)[1:]


def _split_routed(body: memoryview) -> Tuple[str, memoryview]:
    """Decode a PUBLISH/PUSH body into ``(address, raw message bytes)``."""
    (addr_len,) = _ADDR.unpack_from(body, 0)
    start = _ADDR.size
    address = bytes(body[start : start + addr_len]).decode("utf-8")
    return address, body[start + addr_len :]


class TcpHub:
    """A broker listening on one TCP port, routing frames between clients.

    Each client registers with ``{"op": "bind"|"connect", "address": ...}`` and
    then exchanges ``{"op": "publish"|"push", "address": ..., "message": ...}``
    frames.  The broker applies the same routing rules as :class:`InProcHub`.

    The TCP path exists so that the real-mode examples can run the producer and
    consumers as genuinely separate OS processes; the in-process hub remains
    the default everywhere else because it is dependency-free and deterministic.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(64)
        self.host, self.port = self._server.getsockname()
        self._inner = InProcHub()
        self._running = True
        self._clients: List[socket.socket] = []  #: guarded by _clients_lock
        # Endpoints with a live _forward_loop — the only queues close() can
        # meaningfully wait on when draining final deliveries.
        self._forwarded: List[Endpoint] = []  #: guarded by _clients_lock
        self._clients_lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-tcp-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def inner_hub(self) -> InProcHub:
        """The broker's routing hub; the serving process's sockets attach here
        directly (via :class:`TcpServerHub`) so its traffic skips the loopback."""
        return self._inner

    # -- server side -----------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._server.accept()
            except OSError:
                break
            with self._clients_lock:
                self._clients.append(client)
            threading.Thread(
                target=self._serve_client,
                args=(client,),
                name="repro-tcp-serve",
                daemon=True,
            ).start()

    def _serve_client(self, client: socket.socket) -> None:
        endpoint: Optional[Endpoint] = None
        try:
            while self._running:
                tag, body = _recv_frame(client)
                if tag == _TAG_PUBLISH:
                    address, raw = _split_routed(body)
                    message = Message.from_bytes(raw)
                    try:
                        self._inner.publish(address, message)
                    except MessagingError:
                        pass
                    continue
                if tag == _TAG_PUSH:
                    address, raw = _split_routed(body)
                    message = Message.from_bytes(raw)
                    try:
                        self._inner.push(address, message)
                    except MessagingError:
                        # Nothing bound at the address (e.g. the producer is
                        # gone); pushes are fire-and-forget over TCP.
                        pass
                    continue
                if tag != _TAG_CTRL:
                    continue  # unknown/unsupported tag: skip the frame
                frame = pickle.loads(body)
                op = frame["op"]
                if op in ("bind", "connect"):
                    address = frame["address"]
                    try:
                        if op == "bind":
                            new_endpoint = self._inner.bind(address)
                        else:
                            # Subscriptions go through connect() so the
                            # endpoint is never reachable in a catch-all
                            # (no-subscription) state.
                            new_endpoint = self._inner.connect(
                                address, subscriptions=frame.get("subscriptions")
                            )
                    except MessagingError as exc:
                        # A broker-side failure (e.g. the address is already
                        # bound) must travel back as an error reply — raising
                        # here would kill this thread and leave the client
                        # waiting on a reply that never comes.
                        _send_ctrl(client, {"ok": False, "error": str(exc)})
                        continue
                    endpoint = new_endpoint
                    # Reply before starting the forwarder so a delivery can
                    # never overtake the registration acknowledgement.
                    _send_ctrl(client, {"ok": True})
                    with self._clients_lock:
                        self._forwarded.append(endpoint)
                    threading.Thread(
                        target=self._forward_loop,
                        args=(endpoint, client),
                        name="repro-tcp-forward",
                        daemon=True,
                    ).start()
                elif op == "open":
                    # A send-only channel (publish/push source, no endpoint).
                    _send_ctrl(client, {"ok": True})
                elif op == "subscribe" and endpoint is not None:
                    endpoint.subscribe(frame["prefix"])
                    token = frame.get("ack")
                    if token is not None:
                        # The confirmation rides the delivery stream (the
                        # forward loop is this connection's only writer after
                        # the handshake), so once the client sees it the new
                        # prefix is live for every later publish — even one
                        # triggered through another connection, e.g. a REPLY
                        # raced by a control-plane HELLO.
                        endpoint.deliver(
                            Message(
                                f"__suback__/{token}",
                                MessageKind.REPLY,
                                "broker",
                            )
                        )
                elif op == "close":
                    break
        except (ConnectionError, EOFError, OSError):
            pass
        finally:
            if endpoint is not None:
                self._inner.disconnect(endpoint)
            try:
                client.close()
            except OSError:
                pass
            with self._clients_lock:
                if client in self._clients:
                    self._clients.remove(client)
                if endpoint is not None and endpoint in self._forwarded:
                    self._forwarded.remove(endpoint)

    def _forward_loop(self, endpoint: Endpoint, client: socket.socket) -> None:
        """Push every message delivered to a server-side endpoint down to the client."""
        while self._running and not endpoint.closed:
            try:
                message = endpoint.receive(timeout=0.2)
            except TimeoutError_:
                continue
            except EndpointClosedError:
                break
            try:
                # The message's own pickled bytes are the frame body — no
                # wrapper dict, no second pickle pass, no userspace copy of
                # the payload into a joined buffer.
                _send_parts(client, _frame_parts(_TAG_DELIVER, message.to_bytes()))
            except OSError:
                break

    def _pending_forwarded(self) -> int:
        with self._clients_lock:
            return sum(ep.pending() for ep in self._forwarded if not ep.closed)

    # -- lifecycle ---------------------------------------------------------------------
    def close(self, drain_timeout: float = 1.0) -> None:
        """Stop the broker: close the listening socket (releasing the port)
        and every client connection so serve/forward threads exit promptly.

        Waits up to ``drain_timeout`` for the forwarders to flush queued
        deliveries first, so a final SHUTDOWN/EPOCH_END broadcast is not cut
        off mid-flight.  Only forwarded (remote-client) endpoints are waited
        on: a local subscriber's unread queue has no forwarder to empty it.
        """
        deadline = time.monotonic() + max(0.0, drain_timeout)
        while self._pending_forwarded() and time.monotonic() < deadline:
            time.sleep(0.01)
        self._running = False
        try:
            # close() alone does not release the port while the accept thread
            # is blocked inside accept(); shutdown() wakes it so the listening
            # socket actually dies and the port is immediately rebindable.
            self._server.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._server.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)
        with self._clients_lock:
            clients = list(self._clients)
            self._clients.clear()
        for client in clients:
            try:
                client.close()
            except OSError:
                pass

    @property
    def endpoint_address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def __repr__(self) -> str:
        return f"TcpHub({self.host}:{self.port})"


class TcpClientEndpoint:
    """Client-side endpoint talking to a :class:`TcpHub` broker.

    Provides the same ``deliver``/``receive`` surface as :class:`Endpoint` so
    the socket wrappers do not care whether they are in-process or remote.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        op: str,
        address: str = "",
        subscriptions: Optional[List[str]] = None,
        reactor=None,
    ) -> None:
        self.address = address
        self.name = f"tcp-{uuid.uuid4().hex[:8]}"
        self.subscriptions: Set[str] = set(subscriptions or [])
        self._sock = socket.create_connection((host, port))
        self._send_lock = threading.Lock()
        self._queue: "queue.Queue[Message]" = queue.Queue()
        self._closed = False
        self._sink_lock = threading.Lock()
        self._sink = None  #: guarded by _sink_lock
        self._reactor = reactor
        self._rbuf = bytearray()
        self._acks: Dict[str, threading.Event] = {}
        self._reader: Optional[threading.Thread] = None
        # The registration handshake is a plain blocking request/reply in
        # both modes; only steady-state I/O differs.
        self._request(
            {"op": op, "address": address, "subscriptions": list(self.subscriptions)}
        )
        if reactor is not None:
            # Reactor mode: no reader thread.  The socket goes non-blocking
            # and the reactor's selector drives frame parsing.
            self._sock.setblocking(False)
            reactor.register_socket(self._sock, self._on_readable)
        else:
            self._reader = threading.Thread(
                target=self._read_loop, name="repro-tcp-reader", daemon=True
            )
            self._reader.start()

    def _request(self, frame: dict) -> None:
        try:
            with self._send_lock:
                _send_ctrl(self._sock, frame)
                tag, body = _recv_frame(self._sock)
                if tag != _TAG_CTRL:
                    raise MessagingError(
                        f"expected a control reply to {frame!r}, got frame tag {tag}"
                    )
                reply = pickle.loads(body)
        except (ConnectionError, EOFError, OSError) as exc:
            raise MessagingError(f"broker connection lost during {frame!r}: {exc}") from exc
        if not reply.get("ok"):
            raise MessagingError(f"broker rejected {frame!r}: {reply!r}")

    def _send(self, frame: dict) -> None:
        """Fire-and-forget control frame; broker connection loss surfaces
        uniformly as :class:`MessagingError` so protocol code can treat TCP
        like a hub."""
        self._send_tagged(_TAG_CTRL, pickle.dumps(frame))

    def _send_tagged(self, tag: int, *parts) -> None:
        """Send one tagged frame, serialized once, whatever the I/O mode."""
        if self._closed:
            raise EndpointClosedError(f"endpoint {self.name!r} is closed")
        frame = _frame_parts(tag, *parts)
        try:
            with self._send_lock:
                if self._reactor is not None:
                    self._send_all_nonblocking(frame)
                else:
                    _send_parts(self._sock, frame)
        except OSError as exc:
            raise MessagingError(f"broker connection lost: {exc}") from exc

    def _send_all_nonblocking(self, parts: List) -> None:
        """sendall() a buffer list on the non-blocking reactor-mode socket.

        Caller holds ``_send_lock``.  Scatter-gather via ``sendmsg`` where
        available, with the consumed prefix dropped after every partial send.
        A full kernel buffer parks this sender in short writability waits
        instead of busy-spinning; ``close()`` concurrently flips ``_closed``
        to break the wait.
        """
        import select as _select

        views = [memoryview(part) for part in parts]
        while views:
            if self._closed:
                raise OSError("endpoint closed during send")
            try:
                if _HAS_SENDMSG:
                    sent = self._sock.sendmsg(views)
                else:
                    sent = self._sock.send(views[0])
            except (BlockingIOError, InterruptedError):
                _select.select([], [self._sock], [], 0.5)
                continue
            while sent and views:
                head = views[0]
                if sent >= len(head):
                    sent -= len(head)
                    views.pop(0)
                else:
                    views[0] = head[sent:]
                    sent = 0

    def _read_loop(self) -> None:
        while not self._closed:
            try:
                tag, body = _recv_frame(self._sock)
            except (ConnectionError, EOFError, OSError):
                break
            if tag == _TAG_DELIVER:
                self._dispatch(Message.from_bytes(body))

    # -- reactor-mode receive path ------------------------------------------------------
    @reactor_only
    def _on_readable(self) -> None:
        """Selector callback (reactor thread): pull bytes, parse whole frames."""
        while not self._closed:
            try:
                chunk = self._sock.recv(65536)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._detach_from_reactor()
                return
            if not chunk:
                # EOF: the broker went away; nothing more will arrive.
                self._detach_from_reactor()
                return
            self._rbuf.extend(chunk)
        self._drain_rbuf()

    @reactor_only
    def _drain_rbuf(self) -> None:
        while len(self._rbuf) >= _HEADER.size + 1:
            (length,) = _HEADER.unpack(bytes(self._rbuf[: _HEADER.size]))
            end = _HEADER.size + length
            if len(self._rbuf) < end:
                return
            tag = self._rbuf[_HEADER.size]
            payload = bytes(self._rbuf[_HEADER.size + 1 : end])
            del self._rbuf[:end]
            if tag != _TAG_DELIVER:
                continue
            try:
                message = Message.from_bytes(payload)
            except Exception:
                continue
            self._dispatch(message)

    def _detach_from_reactor(self) -> None:
        if self._reactor is not None:
            self._reactor.unregister_socket(self._sock)

    def _dispatch(self, message: Message) -> None:
        if message.topic.startswith("__suback__/"):
            waiter = self._acks.pop(message.topic.split("/", 1)[1], None)
            if waiter is not None:
                waiter.set()
            return
        with self._sink_lock:
            if self._sink is not None:
                self._sink(message)
                return
            # Unbounded queue: put_nowait keeps the reactor thread (which
            # calls _dispatch in reactor mode) out of any blocking wait.
            self._queue.put_nowait(message)

    def set_sink(self, sink) -> None:
        """Same handover contract as :meth:`Endpoint.set_sink`."""
        with self._sink_lock:
            self._sink = sink
            if sink is None:
                return
            while True:
                try:
                    backlog = self._queue.get_nowait()
                except queue.Empty:
                    break
                sink(backlog)

    # -- sending ----------------------------------------------------------------------
    def send_publish(self, address: str, message: Message) -> None:
        """Publish: routing preamble + the message's own bytes, pickled once."""
        addr = address.encode("utf-8")
        self._send_tagged(_TAG_PUBLISH, _ADDR.pack(len(addr)) + addr, message.to_bytes())

    def send_push(self, address: str, message: Message) -> None:
        addr = address.encode("utf-8")
        self._send_tagged(_TAG_PUSH, _ADDR.pack(len(addr)) + addr, message.to_bytes())

    # -- receiving ---------------------------------------------------------------------
    def subscribe(self, prefix: str = "") -> None:
        """Add ``prefix`` and wait for the broker to confirm it is live.

        The subscribe op travels on this endpoint's socket but a dependent
        send (e.g. the consumer's HELLO) may travel on another — without the
        confirmation the broker could admit the consumer and publish to the
        new prefix before it ever processed the subscribe, silently dropping
        the first messages (a rubberband catch-up replay, most visibly)."""
        self.subscriptions.add(prefix)
        token = uuid.uuid4().hex
        waiter = threading.Event()
        self._acks[token] = waiter
        try:
            self._send({"op": "subscribe", "prefix": prefix, "ack": token})
            # The reactor thread parses this socket's inbound frames; if it
            # is the caller, blocking here would deadlock the confirmation.
            on_reactor = getattr(self._reactor, "on_reactor_thread", None)
            if on_reactor is None or not on_reactor():
                waiter.wait(timeout=5.0)
        finally:
            self._acks.pop(token, None)

    def receive(self, timeout: Optional[float] = None, block: bool = True) -> Message:
        try:
            return self._queue.get(block=block, timeout=timeout)
        except queue.Empty as exc:
            raise TimeoutError_(f"no message within timeout={timeout}") from exc

    def try_receive(self) -> Optional[Message]:
        try:
            return self._queue.get_nowait()
        except queue.Empty:
            return None

    def pending(self) -> int:
        return self._queue.qsize()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._reactor is not None:
            payload = pickle.dumps({"op": "close"})
            try:
                with self._send_lock:
                    # Best-effort single write on the *non-blocking* reactor
                    # socket; a full buffer just means the broker learns
                    # about the close from the FIN instead.
                    self._sock.send(  # reprolint: disable=RL002
                        _HEADER.pack(len(payload) + 1) + bytes((_TAG_CTRL,)) + payload
                    )
            except OSError:
                pass
            # The socket must leave the selector before it is closed, and the
            # selector lives on the reactor thread — so the close rides along.
            self._reactor.unregister_socket(self._sock, after=self._sock.close)
            return
        try:
            with self._send_lock:
                _send_ctrl(self._sock, {"op": "close"})
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed


# ---------------------------------------------------------------------------
# Hub adapters: the socket patterns over a TcpHub broker
# ---------------------------------------------------------------------------


def channel_key(address: str) -> str:
    """Canonical broker-side routing key for a channel address.

    Channel addresses are derived from the session's URI (``{address}/data``,
    ``{address}/control``), but the same broker can be reached under different
    authority spellings (``tcp://localhost:5555`` vs ``tcp://127.0.0.1:5555``).
    Routing on the path alone makes those equivalent; non-URI addresses pass
    through unchanged so explicit-hub wiring keeps its exact strings.
    """
    if "://" not in address:
        return address
    _, _, rest = address.partition("://")
    slash = rest.find("/")
    return rest[slash:] if slash >= 0 else "/"


class TcpServerHub:
    """The broker-owning process's view of a :class:`TcpHub`.

    Exposes the same ``bind/connect/publish/push`` surface as
    :class:`InProcHub`, routed straight through the broker's inner hub (no
    loopback hop) with addresses canonicalised by :func:`channel_key` so the
    producer's sockets and remote clients agree on channel names.
    """

    def __init__(self, tcp_hub: TcpHub) -> None:
        self.tcp_hub = tcp_hub
        self._hub = tcp_hub.inner_hub

    @property
    def host(self) -> str:
        return self.tcp_hub.host

    @property
    def port(self) -> int:
        return self.tcp_hub.port

    def bind(self, address: str, name: Optional[str] = None) -> Endpoint:
        return self._hub.bind(channel_key(address), name=name)

    def connect(
        self,
        address: str,
        name: Optional[str] = None,
        subscriptions: Optional[Iterable[str]] = None,
    ) -> Endpoint:
        return self._hub.connect(channel_key(address), name=name, subscriptions=subscriptions)

    def disconnect(self, endpoint: Endpoint) -> None:
        self._hub.disconnect(endpoint)

    def publish(self, address: str, message: Message) -> int:
        return self._hub.publish(channel_key(address), message)

    def push(self, address: str, message: Message) -> None:
        self._hub.push(channel_key(address), message)

    def has_bound(self, address: str) -> bool:
        return self._hub.has_bound(channel_key(address))

    def connected_count(self, address: str) -> int:
        return self._hub.connected_count(channel_key(address))

    @property
    def messages_published(self) -> int:
        return self._hub.messages_published

    @property
    def messages_pushed(self) -> int:
        return self._hub.messages_pushed

    def __repr__(self) -> str:
        return f"TcpServerHub({self.host}:{self.port})"


class TcpHubClient:
    """Client-side hub adapter: :class:`InProcHub`'s surface over a TCP broker.

    ``PubSocket``/``SubSocket``/``PushSocket``/``PullSocket`` run unchanged
    against this object from another OS process: ``connect``/``bind`` open one
    broker connection per endpoint (a :class:`TcpClientEndpoint`, which offers
    the same receive surface as :class:`Endpoint`), while ``publish``/``push``
    go through a single send-only channel.
    """

    def __init__(self, host: str, port: int, *, reactor=None) -> None:
        self.host = host
        self.port = int(port)
        self._lock = threading.Lock()
        self._endpoints: List[TcpClientEndpoint] = []  #: guarded by _lock
        self._closed = False
        # With a reactor, every endpoint's socket lives on its selector
        # instead of spawning a reader thread per connection.
        self._reactor = reactor
        # Opened eagerly so connecting to a dead broker fails here, not on
        # the first send.
        self._sender = TcpClientEndpoint(self.host, self.port, op="open", reactor=reactor)

    # -- endpoint management -----------------------------------------------------------
    def bind(self, address: str, name: Optional[str] = None) -> TcpClientEndpoint:
        return self._track(
            TcpClientEndpoint(
                self.host,
                self.port,
                op="bind",
                address=channel_key(address),
                reactor=self._reactor,
            )
        )

    def connect(
        self,
        address: str,
        name: Optional[str] = None,
        subscriptions: Optional[Iterable[str]] = None,
    ) -> TcpClientEndpoint:
        # Subscriptions travel inside the connect request so they are active
        # broker-side before the registration is acknowledged; late subscribe()
        # frames on a separate connection could otherwise lose the race against
        # a publish on another channel (e.g. a HELLO reply).
        return self._track(
            TcpClientEndpoint(
                self.host,
                self.port,
                op="connect",
                address=channel_key(address),
                subscriptions=list(subscriptions or ()),
                reactor=self._reactor,
            )
        )

    def _track(self, endpoint: TcpClientEndpoint) -> TcpClientEndpoint:
        with self._lock:
            self._endpoints = [ep for ep in self._endpoints if not ep.closed]
            self._endpoints.append(endpoint)
        return endpoint

    def disconnect(self, endpoint: TcpClientEndpoint) -> None:
        endpoint.close()
        with self._lock:
            if endpoint in self._endpoints:
                self._endpoints.remove(endpoint)

    # -- delivery ------------------------------------------------------------------------
    def publish(self, address: str, message: Message) -> int:
        """Publish through the broker.  Fire-and-forget: the number of remote
        subscribers is unknown client-side, so this returns 0."""
        self._sender.send_publish(channel_key(address), message)
        return 0

    def push(self, address: str, message: Message) -> None:
        self._sender.send_push(channel_key(address), message)

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            endpoints = list(self._endpoints)
            self._endpoints.clear()
        for endpoint in endpoints:
            endpoint.close()
        self._sender.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:
        return f"TcpHubClient({self.host}:{self.port}, closed={self._closed})"
