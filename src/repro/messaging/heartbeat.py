"""Heartbeat channel: consumer liveness tracking and detach-on-silence.

Paper, Section 3.2.3: "producers send and receive heartbeat messages from
their consumers over a different socket.  The producer will detach from
consumers that it has not received a heartbeat from in a while."

Two halves are provided:

* :class:`HeartbeatSender` — consumer side.  Emits a heartbeat on a push
  socket at a fixed interval; the caller drives it (``maybe_send``) from its
  training loop, or runs ``run_background`` for a thread-based sender.
* :class:`HeartbeatMonitor` — producer side.  Records last-seen timestamps per
  consumer and reports which consumers have gone silent for longer than the
  detach timeout.

The monitor is time-source agnostic: pass a ``clock`` callable so the same
code is driven by ``time.monotonic`` in real mode and by the simulated clock
in the benchmark harness.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.messaging.message import MessageKind
from repro.obs.metrics import counter

Clock = Callable[[], float]

_SENT = counter("repro.heartbeat.sent")
_RECEIVED = counter("repro.heartbeat.received")
_DETACHES = counter("repro.heartbeat.detaches")


@dataclass
class PeerLiveness:
    """Liveness record for one consumer."""

    consumer_id: str
    first_seen: float
    last_seen: float
    beats_received: int = 1

    def silence(self, now: float) -> float:
        return now - self.last_seen


class HeartbeatMonitor:
    """Producer-side registry of consumer heartbeats."""

    def __init__(self, detach_timeout: float = 10.0, clock: Clock = time.monotonic) -> None:
        if detach_timeout <= 0:
            raise ValueError("detach_timeout must be positive")
        self._detach_timeout = detach_timeout
        self._clock = clock
        self._peers: Dict[str, PeerLiveness] = {}  #: guarded by _lock
        self._detached: Dict[str, PeerLiveness] = {}  #: guarded by _lock
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------------
    def beat(self, consumer_id: str) -> None:
        """Record a heartbeat (or any sign of life) from a consumer."""
        _RECEIVED.inc()
        now = self._clock()
        with self._lock:
            peer = self._peers.get(consumer_id)
            if peer is None:
                # A heartbeat from a previously-detached consumer re-registers it.
                self._detached.pop(consumer_id, None)
                self._peers[consumer_id] = PeerLiveness(consumer_id, now, now)
            else:
                peer.last_seen = now
                peer.beats_received += 1

    def forget(self, consumer_id: str) -> None:
        """Remove a consumer that departed gracefully (BYE)."""
        with self._lock:
            self._peers.pop(consumer_id, None)
            self._detached.pop(consumer_id, None)

    # -- queries -----------------------------------------------------------------
    def live_consumers(self) -> List[str]:
        with self._lock:
            return sorted(self._peers)

    def is_live(self, consumer_id: str) -> bool:
        with self._lock:
            return consumer_id in self._peers

    def silence_of(self, consumer_id: str) -> Optional[float]:
        with self._lock:
            peer = self._peers.get(consumer_id)
        if peer is None:
            return None
        return peer.silence(self._clock())

    @property
    def detach_timeout(self) -> float:
        return self._detach_timeout

    # -- detachment ----------------------------------------------------------------
    def sweep(self) -> List[str]:
        """Detach every consumer whose silence exceeds the timeout.

        Returns the ids detached by this sweep.  The producer calls this
        periodically and stops waiting for acknowledgements from detached
        consumers so a crashed trainer cannot wedge the shared loader.
        """
        now = self._clock()
        detached: List[str] = []
        with self._lock:
            for consumer_id in list(self._peers):
                peer = self._peers[consumer_id]
                if peer.silence(now) > self._detach_timeout:
                    detached.append(consumer_id)
                    self._detached[consumer_id] = self._peers.pop(consumer_id)
        if detached:
            _DETACHES.inc(len(detached))
        return detached

    def detached_consumers(self) -> List[str]:
        with self._lock:
            return sorted(self._detached)


class HeartbeatSender:
    """Consumer-side heartbeat emitter."""

    def __init__(
        self,
        push_socket,
        consumer_id: str,
        interval: float = 1.0,
        clock: Clock = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self._socket = push_socket
        self._consumer_id = consumer_id
        self._interval = interval
        self._clock = clock
        self._last_sent: Optional[float] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.beats_sent = 0

    @property
    def interval(self) -> float:
        return self._interval

    def send(self) -> None:
        """Send one heartbeat immediately."""
        self._socket.send(MessageKind.HEARTBEAT, body={"consumer_id": self._consumer_id})
        self._last_sent = self._clock()
        self.beats_sent += 1
        _SENT.inc()

    def maybe_send(self) -> bool:
        """Send a heartbeat if the interval has elapsed; returns True if sent."""
        now = self._clock()
        if self._last_sent is None or now - self._last_sent >= self._interval:
            self.send()
            return True
        return False

    # -- background operation -------------------------------------------------------
    def run_background(self) -> None:
        """Start a daemon thread that beats every ``interval`` seconds.

        Restartable: ``stop()`` leaves the stop event set, so it must be
        cleared here or a restarted sender's thread would see the stale stop
        and exit before sending a single beat.
        """
        if self._thread is not None:
            return
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="repro-heartbeat"
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop_event.wait(self._interval):
            try:
                self.send()
            except Exception:
                # A failed heartbeat means the producer is gone; the consumer's
                # main loop will notice through its own receive timeout.
                break

    def stop(self) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=2 * self._interval)
            self._thread = None
