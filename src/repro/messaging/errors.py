"""Exception hierarchy for the messaging layer."""


class MessagingError(Exception):
    """Base class for messaging failures."""


class EndpointClosedError(MessagingError):
    """Raised when sending to or receiving from a closed endpoint."""


class TimeoutError_(MessagingError):
    """Raised when a blocking receive exceeds its timeout.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`TimeoutError`; it still subclasses :class:`MessagingError` so
    callers can catch messaging failures uniformly.
    """


class EndpointError(MessagingError):
    """Base class for URI endpoint-resolution failures."""


class AddressError(EndpointError):
    """A malformed endpoint address (not ``scheme://locator``)."""


class UnknownSchemeError(EndpointError):
    """No transport is registered for the address's URI scheme."""


class AddressInUseError(EndpointError):
    """Binding an address (or registering a scheme) that is already taken."""


class AddressNotServedError(EndpointError):
    """Connecting to an address nothing is currently serving."""


class DuplicateConsumerError(MessagingError):
    """A consumer tried to register an id another live consumer already holds."""
