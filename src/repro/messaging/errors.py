"""Exception hierarchy for the messaging layer."""


class MessagingError(Exception):
    """Base class for messaging failures."""


class EndpointClosedError(MessagingError):
    """Raised when sending to or receiving from a closed endpoint."""


class TimeoutError_(MessagingError):
    """Raised when a blocking receive exceeds its timeout.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`TimeoutError`; it still subclasses :class:`MessagingError` so
    callers can catch messaging failures uniformly.
    """
