"""Samplers: the order in which a data loader visits dataset indices.

The paper's mechanisms interact with sampling in two places: the producer's
nested loader iterates the dataset in whatever order its sampler defines, and
Joader's "dependent sampling" (re-implemented in
:mod:`repro.baselines.joader`) needs per-job samplers whose intersections are
recomputed every iteration.  These samplers mirror ``torch.utils.data``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np


class Sampler:
    """Base class: an iterable of dataset indices with a known length."""

    def __iter__(self) -> Iterator[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class SequentialSampler(Sampler):
    """Visit indices ``0, 1, ..., n-1`` in order."""

    def __init__(self, data_source) -> None:
        self.data_source = data_source

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self.data_source)))

    def __len__(self) -> int:
        return len(self.data_source)


class RandomSampler(Sampler):
    """Visit indices in a fresh pseudo-random permutation each epoch.

    ``reseed_each_epoch`` controls whether successive iterations produce
    different permutations (the PyTorch behaviour) or repeat the same one
    (useful for reproducible tests).
    """

    def __init__(
        self,
        data_source,
        *,
        seed: int = 0,
        reseed_each_epoch: bool = True,
        replacement: bool = False,
        num_samples: Optional[int] = None,
    ) -> None:
        self.data_source = data_source
        self.seed = int(seed)
        self.reseed_each_epoch = bool(reseed_each_epoch)
        self.replacement = bool(replacement)
        self._num_samples = num_samples
        self._epoch = 0

    @property
    def num_samples(self) -> int:
        return self._num_samples if self._num_samples is not None else len(self.data_source)

    def set_epoch(self, epoch: int) -> None:
        """Explicitly pin the permutation used by the next iteration."""
        self._epoch = int(epoch)

    def __iter__(self) -> Iterator[int]:
        rng = np.random.default_rng(self.seed + self._epoch)
        n = len(self.data_source)
        if self.replacement:
            indices = rng.integers(0, n, size=self.num_samples)
        else:
            indices = rng.permutation(n)[: self.num_samples]
        if self.reseed_each_epoch:
            self._epoch += 1
        return iter(int(i) for i in indices)

    def __len__(self) -> int:
        return self.num_samples


class SubsetSampler(Sampler):
    """Visit a fixed list of indices in the given order."""

    def __init__(self, indices: Sequence[int]) -> None:
        self.indices = [int(i) for i in indices]

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices)

    def __len__(self) -> int:
        return len(self.indices)


class BatchSampler(Sampler):
    """Group another sampler's indices into lists of ``batch_size``."""

    def __init__(self, sampler: Sampler, batch_size: int, drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.sampler = sampler
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)

    def __iter__(self) -> Iterator[List[int]]:
        batch: List[int] = []
        for index in self.sampler:
            batch.append(index)
            if len(batch) == self.batch_size:
                yield batch
                batch = []
        if batch and not self.drop_last:
            yield batch

    def __len__(self) -> int:
        n = len(self.sampler)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size
