"""Samplers: the order in which a data loader visits dataset indices.

The paper's mechanisms interact with sampling in two places: the producer's
nested loader iterates the dataset in whatever order its sampler defines, and
Joader's "dependent sampling" (re-implemented in
:mod:`repro.baselines.joader`) needs per-job samplers whose intersections are
recomputed every iteration.  These samplers mirror ``torch.utils.data``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np


class Sampler:
    """Base class: an iterable of dataset indices with a known length."""

    def __iter__(self) -> Iterator[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class SequentialSampler(Sampler):
    """Visit indices ``0, 1, ..., n-1`` in order."""

    def __init__(self, data_source) -> None:
        self.data_source = data_source

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self.data_source)))

    def __len__(self) -> int:
        return len(self.data_source)


class RandomSampler(Sampler):
    """Visit indices in a fresh pseudo-random permutation each epoch.

    ``reseed_each_epoch`` controls whether successive iterations produce
    different permutations (the PyTorch behaviour) or repeat the same one
    (useful for reproducible tests).
    """

    def __init__(
        self,
        data_source,
        *,
        seed: int = 0,
        reseed_each_epoch: bool = True,
        replacement: bool = False,
        num_samples: Optional[int] = None,
    ) -> None:
        self.data_source = data_source
        self.seed = int(seed)
        self.reseed_each_epoch = bool(reseed_each_epoch)
        self.replacement = bool(replacement)
        self._num_samples = num_samples
        self._epoch = 0

    @property
    def num_samples(self) -> int:
        return self._num_samples if self._num_samples is not None else len(self.data_source)

    def set_epoch(self, epoch: int) -> None:
        """Explicitly pin the permutation used by the next iteration."""
        self._epoch = int(epoch)

    def __iter__(self) -> Iterator[int]:
        rng = np.random.default_rng(self.seed + self._epoch)
        n = len(self.data_source)
        if self.replacement:
            indices = rng.integers(0, n, size=self.num_samples)
        else:
            indices = rng.permutation(n)[: self.num_samples]
        if self.reseed_each_epoch:
            self._epoch += 1
        return iter(int(i) for i in indices)

    def __len__(self) -> int:
        return self.num_samples


class SubsetSampler(Sampler):
    """Visit a fixed list of indices in the given order."""

    def __init__(self, indices: Sequence[int]) -> None:
        self.indices = [int(i) for i in indices]

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices)

    def __len__(self) -> int:
        return len(self.indices)


class ShardSampler(Sampler):
    """One of ``num_shards`` disjoint shards of a base sampler's index stream.

    Sharding happens by *position* in the base sampler's output, so it works
    over any base sampler — sequential, random, subset — and the union of all
    shards visits every index the base sampler yields exactly once:

    * ``mode="strided"``: shard ``k`` keeps positions ``k, k+N, k+2N, ...``
      (round-robin, the default — shards stay within one sample of each other
      in length, which keeps a sharded producer group balanced);
    * ``mode="contiguous"``: shard ``k`` keeps the ``k``-th block of
      ``ceil(n/N)`` consecutive positions (CoorDL-style partitioning).

    ``set_epoch`` forwards to the base sampler.  That is the property sharded
    producer groups rely on: every member holds its own equal-seeded base
    sampler, pins it to the same epoch, and therefore derives the same base
    permutation — making the shards disjoint *per epoch* while successive
    epochs still reshuffle.
    """

    MODES = ("strided", "contiguous")

    def __init__(
        self,
        sampler: Sampler,
        *,
        num_shards: int,
        shard_index: int,
        mode: str = "strided",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if not (0 <= shard_index < num_shards):
            raise ValueError(
                f"shard_index must be in [0, {num_shards}), got {shard_index}"
            )
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.sampler = sampler
        self.num_shards = int(num_shards)
        self.shard_index = int(shard_index)
        self.mode = mode

    def set_epoch(self, epoch: int) -> None:
        """Pin the base sampler's permutation (no-op for unseeded samplers)."""
        set_epoch = getattr(self.sampler, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(int(epoch))

    def _block_bounds(self, n: int) -> "tuple[int, int]":
        per_shard = (n + self.num_shards - 1) // self.num_shards
        start = self.shard_index * per_shard
        return start, min(start + per_shard, n)

    def __iter__(self) -> Iterator[int]:
        if self.mode == "strided":
            for position, index in enumerate(self.sampler):
                if position % self.num_shards == self.shard_index:
                    yield index
        else:
            start, stop = self._block_bounds(len(self.sampler))
            for position, index in enumerate(self.sampler):
                if position >= stop:
                    break
                if position >= start:
                    yield index

    def __len__(self) -> int:
        n = len(self.sampler)
        if self.mode == "strided":
            # Positions p in [0, n) with p % num_shards == shard_index.
            return max(0, (n - self.shard_index + self.num_shards - 1) // self.num_shards)
        start, stop = self._block_bounds(n)
        return max(0, stop - start)


class BatchSampler(Sampler):
    """Group another sampler's indices into lists of ``batch_size``."""

    def __init__(self, sampler: Sampler, batch_size: int, drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.sampler = sampler
        self.batch_size = int(batch_size)
        self.drop_last = bool(drop_last)

    def __iter__(self) -> Iterator[List[int]]:
        batch: List[int] = []
        for index in self.sampler:
            batch.append(index)
            if len(batch) == self.batch_size:
                yield batch
                batch = []
        if batch and not self.drop_last:
            yield batch

    def __len__(self) -> int:
        n = len(self.sampler)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size
