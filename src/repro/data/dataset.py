"""Dataset protocols: map-style, iterable, subsets and concatenation.

These mirror ``torch.utils.data``'s dataset surface closely enough that any
training script written against this reproduction reads like a PyTorch script
(which is the adoption argument the paper makes for TensorSocket itself).
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Sequence


class Dataset:
    """A map-style dataset: indexable and sized.

    Subclasses implement ``__getitem__`` and ``__len__``.  Items can be
    anything the downstream collate function understands; the synthetic
    datasets in :mod:`repro.data.synthetic` return ``(sample, label)`` pairs of
    numpy arrays / ints plus a per-item cost annotation.
    """

    def __getitem__(self, index: int):
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator:
        for index in range(len(self)):
            yield self[index]

    # -- composition helpers -----------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "Subset":
        return Subset(self, indices)

    def __add__(self, other: "Dataset") -> "ConcatDataset":
        return ConcatDataset([self, other])


class IterableDataset:
    """A purely streaming dataset (no random access, unknown or known length)."""

    def __iter__(self) -> Iterator:
        raise NotImplementedError


class Subset(Dataset):
    """A view of a dataset restricted to the given indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]) -> None:
        self.dataset = dataset
        self.indices = list(indices)
        n = len(dataset)
        for index in self.indices:
            if not (0 <= index < n):
                raise IndexError(f"subset index {index} out of range for dataset of size {n}")

    def __getitem__(self, index: int):
        return self.dataset[self.indices[index]]

    def __len__(self) -> int:
        return len(self.indices)


class ConcatDataset(Dataset):
    """Concatenation of several datasets, indexable as one."""

    def __init__(self, datasets: Iterable[Dataset]) -> None:
        self.datasets: List[Dataset] = list(datasets)
        if not self.datasets:
            raise ValueError("ConcatDataset needs at least one dataset")
        self.cumulative_sizes: List[int] = []
        total = 0
        for dataset in self.datasets:
            total += len(dataset)
            self.cumulative_sizes.append(total)

    def __len__(self) -> int:
        return self.cumulative_sizes[-1]

    def __getitem__(self, index: int):
        if index < 0:
            index += len(self)
        if not (0 <= index < len(self)):
            raise IndexError(f"index {index} out of range for ConcatDataset of size {len(self)}")
        dataset_idx = bisect.bisect_right(self.cumulative_sizes, index)
        prior = 0 if dataset_idx == 0 else self.cumulative_sizes[dataset_idx - 1]
        return self.datasets[dataset_idx][index - prior]


def train_val_split(dataset: Dataset, val_fraction: float, *, seed: int = 0):
    """Split a dataset into (train, validation) subsets.

    The split is deterministic given ``seed`` — validation indices are a
    pseudo-random sample without replacement.
    """
    import numpy as np

    if not (0.0 < val_fraction < 1.0):
        raise ValueError("val_fraction must be in (0, 1)")
    n = len(dataset)
    n_val = max(1, int(round(n * val_fraction)))
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(n)
    val_indices = sorted(int(i) for i in permutation[:n_val])
    train_indices = sorted(int(i) for i in permutation[n_val:])
    return Subset(dataset, train_indices), Subset(dataset, val_indices)
