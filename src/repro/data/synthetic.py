"""Synthetic stand-ins for the paper's datasets.

The paper evaluates on ImageNet-1K, LibriSpeech, Conceptual Captions (CC3M)
and Alpaca.  None of these can be downloaded in this environment, so each gets
a synthetic equivalent that preserves the properties the data-loading path
cares about:

* on-disk item size (drives disk I/O accounting),
* decoded item shape and dtype (drives PCIe traffic and GPU memory),
* per-item decode / preprocessing cost (drives CPU-boundedness),
* deterministic content derived from the item index (so tests can assert that
  every consumer observed identical bytes without storing the dataset).

Items are generated on the fly from a counter-based RNG; nothing is stored, so
a "1.28M-image" dataset costs no memory until items are materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset


def _rng_for(seed: int, index: int) -> np.random.Generator:
    """A per-item RNG: independent streams keyed by (seed, index)."""
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(index,)))


@dataclass(frozen=True)
class SampleRecord:
    """An un-decoded sample as it would come off storage.

    ``payload`` is the raw encoded bytes (a stand-in for a JPEG / FLAC / text
    blob), ``label`` is the supervised target, and ``stored_nbytes`` is what
    reading the item costs in disk traffic.
    """

    index: int
    payload: np.ndarray
    label: int
    stored_nbytes: int
    kind: str


class SyntheticImageDataset(Dataset):
    """ImageNet-like synthetic dataset of encoded images.

    Real ImageNet-1K: ~1.28M training images, average JPEG ≈ 110 KB, decoded
    to 3x224x224 after augmentation, 1000 classes.  The defaults scale the
    sample count down (experiments pass an explicit size) but keep per-item
    sizes authentic so I/O and decode ratios match.
    """

    DEFAULT_ENCODED_BYTES = 110 * 1024

    def __init__(
        self,
        size: int = 1_281_167,
        *,
        num_classes: int = 1000,
        image_size: int = 224,
        encoded_bytes: int = DEFAULT_ENCODED_BYTES,
        payload_bytes: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError("dataset size must be positive")
        self._size = int(size)
        self.num_classes = int(num_classes)
        self.image_size = int(image_size)
        self.encoded_bytes = int(encoded_bytes)
        # payload_bytes controls how many bytes are *materialized* per item;
        # keeping it small makes tests fast while stored_nbytes still reports
        # the realistic on-disk size for I/O accounting.
        self.payload_bytes = int(payload_bytes if payload_bytes is not None else min(encoded_bytes, 4096))
        self.seed = int(seed)

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> SampleRecord:
        if index < 0:
            index += self._size
        if not (0 <= index < self._size):
            raise IndexError(f"index {index} out of range for dataset of size {self._size}")
        rng = _rng_for(self.seed, index)
        payload = rng.integers(0, 256, size=self.payload_bytes, dtype=np.uint8)
        label = int(rng.integers(0, self.num_classes))
        return SampleRecord(
            index=index,
            payload=payload,
            label=label,
            stored_nbytes=self.encoded_bytes,
            kind="image",
        )

    def decoded_shape(self) -> Tuple[int, int, int]:
        return (3, self.image_size, self.image_size)


class SyntheticAudioDataset(Dataset):
    """LibriSpeech-like synthetic dataset of audio clips.

    LibriSpeech train-clean-100: ~28.5k utterances, FLAC ≈ 650 KB average,
    16 kHz mono.  CLMR trains on fixed-length crops (59049 samples ≈ 3.7 s).
    """

    DEFAULT_ENCODED_BYTES = 650 * 1024

    def __init__(
        self,
        size: int = 28_539,
        *,
        sample_rate: int = 16_000,
        clip_seconds: float = 3.69,
        num_classes: int = 251,
        encoded_bytes: int = DEFAULT_ENCODED_BYTES,
        payload_bytes: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError("dataset size must be positive")
        self._size = int(size)
        self.sample_rate = int(sample_rate)
        self.clip_samples = int(sample_rate * clip_seconds)
        self.num_classes = int(num_classes)
        self.encoded_bytes = int(encoded_bytes)
        self.payload_bytes = int(payload_bytes if payload_bytes is not None else min(encoded_bytes, 4096))
        self.seed = int(seed)

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> SampleRecord:
        if index < 0:
            index += self._size
        if not (0 <= index < self._size):
            raise IndexError(f"index {index} out of range for dataset of size {self._size}")
        rng = _rng_for(self.seed, index)
        payload = rng.integers(0, 256, size=self.payload_bytes, dtype=np.uint8)
        label = int(rng.integers(0, self.num_classes))
        return SampleRecord(
            index=index,
            payload=payload,
            label=label,
            stored_nbytes=self.encoded_bytes,
            kind="audio",
        )

    def decoded_shape(self) -> Tuple[int]:
        return (self.clip_samples,)


class SyntheticCaptionDataset(Dataset):
    """Conceptual-Captions-like dataset of (image, caption token ids) pairs.

    Used for the DALL-E 2 diffusion-prior workload: each item is an encoded
    image plus a tokenized caption; the producer-side CLIP model turns these
    into image/text embeddings (Section 3.3.4 of the paper).
    """

    DEFAULT_ENCODED_BYTES = 90 * 1024

    def __init__(
        self,
        size: int = 3_300_000,
        *,
        image_size: int = 224,
        caption_length: int = 77,
        vocab_size: int = 49_408,
        encoded_bytes: int = DEFAULT_ENCODED_BYTES,
        payload_bytes: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError("dataset size must be positive")
        self._size = int(size)
        self.image_size = int(image_size)
        self.caption_length = int(caption_length)
        self.vocab_size = int(vocab_size)
        self.encoded_bytes = int(encoded_bytes)
        self.payload_bytes = int(payload_bytes if payload_bytes is not None else min(encoded_bytes, 4096))
        self.seed = int(seed)

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int):
        if index < 0:
            index += self._size
        if not (0 <= index < self._size):
            raise IndexError(f"index {index} out of range for dataset of size {self._size}")
        rng = _rng_for(self.seed, index)
        payload = rng.integers(0, 256, size=self.payload_bytes, dtype=np.uint8)
        caption = rng.integers(0, self.vocab_size, size=self.caption_length, dtype=np.int64)
        return {
            "index": index,
            "payload": payload,
            "caption": caption,
            "stored_nbytes": self.encoded_bytes,
            "kind": "image_caption",
        }


class SyntheticInstructionDataset(Dataset):
    """Alpaca-like instruction-tuning dataset of tokenized prompt/response pairs.

    Alpaca has 52k instruction examples; sequences are short (mean ≈ 270
    tokens) and preprocessing is trivial, which is why the LLM fine-tuning use
    case in the paper (Table 4) is GPU-bound rather than input-bound.
    """

    def __init__(
        self,
        size: int = 52_002,
        *,
        max_sequence_length: int = 512,
        mean_sequence_length: int = 270,
        vocab_size: int = 151_936,
        seed: int = 0,
    ) -> None:
        if size <= 0:
            raise ValueError("dataset size must be positive")
        if mean_sequence_length > max_sequence_length:
            raise ValueError("mean_sequence_length cannot exceed max_sequence_length")
        self._size = int(size)
        self.max_sequence_length = int(max_sequence_length)
        self.mean_sequence_length = int(mean_sequence_length)
        self.vocab_size = int(vocab_size)
        self.seed = int(seed)

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int):
        if index < 0:
            index += self._size
        if not (0 <= index < self._size):
            raise IndexError(f"index {index} out of range for dataset of size {self._size}")
        rng = _rng_for(self.seed, index)
        length = int(
            np.clip(
                rng.normal(self.mean_sequence_length, self.mean_sequence_length / 4),
                16,
                self.max_sequence_length,
            )
        )
        tokens = rng.integers(0, self.vocab_size, size=length, dtype=np.int64)
        return {
            "index": index,
            "tokens": tokens,
            "length": length,
            "stored_nbytes": length * 4,
            "kind": "instruction",
        }


_DATASET_FACTORIES = {
    "imagenet": SyntheticImageDataset,
    "librispeech": SyntheticAudioDataset,
    "cc3m": SyntheticCaptionDataset,
    "alpaca": SyntheticInstructionDataset,
}


def make_dataset(name: str, size: Optional[int] = None, **kwargs) -> Dataset:
    """Build a synthetic dataset by the paper's dataset name.

    Parameters
    ----------
    name:
        One of ``imagenet``, ``librispeech``, ``cc3m``, ``alpaca``
        (case-insensitive).
    size:
        Number of items; defaults to the real dataset's training-set size.
    """
    key = name.lower()
    try:
        factory = _DATASET_FACTORIES[key]
    except KeyError as exc:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(_DATASET_FACTORIES)}"
        ) from exc
    if size is not None:
        return factory(size, **kwargs)
    return factory(**kwargs)
