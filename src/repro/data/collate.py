"""Collation: turn a list of per-item dictionaries into one batch of tensors.

The producer's nested loader collates items exactly like PyTorch's default
collate function: numpy arrays and tensors stack along a new leading
dimension, numbers become 1-D tensors, and dictionaries collate key-wise.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.tensor.tensor import Tensor, from_numpy, stack


def default_collate(items: Sequence) -> Dict[str, Tensor]:
    """Collate a list of items into a mapping of batched tensors.

    Supported item shapes:

    * mapping of str → (Tensor | numpy array | int | float) — collated per key,
    * tuple ``(sample, label)`` — collated into ``{"inputs", "targets"}``.
    """
    items = list(items)
    if not items:
        raise ValueError("cannot collate an empty batch")

    first = items[0]
    if isinstance(first, Mapping):
        return {key: _collate_values([item[key] for item in items]) for key in first}
    if isinstance(first, (tuple, list)) and len(first) == 2:
        inputs = _collate_values([item[0] for item in items])
        targets = _collate_values([item[1] for item in items])
        return {"inputs": inputs, "targets": targets}
    raise TypeError(f"cannot collate items of type {type(first)!r}")


def _collate_values(values: List) -> Tensor:
    first = values[0]
    if isinstance(first, Tensor):
        return stack(values)
    if isinstance(first, np.ndarray):
        return from_numpy(np.stack(values))
    if isinstance(first, (int, np.integer)):
        return from_numpy(np.asarray(values, dtype=np.int64))
    if isinstance(first, (float, np.floating)):
        return from_numpy(np.asarray(values, dtype=np.float32))
    raise TypeError(f"cannot collate values of type {type(first)!r}")
