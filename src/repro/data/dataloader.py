"""A multi-worker, prefetching data loader.

This is the object a :class:`~repro.core.producer.TensorProducer` wraps — the
reproduction of ``torch.utils.data.DataLoader``.  It supports:

* map-style datasets with a sampler / batch-sampler,
* an optional per-item ``transform`` (the preprocessing pipeline),
* ``num_workers`` worker threads with ``prefetch_factor`` batches in flight,
* ordered delivery (batches come out in sampler order regardless of which
  worker finished first),
* a ``nominal_cpu_seconds_per_item`` estimate derived from the transform
  chain, which the simulated experiments use to charge CPU time.

Worker parallelism uses threads rather than processes: the numpy work in the
synthetic pipelines is small, threads keep the loader dependency-free, and the
hardware *cost* of loading is modeled separately by the simulator, so thread
workers are sufficient for both the real-mode library and the experiments.
"""

from __future__ import annotations

import copy
import queue
import threading
from typing import Callable, Dict, List, Optional, Sequence

from repro.data.collate import default_collate
from repro.data.dataset import Dataset
from repro.data.samplers import (
    BatchSampler,
    RandomSampler,
    Sampler,
    SequentialSampler,
    ShardSampler,
)
from repro.tensor.tensor import Tensor


class DataLoader:
    """Iterate a dataset in batches, optionally with worker threads.

    Parameters
    ----------
    dataset:
        A map-style :class:`~repro.data.dataset.Dataset`.
    batch_size:
        Samples per batch (ignored when ``batch_sampler`` is given).
    shuffle:
        Use a :class:`~repro.data.samplers.RandomSampler` when no explicit
        sampler is supplied.
    sampler / batch_sampler:
        Explicit sampling control, mutually exclusive with ``shuffle`` /
        ``batch_size`` respectively (matching PyTorch's rules).
    num_workers:
        Worker threads; ``0`` loads synchronously in the iterating thread.
    transform:
        Optional per-item callable applied before collation.
    collate_fn:
        Batch assembly function; defaults to :func:`default_collate`.
    prefetch_factor:
        Batches each worker keeps in flight.
    drop_last:
        Drop the final partial batch.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 1,
        *,
        shuffle: bool = False,
        sampler: Optional[Sampler] = None,
        batch_sampler: Optional[BatchSampler] = None,
        num_workers: int = 0,
        transform: Optional[Callable] = None,
        collate_fn: Optional[Callable] = None,
        prefetch_factor: int = 2,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_sampler is not None:
            if sampler is not None or shuffle:
                raise ValueError("batch_sampler is mutually exclusive with sampler/shuffle")
        else:
            if batch_size <= 0:
                raise ValueError("batch_size must be positive")
        if sampler is not None and shuffle:
            raise ValueError("sampler is mutually exclusive with shuffle")
        if num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if prefetch_factor <= 0:
            raise ValueError("prefetch_factor must be positive")

        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.num_workers = int(num_workers)
        self.transform = transform
        self.collate_fn = collate_fn or default_collate
        self.prefetch_factor = int(prefetch_factor)
        self.drop_last = bool(drop_last)

        self._custom_batch_sampler = batch_sampler is not None
        if batch_sampler is not None:
            self.batch_sampler = batch_sampler
            self.sampler = batch_sampler.sampler
        else:
            if sampler is None:
                sampler = (
                    RandomSampler(dataset, seed=seed) if shuffle else SequentialSampler(dataset)
                )
            self.sampler = sampler
            self.batch_sampler = BatchSampler(sampler, self.batch_size, drop_last=drop_last)

    # -- metadata ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of batches per epoch."""
        return len(self.batch_sampler)

    @property
    def nominal_cpu_seconds_per_item(self) -> float:
        """Single-core CPU seconds of preprocessing per item (0 if no transform)."""
        return getattr(self.transform, "nominal_cpu_seconds", 0.0) if self.transform else 0.0

    @property
    def stored_bytes_per_item(self) -> int:
        """On-disk bytes read per item, taken from the dataset when it reports it."""
        probe = self.dataset[0] if len(self.dataset) else None
        if probe is None:
            return 0
        if hasattr(probe, "stored_nbytes"):
            return int(probe.stored_nbytes)
        if isinstance(probe, dict) and "stored_nbytes" in probe:
            return int(probe["stored_nbytes"])
        return 0

    # -- epochs & sharding -----------------------------------------------------------
    def set_epoch(self, epoch: int) -> None:
        """Pin the sampler's permutation for the next iteration (if seeded).

        The producer's epoch runner calls this at every epoch boundary so the
        epoch's sample order is a pure function of ``(seed, epoch)`` — the
        property that keeps N sharded loaders (see :meth:`shard`) deriving
        the same base permutation for their disjoint shards.  Loaders whose
        sampler has no ``set_epoch`` (e.g. sequential) ignore the call.
        """
        target = (
            self.batch_sampler
            if hasattr(self.batch_sampler, "set_epoch")
            else self.sampler
        )
        set_epoch = getattr(target, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(int(epoch))

    def shard(self, shard_index: int, num_shards: int, *, mode: str = "strided") -> "DataLoader":
        """A new loader serving one of ``num_shards`` disjoint sample shards.

        The returned loader shares this loader's dataset, transform, collate
        function and worker configuration, but samples through a
        :class:`~repro.data.samplers.ShardSampler` over a copy of this
        loader's sampler — so the N loaders produced by ``loader.shard(i, N)``
        for ``i in range(N)`` together cover every sample exactly once per
        epoch (provided each is pinned to the same epoch via
        :meth:`set_epoch`, which the producer does automatically).
        """
        if self._custom_batch_sampler:
            raise ValueError(
                "cannot shard a DataLoader built around an explicit batch_sampler; "
                "shard the underlying sampler and construct per-shard loaders directly"
            )
        # A shallow copy gives each shard its own iteration/epoch state while
        # sharing the (potentially large) data source.
        base = copy.copy(self.sampler)
        return DataLoader(
            self.dataset,
            batch_size=self.batch_size,
            sampler=ShardSampler(
                base, num_shards=num_shards, shard_index=shard_index, mode=mode
            ),
            num_workers=self.num_workers,
            transform=self.transform,
            collate_fn=self.collate_fn,
            prefetch_factor=self.prefetch_factor,
            drop_last=self.drop_last,
        )

    # -- iteration -------------------------------------------------------------------
    def __iter__(self) -> "LoaderIterator":
        return LoaderIterator(self)

    def prefetch_iter(
        self,
        max_in_flight: Optional[int] = None,
        num_workers: Optional[int] = None,
        batches: Optional[Sequence[Sequence[int]]] = None,
    ) -> "LoaderIterator":
        """An epoch iterator with explicit prefetch control.

        This is how an outer pipeline (e.g. the producer's staged pipeline in
        :mod:`repro.core.pipeline`) composes with the loader's own worker
        parallelism without multiplying prefetch budgets:

        * ``max_in_flight`` caps how many batches the loader keeps loaded but
          not yet yielded (instead of the default
          ``num_workers * prefetch_factor``), so the *outer* pipeline's depth
          bounds total batches in memory;
        * ``num_workers`` overrides the loader's worker count for this
          iteration only — an outer pipeline can ask a synchronous loader for
          background workers so slow per-item transforms load in parallel;
        * ``batches`` replaces the sampler's batch list with an explicit one
          (a sequence of per-batch index lists) — the epoch cache uses this
          to load *only the cache misses* of a partially cached epoch through
          the same worker machinery, in the caller's order.

        All default to the loader's configured values.
        """
        return LoaderIterator(
            self, num_workers=num_workers, max_in_flight=max_in_flight, batches=batches
        )

    def _load_item(self, index: int):
        item = self.dataset[index]
        if self.transform is not None:
            item = self.transform(item)
        return item

    def _load_batch(self, indices: Sequence[int]) -> Dict[str, Tensor]:
        return self.collate_fn([self._load_item(i) for i in indices])


class LoaderIterator:
    """One epoch's iteration state, with optional worker threads."""

    _SENTINEL = object()

    def __init__(
        self,
        loader: DataLoader,
        *,
        num_workers: Optional[int] = None,
        max_in_flight: Optional[int] = None,
        batches: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        self._loader = loader
        self._batches = list(loader.batch_sampler) if batches is None else list(batches)
        self._next_to_yield = 0
        self.batches_loaded = 0
        workers = loader.num_workers if num_workers is None else int(num_workers)
        if workers < 0:
            raise ValueError("num_workers must be non-negative")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be positive when given")

        if workers == 0:
            self._mode = "sync"
            return

        self._mode = "threaded"
        self._task_queue: "queue.Queue" = queue.Queue()
        self._results_lock = threading.Condition()
        self._results: Dict[int, Dict[str, Tensor]] = {}  #: guarded by _results_lock
        self._stop = threading.Event()
        budget = workers * loader.prefetch_factor if max_in_flight is None else int(max_in_flight)
        self._in_flight = threading.Semaphore(max(1, budget))

        for position, indices in enumerate(self._batches):
            self._task_queue.put((position, indices))
        for _ in range(workers):
            self._task_queue.put(self._SENTINEL)

        self._workers = [
            threading.Thread(
                target=self._worker_loop, daemon=True, name=f"repro-loader-worker-{i}"
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- worker side -------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            # The in-flight permit is acquired BEFORE claiming a task.  The
            # other order can deadlock when the budget is tight: a worker
            # holding the next-needed task but no permit starves while
            # already-posted later results hoard every permit — the consumer
            # stops popping (it needs that task), so no permit is ever
            # released.  Permit-first, tasks are claimed in sampler order and
            # every claimed task can always be loaded and posted.
            if not self._in_flight.acquire(timeout=0.1):
                continue
            try:
                task = self._task_queue.get(timeout=0.1)
            except queue.Empty:
                # close() may have drained the queue (sentinels included).
                self._in_flight.release()
                continue
            if task is self._SENTINEL:
                self._in_flight.release()
                return
            position, indices = task
            try:
                batch = self._loader._load_batch(indices)
            except Exception as exc:  # surface worker failures to the consumer
                batch = exc
            with self._results_lock:
                self._results[position] = batch
                self._results_lock.notify_all()

    # -- consumer side ---------------------------------------------------------------
    @property
    def sampled_batches(self) -> List[Sequence[int]]:
        """The per-batch index lists this iteration serves, in order.

        One epoch's sampler draw, frozen at construction; the epoch cache
        records it so later partially-cached epochs reload misses from the
        *same* composition the cached batches came from.
        """
        return list(self._batches)

    def __iter__(self) -> "LoaderIterator":
        return self

    def __next__(self) -> Dict[str, Tensor]:
        if self._next_to_yield >= len(self._batches):
            self.close()
            raise StopIteration
        if self._mode == "sync":
            batch = self._loader._load_batch(self._batches[self._next_to_yield])
        else:
            with self._results_lock:
                while self._next_to_yield not in self._results:
                    if self._stop.is_set():
                        # Closed mid-epoch: the workers are gone and this
                        # batch will never arrive.  End iteration instead of
                        # spinning on the condition forever.
                        raise StopIteration
                    self._results_lock.wait(timeout=0.1)
                batch = self._results.pop(self._next_to_yield)
            self._in_flight.release()
            if isinstance(batch, Exception):
                self.close()
                raise batch
        self._next_to_yield += 1
        self.batches_loaded += 1
        return batch

    def close(self) -> None:
        if self._mode == "threaded":
            self._stop.set()
            # Drain remaining tasks so worker threads can exit promptly.
            try:
                while True:
                    self._task_queue.get_nowait()
            except queue.Empty:
                pass
            # Wake anyone parked in __next__ waiting for a result that will
            # never be produced.
            with self._results_lock:
                self._results_lock.notify_all()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
