"""Pre-processing transforms with calibrated CPU-cost annotations.

Decoding, transforming and augmenting data are the operations that make DL
input pipelines CPU-bound (paper Section 2).  Each transform here does two
things:

1. performs a real numpy computation on the item (so the real-mode library is
   genuinely functional and tests can check value semantics), and
2. reports a *nominal CPU cost* per item — seconds of single-core work the
   equivalent operation takes in the paper's pipelines — which the hardware
   simulator charges against the modeled vCPUs.  The real numpy work is kept
   deliberately small so experiments run quickly; the nominal cost is what
   drives the reproduced results.

The nominal costs are calibrated so that one ImageNet sample costs ≈ 4 ms of
single-core CPU end to end (fetch + JPEG decode + resize + crop + flip +
normalize), which matches the data-stall literature the paper builds on
(CoorDL reports ≈ 250–300 images/s per core for this pipeline).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.synthetic import SampleRecord
from repro.tensor.tensor import Tensor, from_numpy


class Transform:
    """Base class: a callable on one item plus a CPU-cost annotation."""

    #: Nominal single-core seconds this transform costs per item.
    nominal_cpu_seconds: float = 0.0

    def __call__(self, item):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Compose(Transform):
    """Chain several transforms; cost is the sum of the parts."""

    def __init__(self, transforms: Iterable[Transform]) -> None:
        self.transforms: List[Transform] = list(transforms)

    @property
    def nominal_cpu_seconds(self) -> float:  # type: ignore[override]
        return sum(t.nominal_cpu_seconds for t in self.transforms)

    def __call__(self, item):
        for transform in self.transforms:
            item = transform(item)
        return item

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose([{inner}])"


class SleepTransform(Transform):
    """Wrap a transform with a real per-item wall-clock cost.

    Benchmarks and example workloads use this to model expensive
    decode/augmentation stages: the sleep releases the GIL exactly like
    C-level decode kernels do, so loader-worker parallelism behaves
    realistically.  ``nominal_cpu_seconds`` includes the simulated cost so
    the simulator charges it too.
    """

    def __init__(self, inner: Callable, seconds_per_item: float) -> None:
        self.inner = inner
        self.seconds_per_item = float(seconds_per_item)

    @property
    def nominal_cpu_seconds(self) -> float:  # type: ignore[override]
        return self.seconds_per_item + getattr(self.inner, "nominal_cpu_seconds", 0.0)

    def __call__(self, item):
        time.sleep(self.seconds_per_item)
        return self.inner(item)

    def __repr__(self) -> str:
        return f"SleepTransform({self.inner!r}, seconds_per_item={self.seconds_per_item})"


class DecodeJpeg(Transform):
    """Decode an encoded image record into an HWC uint8 array.

    The synthetic payload is expanded into a deterministic pseudo-image keyed
    by the item index, so every consumer of the same item observes identical
    pixels — the property integration tests rely on to prove data sharing.
    """

    nominal_cpu_seconds = 2.5e-3  # JPEG decode dominates ImageNet preprocessing

    def __init__(self, height: int = 224, width: int = 224) -> None:
        self.height = int(height)
        self.width = int(width)

    def __call__(self, record: SampleRecord):
        if record.kind != "image":
            raise TypeError(f"DecodeJpeg expects an image record, got kind={record.kind!r}")
        rng = np.random.default_rng(record.index)
        image = rng.integers(0, 256, size=(self.height, self.width, 3), dtype=np.uint8)
        # Fold a few payload bytes in so decoding actually touches the payload.
        image[0, 0, 0] = record.payload[0] if record.payload.size else 0
        return {"image": image, "label": record.label, "index": record.index,
                "stored_nbytes": record.stored_nbytes}


class DecodeAudio(Transform):
    """Decode an encoded audio record into a mono float32 waveform."""

    nominal_cpu_seconds = 3.0e-3  # FLAC decode + resample

    def __init__(self, clip_samples: int = 59_049) -> None:
        self.clip_samples = int(clip_samples)

    def __call__(self, record: SampleRecord):
        if record.kind != "audio":
            raise TypeError(f"DecodeAudio expects an audio record, got kind={record.kind!r}")
        rng = np.random.default_rng(record.index)
        waveform = rng.standard_normal(self.clip_samples).astype(np.float32)
        return {"waveform": waveform, "label": record.label, "index": record.index,
                "stored_nbytes": record.stored_nbytes}


class Resize(Transform):
    """Resize the image to ``size`` x ``size`` using nearest-neighbour sampling."""

    nominal_cpu_seconds = 0.7e-3

    def __init__(self, size: int = 256) -> None:
        self.size = int(size)

    def __call__(self, item):
        image = item["image"]
        height, width = image.shape[:2]
        rows = np.linspace(0, height - 1, self.size).astype(np.intp)
        cols = np.linspace(0, width - 1, self.size).astype(np.intp)
        item = dict(item)
        item["image"] = image[rows][:, cols]
        return item


class RandomCrop(Transform):
    """Crop a ``size`` x ``size`` window at a pseudo-random position."""

    nominal_cpu_seconds = 0.2e-3

    def __init__(self, size: int = 224, seed: int = 0) -> None:
        self.size = int(size)
        self._rng = np.random.default_rng(seed)

    def __call__(self, item):
        image = item["image"]
        height, width = image.shape[:2]
        if height < self.size or width < self.size:
            raise ValueError(
                f"cannot crop {self.size}x{self.size} from image of shape {image.shape}"
            )
        top = int(self._rng.integers(0, height - self.size + 1))
        left = int(self._rng.integers(0, width - self.size + 1))
        item = dict(item)
        item["image"] = image[top : top + self.size, left : left + self.size]
        return item


class CenterCrop(Transform):
    """Crop a centred ``size`` x ``size`` window (validation-style)."""

    nominal_cpu_seconds = 0.2e-3

    def __init__(self, size: int = 224) -> None:
        self.size = int(size)

    def __call__(self, item):
        image = item["image"]
        height, width = image.shape[:2]
        top = max(0, (height - self.size) // 2)
        left = max(0, (width - self.size) // 2)
        item = dict(item)
        item["image"] = image[top : top + self.size, left : left + self.size]
        return item


class RandomHorizontalFlip(Transform):
    """Flip the image left-right with probability ``p``."""

    nominal_cpu_seconds = 0.1e-3

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        if not (0.0 <= p <= 1.0):
            raise ValueError("flip probability must be in [0, 1]")
        self.p = float(p)
        self._rng = np.random.default_rng(seed)

    def __call__(self, item):
        if self._rng.random() < self.p:
            item = dict(item)
            item["image"] = item["image"][:, ::-1]
        return item


class Normalize(Transform):
    """Scale to [0,1] float32 and standardize with per-channel mean/std."""

    nominal_cpu_seconds = 0.4e-3

    IMAGENET_MEAN = (0.485, 0.456, 0.406)
    IMAGENET_STD = (0.229, 0.224, 0.225)

    def __init__(
        self,
        mean: Sequence[float] = IMAGENET_MEAN,
        std: Sequence[float] = IMAGENET_STD,
        key: str = "image",
    ) -> None:
        self.mean = np.asarray(mean, dtype=np.float32)
        self.std = np.asarray(std, dtype=np.float32)
        if np.any(self.std == 0):
            raise ValueError("std must be non-zero")
        self.key = key

    def __call__(self, item):
        item = dict(item)
        values = item[self.key].astype(np.float32)
        if values.max() > 1.0:
            values = values / 255.0
        if values.ndim == 3 and values.shape[-1] == len(self.mean):
            values = (values - self.mean) / self.std
        else:
            values = (values - float(self.mean.mean())) / float(self.std.mean())
        item[self.key] = values
        return item


class AudioRandomCrop(Transform):
    """Take a random fixed-length crop of the waveform (CLMR-style)."""

    nominal_cpu_seconds = 0.1e-3

    def __init__(self, crop_samples: int = 59_049, seed: int = 0) -> None:
        self.crop_samples = int(crop_samples)
        self._rng = np.random.default_rng(seed)

    def __call__(self, item):
        waveform = item["waveform"]
        if waveform.shape[0] <= self.crop_samples:
            return item
        start = int(self._rng.integers(0, waveform.shape[0] - self.crop_samples + 1))
        item = dict(item)
        item["waveform"] = waveform[start : start + self.crop_samples]
        return item


class AudioGain(Transform):
    """Random gain augmentation on the waveform."""

    nominal_cpu_seconds = 0.2e-3

    def __init__(self, min_gain: float = 0.5, max_gain: float = 1.5, seed: int = 0) -> None:
        if min_gain > max_gain:
            raise ValueError("min_gain must not exceed max_gain")
        self.min_gain = float(min_gain)
        self.max_gain = float(max_gain)
        self._rng = np.random.default_rng(seed)

    def __call__(self, item):
        gain = float(self._rng.uniform(self.min_gain, self.max_gain))
        item = dict(item)
        item["waveform"] = item["waveform"] * gain
        return item


class TokenizeCaption(Transform):
    """Pad / truncate caption tokens to a fixed length."""

    nominal_cpu_seconds = 0.05e-3

    def __init__(self, length: int = 77) -> None:
        self.length = int(length)

    def __call__(self, item):
        item = dict(item)
        tokens = np.asarray(item["caption"], dtype=np.int64)
        if tokens.shape[0] >= self.length:
            tokens = tokens[: self.length]
        else:
            tokens = np.pad(tokens, (0, self.length - tokens.shape[0]))
        item["caption"] = tokens
        return item


class PadSequence(Transform):
    """Pad token sequences to ``max_length`` and build an attention mask."""

    nominal_cpu_seconds = 0.05e-3

    def __init__(self, max_length: int = 512, pad_token: int = 0) -> None:
        self.max_length = int(max_length)
        self.pad_token = int(pad_token)

    def __call__(self, item):
        item = dict(item)
        tokens = np.asarray(item["tokens"], dtype=np.int64)[: self.max_length]
        padded = np.full(self.max_length, self.pad_token, dtype=np.int64)
        padded[: tokens.shape[0]] = tokens
        mask = np.zeros(self.max_length, dtype=np.int64)
        mask[: tokens.shape[0]] = 1
        item["tokens"] = padded
        item["attention_mask"] = mask
        return item


class ToTensor(Transform):
    """Convert the item's arrays into :class:`~repro.tensor.tensor.Tensor` objects.

    Images are converted from HWC to CHW layout (the PyTorch convention).
    """

    nominal_cpu_seconds = 0.2e-3

    def __init__(self, keys: Optional[Sequence[str]] = None) -> None:
        self.keys = tuple(keys) if keys is not None else None

    def __call__(self, item):
        item = dict(item)
        keys = self.keys if self.keys is not None else [
            k for k, v in item.items() if isinstance(v, np.ndarray)
        ]
        for key in keys:
            value = item[key]
            if key == "image" and value.ndim == 3:
                value = np.ascontiguousarray(np.transpose(value, (2, 0, 1)))
            item[key] = from_numpy(np.ascontiguousarray(value))
        return item


class Lambda(Transform):
    """Wrap an arbitrary callable, with an explicit cost annotation."""

    def __init__(self, fn: Callable, nominal_cpu_seconds: float = 0.0) -> None:
        self._fn = fn
        self.nominal_cpu_seconds = float(nominal_cpu_seconds)

    def __call__(self, item):
        return self._fn(item)


def imagenet_train_pipeline(image_size: int = 224, seed: int = 0) -> Compose:
    """The standard ImageNet training pipeline used across the experiments."""
    return Compose(
        [
            DecodeJpeg(height=image_size + 32, width=image_size + 32),
            Resize(size=image_size + 32),
            RandomCrop(size=image_size, seed=seed),
            RandomHorizontalFlip(seed=seed),
            Normalize(),
            ToTensor(),
        ]
    )


def clmr_train_pipeline(clip_samples: int = 59_049, seed: int = 0) -> Compose:
    """CLMR audio pipeline: decode, crop, gain augmentation."""
    return Compose(
        [
            DecodeAudio(clip_samples=clip_samples * 2),
            AudioRandomCrop(crop_samples=clip_samples, seed=seed),
            AudioGain(seed=seed),
            ToTensor(),
        ]
    )


def dalle_train_pipeline(image_size: int = 224, seed: int = 0) -> Compose:
    """DALL-E 2 prior pipeline: decode image + pad caption tokens."""
    return Compose(
        [
            Lambda(_caption_decode, nominal_cpu_seconds=2.0e-3),
            TokenizeCaption(),
            Normalize(key="image"),
            ToTensor(),
        ]
    )


def _caption_decode(item):
    """Decode the synthetic caption record's image payload."""
    rng = np.random.default_rng(item["index"])
    image = rng.integers(0, 256, size=(224, 224, 3), dtype=np.uint8)
    out = dict(item)
    out["image"] = image
    return out


def alpaca_pipeline(max_length: int = 512) -> Compose:
    """Alpaca fine-tuning pipeline: pad token sequences."""
    return Compose([PadSequence(max_length=max_length), ToTensor()])
