"""Data-loading substrate: datasets, samplers, transforms and the DataLoader.

TensorSocket wraps an existing PyTorch ``DataLoader`` rather than replacing it
(paper Section 3.2).  Since PyTorch is unavailable here, this subpackage
provides the loader being wrapped:

* :class:`~repro.data.dataset.Dataset` / :class:`~repro.data.dataset.IterableDataset`
  — map-style and iterable dataset protocols.
* :mod:`~repro.data.synthetic` — synthetic stand-ins for the paper's datasets
  (ImageNet-1K, LibriSpeech, Conceptual Captions, Alpaca) with realistic item
  sizes and decode costs.
* :mod:`~repro.data.samplers` — sequential, random and batch samplers.
* :mod:`~repro.data.transforms` — decode / resize / crop / flip / normalize /
  audio and text transforms, each annotated with a calibrated CPU cost so the
  hardware simulator can charge preprocessing time.
* :class:`~repro.data.dataloader.DataLoader` — multi-worker loading with
  prefetching and collation, the object a ``TensorProducer`` is constructed
  around.
"""

from repro.data.dataset import Dataset, IterableDataset, Subset, ConcatDataset
from repro.data.samplers import (
    BatchSampler,
    RandomSampler,
    Sampler,
    SequentialSampler,
    ShardSampler,
    SubsetSampler,
)
from repro.data.collate import default_collate
from repro.data.dataloader import DataLoader, LoaderIterator
from repro.data.synthetic import (
    SyntheticAudioDataset,
    SyntheticCaptionDataset,
    SyntheticImageDataset,
    SyntheticInstructionDataset,
    make_dataset,
)
from repro.data.transforms import (
    Compose,
    DecodeJpeg,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Resize,
    SleepTransform,
    ToTensor,
    Transform,
)

__all__ = [
    "Dataset",
    "IterableDataset",
    "Subset",
    "ConcatDataset",
    "Sampler",
    "SequentialSampler",
    "RandomSampler",
    "BatchSampler",
    "ShardSampler",
    "SubsetSampler",
    "default_collate",
    "DataLoader",
    "LoaderIterator",
    "SyntheticImageDataset",
    "SyntheticAudioDataset",
    "SyntheticCaptionDataset",
    "SyntheticInstructionDataset",
    "make_dataset",
    "Transform",
    "Compose",
    "DecodeJpeg",
    "Resize",
    "RandomCrop",
    "RandomHorizontalFlip",
    "SleepTransform",
    "Normalize",
    "ToTensor",
]
