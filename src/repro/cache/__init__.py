"""Budgeted epoch caching: serve repeat epochs straight from shared memory.

TensorSocket's producer pays the load+decode+transform cost once per batch;
this subsystem pays it once *ever*.  Batches staged for epoch 0 are retained
in their shared-memory segments under a configurable byte budget
(:class:`BatchCache`), and later epochs republish them — a fresh refcount on
the same segments, no loader, no stage worker, no copy
(:class:`CachedEpochSource`).  The policy knob mirrors CoorDL's partial-cache
regimes (:class:`CachePolicy`): cache nothing, everything, or a budgeted
LRU/MRU subset of the epoch's batch indices.

Enable it through configuration — no training-loop changes::

    session = repro.serve(loader, address="inproc://cifar", epochs=3,
                          cache="all")           # or cache="lru", cache_bytes=...
    ...
    session.stats()["producer"]["cache"]          # hits / misses / evictions

Cache holds are accounted separately from in-flight holds
(``pool.cached_bytes`` vs ``pool.bytes_in_flight``), so flow control and the
leak assertions keep their meaning while whole epochs stay pinned; shutdown
and eviction release the holds and the pool unlinks segments eagerly.
"""

from repro.cache.batch_cache import BatchCache, CachePolicy, CacheStats
from repro.cache.source import CachedEpochSource

__all__ = ["BatchCache", "CachePolicy", "CacheStats", "CachedEpochSource"]
