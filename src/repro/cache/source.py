"""The cache-aware epoch source the producer's epoch runners consume.

One :class:`CachedEpochSource` covers one epoch.  It splits the epoch's batch
indices into *hits* (servable straight from the :class:`~repro.cache.BatchCache`
— no loader, no stage worker, no copy) and *misses* (loaded and staged through
the producer's existing :class:`~repro.core.pipeline.StagePipeline`, then
inserted into the cache post-stage).  The producer interleaves the two streams
in batch-index order, so consumers observe one ordinary epoch regardless of
how much of it came from memory.

Partial caching needs *selective* loading: when batch 3 is cached but batch 4
is not, only batch 4's items may be loaded.  Two properties make that sound:

* **Composition pinning.**  Misses are loaded from the sampler composition
  of the epoch that *filled* the cache (recorded by
  :meth:`~repro.cache.BatchCache.remember_composition`), never from a fresh
  draw — under a reshuffling sampler, mixing cached epoch-0 batches with a
  new permutation's batches would duplicate some samples and drop others
  within the same epoch.  A cached-era epoch therefore serves exactly the
  filling epoch's composition, hits and reloaded misses alike (the
  documented replay semantics).
* **Prefetched miss loading.**  The planned miss batches are fed through the
  loader's own worker machinery (``DataLoader.prefetch_iter(batches=...)``)
  bounded by the producer's pipeline depth, so a low-hit-rate budgeted cache
  loads its misses just as parallel as epoch 0 did — not one blocking
  ``_load_batch`` at a time on the stage worker.

When *nothing* is cached (epoch 0, or ``plan_epoch`` came up empty) the
producer keeps its normal full-loader path, including multi-worker prefetch.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple

from repro.cache.batch_cache import BatchCache
from repro.tensor.payload import BatchPayload

__all__ = ["CachedEpochSource"]


class CachedEpochSource:
    """Plan one epoch against the cache; load only what the cache cannot serve."""

    def __init__(self, cache: BatchCache, loader, *, epoch: int) -> None:
        self.cache = cache
        self.loader = loader
        self.epoch = epoch
        try:
            self.total: Optional[int] = len(loader)
        except TypeError:
            self.total = None
        self.plan = cache.plan_epoch(self.total)
        # Planned hits are protected from eviction until served — without
        # this, a budgeted LRU evicts them to make room for this epoch's own
        # miss inserts and every hit degrades to a fallback load.
        cache.begin_epoch(self.plan)
        self._sampled_batches: Optional[List] = None
        #: Hits that vanished between planning and use anyway (e.g. a
        #: geometry flush), served by a synchronous fallback load instead.
        self.fallback_loads = 0

    # ------------------------------------------------------------------ planning
    @property
    def all_miss(self) -> bool:
        """Nothing cached: the producer should use its normal loader path."""
        return not self.plan

    @property
    def full_replay(self) -> bool:
        """Every batch of the epoch is cached; the loader is never opened."""
        return self.total is not None and len(self.plan) == self.total

    def miss_indices(self) -> List[int]:
        assert self.total is not None
        return [i for i in range(self.total) if i not in self.plan]

    # ------------------------------------------------------------------ loading
    def _batch_indices(self, index: int):
        if self._sampled_batches is None:
            # The composition of the epoch that filled the cache; falling
            # back to a fresh sampler draw only when none was recorded (a
            # non-reshuffling sampler produces the same list anyway).
            self._sampled_batches = (
                self.cache.epoch_composition or list(self.loader.batch_sampler)
            )
        return self._sampled_batches[index]

    def load_batch(self, index: int):
        """Load one specific batch by epoch position (hit-eviction fallback)."""
        return self.loader._load_batch(self._batch_indices(index))

    def open_misses(
        self,
        *,
        max_in_flight: Optional[int] = None,
        num_workers: Optional[int] = None,
    ) -> Tuple[Iterable[Tuple[int, object]], Optional[Callable[[], None]]]:
        """``(index, batch)`` for every planned miss, plus a close callable.

        The miss batches go through ``DataLoader.prefetch_iter`` with an
        explicit batch list, so the loader's worker threads prefetch them
        under the producer pipeline's in-flight bound exactly like an
        uncached epoch; the returned close tears the workers down when the
        epoch ends early.  Loaders without ``prefetch_iter`` fall back to
        synchronous per-batch loading.
        """
        misses = self.miss_indices()
        batch_lists = [self._batch_indices(i) for i in misses]
        if hasattr(self.loader, "prefetch_iter"):
            iterator = self.loader.prefetch_iter(
                max_in_flight=max_in_flight, num_workers=num_workers, batches=batch_lists
            )
            return zip(misses, iterator), getattr(iterator, "close", None)

        def sequential() -> Iterable[Tuple[int, object]]:
            for index, batch_list in zip(misses, batch_lists):
                yield index, self.loader._load_batch(batch_list)

        return sequential(), None

    # ------------------------------------------------------------------ serving
    def hit(self, index: int) -> Optional[BatchPayload]:
        """Republish a cached batch for this epoch (fresh hold, re-keyed).

        Returns ``None`` when the entry was evicted after planning; the
        caller falls back to :meth:`load_batch`.
        """
        payload = self.cache.republish(
            index,
            epoch=self.epoch,
            is_last_in_epoch=self.total is not None and index == self.total - 1,
        )
        if payload is None:
            self.fallback_loads += 1
        return payload

    def record(self, index: int, payload: BatchPayload) -> bool:
        """Offer a freshly published miss to the cache (post-stage insert).

        Also counts the miss: every published batch the cache did not serve
        paid the load+stage cost, whether it was a planned miss or an
        evicted-hit fallback.

        An *unsized* loader can never replay (``plan_epoch(None)`` is always
        empty — without an epoch length the replay loop has no stop point),
        so inserting would pin shared memory forever for zero possible hits;
        the miss is counted but nothing is retained.
        """
        self.cache.record_miss()
        if self.total is None:
            return False
        return self.cache.put(
            index,
            payload,
            segment_names=payload.segment_names,
            nbytes=payload.tensor_nbytes,
        )

    def finish(self, published: int, *, complete: bool) -> None:
        """Epoch bookkeeping: lift hit protection; a fully-published epoch
        may become replayable."""
        self.cache.end_epoch()
        if complete and published > 0:
            self.cache.mark_epoch_complete(published)

    def __repr__(self) -> str:
        return (
            f"CachedEpochSource(epoch={self.epoch}, total={self.total}, "
            f"hits_planned={len(self.plan)}, fallbacks={self.fallback_loads})"
        )
