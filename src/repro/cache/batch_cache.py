"""A budgeted cache of staged shared-memory batches, keyed by batch index.

TensorSocket makes collocated trainers pay the load+decode+transform cost
*once per batch* instead of once per trainer.  This module pays it once
*ever*: after epoch 0, repeat epochs are republished straight from the
shared-memory segments the producer already staged — the same segments, a
fresh refcount, no copy.  The design mirrors CoorDL's partial-cache regime
(Mohan et al.): a byte budget bounds how much of the epoch stays resident,
and a policy decides which batch indices keep their slot.

The cache owns one *cache hold* per segment of every retained batch
(:meth:`~repro.tensor.shared_memory.SharedMemoryPool.retain_cached`), which
the pool accounts under ``cached_bytes`` — disjoint from ``bytes_in_flight``,
so flow-control and leak assertions keep their meaning while whole epochs
stay pinned.  Evicting an entry releases those holds; the pool unlinks the
segments eagerly as soon as no consumer still reads them.

Batches are cached by their epoch-0 *batch index*: a replayed epoch serves
the same batch composition the epoch that filled the cache produced.  That is
exactly CoorDL's reuse semantics (content is reused; cross-epoch shuffling is
traded for loading cost), and a deterministic sampler makes replay
bit-identical to a reload.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.obs.metrics import counter
from repro.tensor.payload import BatchPayload
from repro.tensor.shared_memory import SharedMemoryPool

__all__ = ["CachePolicy", "CacheStats", "BatchCache"]

_HITS = counter("repro.cache.hits")
_MISSES = counter("repro.cache.misses")
_INSERTS = counter("repro.cache.inserts")
_EVICTIONS = counter("repro.cache.evictions")
_REJECTED = counter("repro.cache.rejected_inserts")


class CachePolicy(str, enum.Enum):
    """What the producer keeps of each epoch it has already staged.

    * ``NONE`` — no caching; every epoch reloads (the pre-cache behaviour).
    * ``ALL`` — retain every batch, unbounded (collocated trainers with a
      dataset that fits in memory: epoch 1+ never touches the loader).
    * ``LRU`` — retain up to ``budget_bytes``, evicting the least recently
      used batch index on overflow.  Entries the current epoch has planned
      as hits but not yet served are protected from eviction (see
      :meth:`BatchCache.begin_epoch`): without that guard, cyclic epoch
      access is LRU's worst case — this epoch's miss inserts would evict
      exactly the planned hits moments before they are served, and the
      cache would thrash to zero hits forever.
    * ``MRU`` — retain up to ``budget_bytes``, refusing inserts once full
      (equivalently: the incoming, most-recently-used entry is the eviction
      victim).  This is CoorDL's thrash-free regime: the cached prefix of the
      epoch is served from memory forever and the tail always reloads.
    """

    NONE = "none"
    ALL = "all"
    LRU = "lru"
    MRU = "mru"

    @classmethod
    def parse(cls, value) -> "CachePolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            options = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown cache policy {value!r}; choose one of: {options}"
            ) from None


@dataclass
class CacheStats:
    """Counters the cache exposes through ``producer.stats()``."""

    policy: str = CachePolicy.NONE.value
    budget_bytes: Optional[int] = None
    entries: int = 0
    cached_bytes: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    rejected_inserts: int = 0

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclass
class _CacheEntry:
    """One retained batch: the staged value plus what the holds cover."""

    value: object  # BatchPayload (default mode) or Dict[str, Tensor] (flexible)
    segment_names: Tuple[str, ...]
    nbytes: int
    rows: Optional[int] = None  # producer-batch rows, flexible mode only


class BatchCache:
    """Retains staged batches under a byte budget and republishes them.

    Thread-safety: all bookkeeping runs under one lock.  The producer's
    publish loop is the only writer in practice, but stats readers (session
    monitoring, tests) may poll concurrently.
    """

    def __init__(
        self,
        pool: SharedMemoryPool,
        *,
        policy: CachePolicy | str = CachePolicy.ALL,
        budget_bytes: Optional[int] = None,
    ) -> None:
        policy = CachePolicy.parse(policy)
        if policy in (CachePolicy.LRU, CachePolicy.MRU) and budget_bytes is None:
            raise ValueError(f"cache policy {policy.value!r} requires a byte budget")
        if policy in (CachePolicy.NONE, CachePolicy.ALL) and budget_bytes is not None:
            raise ValueError(
                f"cache policy {policy.value!r} takes no byte budget; "
                f"use 'lru' or 'mru' for a budgeted cache"
            )
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("cache budget_bytes must be positive when given")
        self.pool = pool
        self.policy = policy
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        # Insertion/recency order: last entry = most recently used.
        self._entries: "OrderedDict[int, _CacheEntry]" = OrderedDict()  #: guarded by _lock
        self._bytes = 0  #: guarded by _lock
        # Number of producer batches in the last fully-inserted epoch, for
        # flexible-mode replay (where the epoch length is only known after
        # the FlexibleBatcher has re-chunked the loader's output).
        self._complete_epoch_len: Optional[int] = None  #: guarded by _lock
        # Indices the current epoch planned as hits but has not served yet.
        # Protected from eviction: evicting them would turn every planned
        # hit into a fallback load (the LRU cyclic-access thrash).
        self._protected: set = set()  #: guarded by _lock
        # The sampler composition (per-batch index lists) of the epoch that
        # filled the cache.  Partially cached epochs MUST reload their misses
        # from this same composition: mixing cached epoch-0 batches with a
        # fresh shuffle's batches would duplicate some samples and drop
        # others within one epoch.
        self._epoch_composition: Optional[list] = None  #: guarded by _lock
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejected_inserts = 0

    # ------------------------------------------------------------------ queries
    @property
    def enabled(self) -> bool:
        return self.policy is not CachePolicy.NONE

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def cached_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def plan_epoch(self, total: Optional[int]) -> FrozenSet[int]:
        """Indices servable from cache for an epoch of ``total`` batches.

        Planning is a snapshot: an entry may still be evicted before the
        epoch reaches it (budget pressure from interleaved miss inserts), in
        which case :meth:`republish` returns ``None`` and the caller falls
        back to loading.  ``total=None`` (unsized loader) plans no hits —
        without an epoch length the replay loop cannot know where to stop.
        """
        if total is None or not self.enabled:
            return frozenset()
        with self._lock:
            return frozenset(i for i in self._entries if i < total)

    def remember_composition(self, batches) -> None:
        """Record the filling epoch's sampler draw (per-batch index lists).

        Pinned while entries from that draw remain, so every later epoch —
        hits *and* reloaded misses — serves exactly this composition.  An
        *empty* cache re-pins (the previous draw's entries are all gone, so
        the new filling epoch defines the composition from scratch).
        """
        with self._lock:
            if self._epoch_composition is None or not self._entries:
                self._epoch_composition = [list(batch) for batch in batches]

    @property
    def epoch_composition(self) -> Optional[list]:
        with self._lock:
            if self._epoch_composition is None:
                return None
            return [list(batch) for batch in self._epoch_composition]

    def begin_epoch(self, plan) -> None:
        """Protect this epoch's planned hits from eviction until served.

        Miss inserts interleave with hit serving; without protection, a
        budgeted LRU would evict the oldest entries — exactly the planned
        hits the epoch has not reached yet — and every 'hit' would become a
        synchronous fallback load.  Serving a hit lifts its protection;
        :meth:`end_epoch` (or :meth:`clear`) lifts the rest.
        """
        with self._lock:
            self._protected = set(plan)

    def end_epoch(self) -> None:
        with self._lock:
            self._protected.clear()

    def replayable_epoch_length(self, *, rows: Optional[int] = None) -> Optional[int]:
        """Length of a fully-cached epoch that can replay end-to-end, else ``None``.

        Used by flexible batching, which cannot load *selected* producer
        batches (they are re-chunked from a sequential stream), so replay is
        all-or-nothing.  ``rows`` guards geometry: if the current
        ``FlexibleBatcher`` produces differently-sized producer batches than
        the cached ones, the cached epoch is unusable and is flushed.
        """
        with self._lock:
            n = self._complete_epoch_len
            if n is None:
                return None
            if any(i not in self._entries for i in range(n)):
                return None
            if rows is not None:
                if any(self._entries[i].rows not in (None, rows) for i in range(n)):
                    return None
            return n

    def mark_epoch_complete(self, length: int) -> None:
        """Record that batches ``0..length-1`` of one epoch were all offered.

        Only marks the epoch replayable when every index actually stayed
        resident (budgeted policies may have refused or evicted some).
        """
        with self._lock:
            if length > 0 and all(i in self._entries for i in range(length)):
                self._complete_epoch_len = length
            else:
                self._complete_epoch_len = None

    # ------------------------------------------------------------------ hits
    def republish(
        self, index: int, *, epoch: int, is_last_in_epoch: bool = False
    ) -> Optional[BatchPayload]:
        """Serve batch ``index`` from cache for a new epoch (default mode).

        On a hit, a fresh producer hold is taken on every backing segment
        (plain ``retain`` — the republished batch is in flight again, exactly
        like a freshly staged one) and the payload is re-keyed to the current
        epoch so acknowledgement keys ``(epoch, batch_index)`` stay unique.
        No bytes are copied.  Returns ``None`` on a miss — not counted here:
        the caller loads the batch and counts it when it records the load
        (:meth:`record_miss`), so fallbacks are never double-counted.
        """
        with self._lock:
            entry = self._entries.get(index)
            if entry is None or not isinstance(entry.value, BatchPayload):
                self._protected.discard(index)
                return None
            self._entries.move_to_end(index)
            self._protected.discard(index)  # served: evictable again
            self.hits += 1
            for name in entry.segment_names:
                self.pool.retain(name)
            payload: BatchPayload = entry.value
        _HITS.inc()
        return dataclasses.replace(payload, epoch=epoch, is_last_in_epoch=is_last_in_epoch)

    def republish_staged(self, index: int):
        """Serve a staged flexible-mode producer batch from cache.

        Returns the staged ``{name: Tensor}`` mapping with a fresh producer
        hold per segment, or ``None`` on a miss.
        """
        with self._lock:
            entry = self._entries.get(index)
            if entry is None or isinstance(entry.value, BatchPayload):
                self._protected.discard(index)
                return None
            self._entries.move_to_end(index)
            self._protected.discard(index)  # served: evictable again
            self.hits += 1
            _HITS.inc()
            for name in entry.segment_names:
                self.pool.retain(name)
            return entry.value

    def record_miss(self, count: int = 1) -> None:
        """Count misses decided outside the cache (planned loads)."""
        _MISSES.inc(count)
        with self._lock:
            self.misses += count

    # ------------------------------------------------------------------ inserts
    def put(
        self,
        index: int,
        value,
        *,
        segment_names: Tuple[str, ...],
        nbytes: int,
        rows: Optional[int] = None,
    ) -> bool:
        """Retain a just-published batch under the policy; True if inserted.

        Must be called while the caller still guarantees the segments are
        live (the producer inserts between publishing and dropping its own
        staging hold).  The cache takes one *cache hold* per segment; budget
        overflow evicts per policy — LRU evicts the least recently used other
        entries, MRU rejects the incoming one (CoorDL's no-thrash regime).
        """
        if not self.enabled:
            return False
        with self._lock:
            if index in self._entries:
                # Republished or re-offered batch: recency only.
                self._entries.move_to_end(index)
                return False
            if self.budget_bytes is not None and nbytes > self.budget_bytes:
                self.rejected_inserts += 1
                _REJECTED.inc()
                return False
            if self.budget_bytes is not None:
                if self.policy is CachePolicy.MRU:
                    if self._bytes + nbytes > self.budget_bytes:
                        self.rejected_inserts += 1
                        _REJECTED.inc()
                        return False
                else:  # LRU: make room, but never at a planned hit's expense
                    while self._bytes + nbytes > self.budget_bytes:
                        if not self._evict_one_locked():
                            # Only this epoch's not-yet-served hits are left;
                            # refuse the insert instead of eating them.
                            self.rejected_inserts += 1
                            _REJECTED.inc()
                            return False
            # Cache holds pin each segment's *generation* along with its
            # bytes: the slab allocator can only recycle (bump the
            # generation, invalidate packed handles) once every hold — cache
            # holds included — is gone, so the cached payload's
            # (name, generation) handles stay valid for as long as the entry
            # lives, however many epochs that is.
            for name in segment_names:
                self.pool.retain_cached(name)
            self._entries[index] = _CacheEntry(
                value=value, segment_names=segment_names, nbytes=nbytes, rows=rows
            )
            self._bytes += nbytes
            self.insertions += 1
            _INSERTS.inc()
            return True

    def _evict_one_locked(self) -> bool:
        """Evict the least recently used *unprotected* entry; False if none."""
        for index in self._entries:  # OrderedDict: oldest recency first
            if index not in self._protected:
                break
        else:
            return False
        entry = self._entries.pop(index)
        self._bytes -= entry.nbytes
        self.evictions += 1
        _EVICTIONS.inc()
        self._complete_epoch_len = None
        for name in entry.segment_names:
            self.pool.release_cached(name)
        return True

    # ------------------------------------------------------------------ teardown
    def clear(self) -> int:
        """Release every cache hold (shutdown / geometry change); returns count."""
        with self._lock:
            cleared = len(self._entries)
            for entry in self._entries.values():
                for name in entry.segment_names:
                    self.pool.release_cached(name)
            self._entries.clear()
            self._bytes = 0
            self._complete_epoch_len = None
            self._protected.clear()
            self._epoch_composition = None
        return cleared

    # ------------------------------------------------------------------ stats
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                policy=self.policy.value,
                budget_bytes=self.budget_bytes,
                entries=len(self._entries),
                cached_bytes=self._bytes,
                hits=self.hits,
                misses=self.misses,
                insertions=self.insertions,
                evictions=self.evictions,
                rejected_inserts=self.rejected_inserts,
            )

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"BatchCache(policy={stats.policy!r}, entries={stats.entries}, "
            f"bytes={stats.cached_bytes}, hits={stats.hits}, misses={stats.misses}, "
            f"evictions={stats.evictions})"
        )
