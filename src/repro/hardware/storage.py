"""Storage device with a page cache.

Reading training data from disk is the other host-side bottleneck the paper
discusses (Section 2): when the dataset exceeds memory, every epoch re-reads
from disk and the OS page cache thrashes.  The model here is intentionally
simple but captures what the experiments need:

* a finite read bandwidth shared FIFO,
* a page cache holding ``cache_bytes`` of the hottest data — a read hits the
  cache with probability ``min(1, cache_bytes / working_set_bytes)`` and then
  costs no disk traffic,
* a byte counter for the ``iostat``-style disk I/O column of Table 3.

With N independent (non-shared) loaders the working set is read N times per
epoch, multiplying disk traffic; TensorSocket's single producer reads it once.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.hardware.metrics import GB, TrafficMeter
from repro.simulation.engine import Simulator
from repro.simulation.resources import Resource


class StorageDevice:
    """A disk (NVMe by default) with bandwidth, latency and a page cache."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "nvme",
        *,
        read_bandwidth_bytes_per_s: float = 3.0e9,
        latency_s: float = 80e-6,
        cache_bytes: float = 64 * GB,
        working_set_bytes: float = 150 * GB,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if read_bandwidth_bytes_per_s <= 0:
            raise ValueError("read bandwidth must be positive")
        if cache_bytes < 0 or working_set_bytes <= 0:
            raise ValueError("cache and working-set sizes must be non-negative / positive")
        self.sim = sim
        self.name = name
        self.read_bandwidth = float(read_bandwidth_bytes_per_s)
        self.latency = float(latency_s)
        self.cache_bytes = float(cache_bytes)
        self.working_set_bytes = float(working_set_bytes)
        self._channel = Resource(sim, 1, name=f"{name}-channel")
        self.meter = TrafficMeter(f"{name}-read", clock or sim.clock)
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache model -------------------------------------------------------------------
    @property
    def cache_hit_ratio(self) -> float:
        if self.working_set_bytes <= 0:
            return 1.0
        return min(1.0, self.cache_bytes / self.working_set_bytes)

    def set_working_set(self, nbytes: float) -> None:
        """Update the hot working-set size (e.g. dataset size × loader count)."""
        if nbytes <= 0:
            raise ValueError("working set must be positive")
        self.working_set_bytes = float(nbytes)

    # -- reads --------------------------------------------------------------------------
    def read(self, nbytes: int, *, cacheable: bool = True):
        """A process body reading ``nbytes``; cache hits cost (almost) nothing."""
        if nbytes < 0:
            raise ValueError("cannot read a negative number of bytes")

        def _body():
            hit_fraction = self.cache_hit_ratio if cacheable else 0.0
            disk_bytes = int(nbytes * (1.0 - hit_fraction))
            if disk_bytes <= 0:
                self.cache_hits += 1
                return
            self.cache_misses += 1
            yield self._channel.request()
            try:
                self.meter.record(disk_bytes)
                duration = self.latency + disk_bytes / self.read_bandwidth
                yield self.sim.timeout(duration)
            finally:
                self._channel.release()

        return _body()

    def read_seconds(self, nbytes: int) -> float:
        """Expected time for a read given the current cache hit ratio."""
        disk_bytes = nbytes * (1.0 - self.cache_hit_ratio)
        if disk_bytes <= 0:
            return 0.0
        return self.latency + disk_bytes / self.read_bandwidth

    # -- reporting -----------------------------------------------------------------------
    @property
    def total_bytes_read(self) -> int:
        return self.meter.total_bytes

    def average_mb_per_second(self) -> float:
        return self.meter.average_mb_per_second()

    def __repr__(self) -> str:
        return (
            f"StorageDevice({self.name!r}, hit_ratio={self.cache_hit_ratio:.2f}, "
            f"read={self.total_bytes_read}B)"
        )
