"""A simulated machine assembled from a :class:`MachineSpec`.

A :class:`Machine` owns the live simulation objects for one server or cloud
instance: the CPU pool, one :class:`~repro.hardware.gpu.Gpu` per physical GPU,
a PCIe link per GPU, NVLink links between GPUs when the spec has them, and a
storage device.  Experiment drivers interact with machines rather than with
individual resources, and read the per-device meters at the end of a run to
build the paper's tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hardware.cpu import CpuPool
from repro.hardware.gpu import Gpu, GpuSharingMode
from repro.hardware.instances import MachineSpec
from repro.hardware.interconnect import Link, LinkKind
from repro.hardware.metrics import GB, MetricsRegistry
from repro.hardware.storage import StorageDevice
from repro.simulation.engine import Simulator


class Machine:
    """Live simulation state for one machine."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        *,
        sharing_mode: GpuSharingMode = GpuSharingMode.MPS,
        dataset_bytes: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.cpu = CpuPool(sim, spec.vcpus, name=f"{spec.name}-cpu")
        self.gpus: List[Gpu] = [
            Gpu(
                sim,
                name=f"{spec.name}-gpu{i}",
                vram_gb=spec.gpu.vram_gb,
                relative_compute=spec.gpu.relative_compute,
                sharing_mode=sharing_mode,
            )
            for i in range(spec.gpu_count)
        ]
        self.pcie_links: List[Link] = [
            Link(
                sim,
                name=f"{spec.name}-pcie{i}",
                kind=LinkKind.PCIE,
                bandwidth_bytes_per_s=spec.pcie_bandwidth,
            )
            for i in range(spec.gpu_count)
        ]
        self.nvlink_links: Dict[Tuple[int, int], Link] = {}
        if spec.has_nvlink and spec.gpu_count > 1:
            for src in range(spec.gpu_count):
                for dst in range(spec.gpu_count):
                    if src < dst:
                        self.nvlink_links[(src, dst)] = Link(
                            sim,
                            name=f"{spec.name}-nvlink{src}-{dst}",
                            kind=LinkKind.NVLINK,
                            bandwidth_bytes_per_s=spec.nvlink_bandwidth,
                        )
        working_set = dataset_bytes if dataset_bytes is not None else 150 * GB
        self.storage = StorageDevice(
            sim,
            name=f"{spec.name}-disk",
            read_bandwidth_bytes_per_s=spec.storage_bandwidth,
            cache_bytes=min(spec.memory_gb * 0.5, 64.0) * GB,
            working_set_bytes=working_set,
        )
        self.metrics = MetricsRegistry(sim.clock)

    # -- lookups ------------------------------------------------------------------------
    def gpu(self, index: int = 0) -> Gpu:
        return self.gpus[index]

    def pcie(self, gpu_index: int = 0) -> Link:
        return self.pcie_links[gpu_index]

    def nvlink(self, src: int, dst: int) -> Link:
        """The NVLink link between two GPUs (order-independent)."""
        if src == dst:
            raise ValueError("an NVLink link connects two distinct GPUs")
        key = (min(src, dst), max(src, dst))
        try:
            return self.nvlink_links[key]
        except KeyError as exc:
            raise ValueError(
                f"{self.spec.name} has no NVLink between GPU {src} and GPU {dst}"
            ) from exc

    @property
    def has_nvlink(self) -> bool:
        return bool(self.nvlink_links)

    def set_sharing_mode(self, mode: GpuSharingMode) -> None:
        for gpu in self.gpus:
            gpu.set_sharing_mode(mode)

    def set_dataset_working_set(self, nbytes: float) -> None:
        self.storage.set_working_set(nbytes)

    def reset_utilization(self) -> None:
        """Restart every device's utilization window (called after warm-up)."""
        self.cpu.reset_utilization()
        for gpu in self.gpus:
            gpu.reset_utilization()

    # -- reporting ----------------------------------------------------------------------
    def traffic_report(self) -> Dict[str, float]:
        """Average MB/s per channel over the whole run (Table 3 / Table 4 style)."""
        report: Dict[str, float] = {"disk_read_mb_s": self.storage.average_mb_per_second()}
        for index, link in enumerate(self.pcie_links):
            report[f"pcie{index}_mb_s"] = link.average_mb_per_second()
        for (src, dst), link in self.nvlink_links.items():
            report[f"nvlink{src}-{dst}_mb_s"] = link.average_mb_per_second()
        return report

    def utilization_report(self, since: float = 0.0) -> Dict[str, float]:
        report = {"cpu_percent": self.cpu.utilization_percent(since)}
        for index, gpu in enumerate(self.gpus):
            report[f"gpu{index}_percent"] = gpu.utilization_percent(since)
            report[f"gpu{index}_vram_gb"] = gpu.vram_in_use_gb
        return report

    def __repr__(self) -> str:
        return f"Machine({self.spec.name!r}, gpus={len(self.gpus)}, vcpus={self.spec.vcpus})"
