"""Measurement utilities: traffic meters, gauges and a metrics registry.

The paper reports CPU utilization (``top``), GPU SM activity (``dcgm``), GPU
memory (``nvidia-smi``), and average data movement on disk, PCIe and NVLink
(``iostat`` / ``dcgm``).  The simulator produces the same quantities through
these helpers; experiment drivers collect them into result rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

MB = 1024 * 1024
GB = 1024 * MB


class TrafficMeter:
    """Counts bytes moved over a channel and reports averages.

    ``clock`` is any zero-argument callable returning the current time; the
    simulated clock is injected so rates are computed over simulated seconds.
    """

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self._clock = clock
        self._start = clock()
        self.total_bytes = 0
        self.transfer_count = 0

    def record(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot record negative bytes")
        self.total_bytes += int(nbytes)
        self.transfer_count += 1

    def reset(self) -> None:
        self.total_bytes = 0
        self.transfer_count = 0
        self._start = self._clock()

    @property
    def elapsed(self) -> float:
        return max(self._clock() - self._start, 0.0)

    def average_bytes_per_second(self) -> float:
        elapsed = self.elapsed
        return self.total_bytes / elapsed if elapsed > 0 else 0.0

    def average_mb_per_second(self) -> float:
        return self.average_bytes_per_second() / MB

    def __repr__(self) -> str:
        return f"TrafficMeter({self.name!r}, total={self.total_bytes}B)"


class Gauge:
    """A time-weighted gauge (e.g. memory in use) with peak tracking."""

    def __init__(self, name: str, clock: Callable[[], float]) -> None:
        self.name = name
        self._clock = clock
        self._value = 0.0
        self.peak = 0.0
        self._last_time = clock()
        self._integral = 0.0

    def set(self, value: float) -> None:
        now = self._clock()
        self._integral += self._value * (now - self._last_time)
        self._last_time = now
        self._value = float(value)
        self.peak = max(self.peak, self._value)

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    @property
    def value(self) -> float:
        return self._value

    def time_average(self, since: float = 0.0) -> float:
        now = self._clock()
        elapsed = now - since
        if elapsed <= 0:
            return self._value
        integral = self._integral + self._value * (now - self._last_time)
        return integral / elapsed


@dataclass
class Counter:
    """A plain monotonic counter."""

    name: str
    value: float = 0.0

    def add(self, delta: float = 1.0) -> None:
        self.value += delta


class MetricsRegistry:
    """A named collection of meters, gauges and counters for one simulation run."""

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self.meters: Dict[str, TrafficMeter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.counters: Dict[str, Counter] = {}

    def meter(self, name: str) -> TrafficMeter:
        if name not in self.meters:
            self.meters[name] = TrafficMeter(name, self._clock)
        return self.meters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name, self._clock)
        return self.gauges[name]

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def snapshot(self) -> Dict[str, float]:
        """A flat dictionary of every metric's headline value."""
        out: Dict[str, float] = {}
        for name, meter in self.meters.items():
            out[f"{name}.total_bytes"] = float(meter.total_bytes)
            out[f"{name}.mb_per_s"] = meter.average_mb_per_second()
        for name, gauge in self.gauges.items():
            out[f"{name}.value"] = gauge.value
            out[f"{name}.peak"] = gauge.peak
        for name, counter in self.counters.items():
            out[name] = counter.value
        return out


@dataclass
class ThroughputSeries:
    """Samples of (time, samples/s) used for time-series figures (Figure 13)."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def as_rows(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0
