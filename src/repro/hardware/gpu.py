"""GPU model: SM compute shared across collocated processes, plus VRAM.

Two aspects of the GPU matter for the paper's results:

* **Compute sharing.**  Collocated training processes share the streaming
  multiprocessors.  Under NVIDIA MPS the sharing is fine-grained and efficient;
  under plain multi-streams the overlap is poorer.  A
  :class:`~repro.simulation.resources.ProcessorSharingResource` models both,
  with a per-mode efficiency curve (MPS keeps ~99% of aggregate throughput for
  moderate collocation degrees, multi-streams lose several percent, and both
  degrade slowly as the degree grows — the drop the paper observes at 7–8-way
  collocation in Figure 15).
* **Memory.**  Model weights, activations and staged batches occupy VRAM.
  TensorSocket's producer holds a small extra buffer of batches on its GPU
  (Tables 3 and 4), which the experiments read from this model's gauge.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.hardware.metrics import GB, Gauge
from repro.simulation.engine import Event, Simulator
from repro.simulation.resources import Container, ProcessorSharingResource


class GpuSharingMode(str, enum.Enum):
    """How collocated processes share the GPU's compute resources."""

    EXCLUSIVE = "exclusive"
    MPS = "mps"
    MULTI_STREAM = "multi_stream"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def _mps_efficiency(n: int) -> float:
    """Aggregate-throughput efficiency of MPS with ``n`` collocated processes.

    Calibrated against the paper's own prior work on GPU collocation [50] and
    the degradation visible in Figure 15: negligible loss up to ~6 processes,
    a few percent at 7, ~10% at 8 and beyond.
    """
    if n <= 1:
        return 1.0
    if n <= 4:
        return 1.0 - 0.005 * (n - 1)
    if n <= 6:
        return 0.985 - 0.01 * (n - 4)
    return max(0.60, 0.965 - 0.045 * (n - 6))


def _multi_stream_efficiency(n: int) -> float:
    """Multi-stream sharing: coarser, loses more to serialization."""
    if n <= 1:
        return 1.0
    return max(0.50, 0.92 - 0.03 * (n - 1))


def _exclusive_efficiency(n: int) -> float:
    """Exclusive mode: time-slicing whole contexts; heavy switch penalty."""
    if n <= 1:
        return 1.0
    return max(0.40, 0.85 - 0.05 * (n - 1))


_EFFICIENCY_BY_MODE = {
    GpuSharingMode.EXCLUSIVE: _exclusive_efficiency,
    GpuSharingMode.MPS: _mps_efficiency,
    GpuSharingMode.MULTI_STREAM: _multi_stream_efficiency,
}


class Gpu:
    """One GPU: a processor-sharing compute engine and a VRAM container."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        vram_gb: float,
        relative_compute: float = 1.0,
        sharing_mode: GpuSharingMode = GpuSharingMode.MPS,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if vram_gb <= 0:
            raise ValueError("vram_gb must be positive")
        if relative_compute <= 0:
            raise ValueError("relative_compute must be positive")
        self.sim = sim
        self.name = name
        self.vram_bytes = int(vram_gb * GB)
        self.relative_compute = float(relative_compute)
        self.sharing_mode = sharing_mode
        self._compute = ProcessorSharingResource(
            sim, name=f"{name}-sm", efficiency=_EFFICIENCY_BY_MODE[sharing_mode]
        )
        self._vram = Container(sim, capacity=self.vram_bytes, name=f"{name}-vram")
        self._vram_gauge = Gauge(f"{name}-vram", clock or sim.clock)
        # CUDA context + framework overhead per resident process, ~0.5 GB each,
        # plus ~1 GB the first time anything touches the GPU.
        self.context_overhead_bytes = int(0.4 * GB)
        self.base_overhead_bytes = int(0.8 * GB)
        self._processes_resident = 0

    # -- compute ------------------------------------------------------------------------
    def set_sharing_mode(self, mode: GpuSharingMode) -> None:
        self.sharing_mode = mode
        self._compute._efficiency = _EFFICIENCY_BY_MODE[mode]

    def compute(self, exclusive_seconds: float) -> Event:
        """Submit work that would take ``exclusive_seconds`` with the GPU to itself.

        The returned event triggers when the work completes under the current
        sharing regime.  ``exclusive_seconds`` should already account for this
        GPU's speed (see :meth:`scale_work`).
        """
        return self._compute.execute(exclusive_seconds)

    def scale_work(self, a100_seconds: float) -> float:
        """Convert work expressed in A100-seconds to this GPU's seconds."""
        return a100_seconds / self.relative_compute

    @property
    def active_processes(self) -> int:
        return self._compute.active_jobs

    def utilization(self, since: float = 0.0) -> float:
        """SM activity in [0, 1] (the dcgm-style reading)."""
        return self._compute.utilization(since)

    def utilization_percent(self, since: float = 0.0) -> float:
        return 100.0 * self.utilization(since)

    def reset_utilization(self) -> None:
        """Restart SM-activity measurement (excludes warm-up from reports)."""
        self._compute.reset_utilization()

    # -- memory --------------------------------------------------------------------------
    def register_process(self) -> None:
        """Account for a new resident process's CUDA context."""
        overhead = self.context_overhead_bytes
        if self._processes_resident == 0:
            overhead += self.base_overhead_bytes
        self._processes_resident += 1
        self.allocate(overhead)

    def unregister_process(self) -> None:
        if self._processes_resident <= 0:
            raise ValueError(f"no resident processes on {self.name}")
        self._processes_resident -= 1
        overhead = self.context_overhead_bytes
        if self._processes_resident == 0:
            overhead += self.base_overhead_bytes
        self.free(overhead)

    def allocate(self, nbytes: int) -> None:
        self._vram.put(float(nbytes))
        self._vram_gauge.set(self._vram.level)

    def free(self, nbytes: int) -> None:
        self._vram.get(float(nbytes))
        self._vram_gauge.set(self._vram.level)

    @property
    def vram_in_use(self) -> int:
        return int(self._vram.level)

    @property
    def vram_in_use_gb(self) -> float:
        return self._vram.level / GB

    @property
    def vram_peak_gb(self) -> float:
        return self._vram.peak_level / GB

    @property
    def vram_available(self) -> int:
        return int(self._vram.available)

    def __repr__(self) -> str:
        return (
            f"Gpu({self.name!r}, vram={self.vram_in_use_gb:.1f}/{self.vram_bytes / GB:.0f} GB, "
            f"mode={self.sharing_mode.value}, active={self.active_processes})"
        )
