"""Machine catalogue: the servers and cloud instances from the paper's Table 2.

Each :class:`MachineSpec` records vCPU count, GPUs, interconnects, storage and
(for cloud instances) the on-demand hourly price used for the cost-savings
analysis (Figures 11 and 13, Section 4.3 and 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hardware.interconnect import NVLINK_A100, PCIE_GEN4_X16, PCIE_GEN5_X16


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU model."""

    model: str
    vram_gb: float
    #: Training compute relative to an A100 SXM (A100 = 1.0).  Derived from
    #: published mixed-precision training throughput ratios.
    relative_compute: float


A100_40GB = GpuSpec(model="A100", vram_gb=40.0, relative_compute=1.0)
H100_80GB = GpuSpec(model="H100", vram_gb=80.0, relative_compute=2.2)
A10G_24GB = GpuSpec(model="A10G", vram_gb=24.0, relative_compute=0.6)


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a machine (on-prem server or cloud instance)."""

    name: str
    vcpus: int
    gpu: GpuSpec
    gpu_count: int
    cost_per_hour: Optional[float] = None
    has_nvlink: bool = False
    nvlink_bandwidth: int = NVLINK_A100
    pcie_bandwidth: int = PCIE_GEN4_X16
    storage_bandwidth: float = 3.0e9
    memory_gb: float = 256.0
    provider: str = "on-prem"
    notes: str = ""

    @property
    def vcpus_per_gpu(self) -> float:
        return self.vcpus / self.gpu_count

    @property
    def total_vram_gb(self) -> float:
        return self.gpu.vram_gb * self.gpu_count

    def hourly_cost(self) -> float:
        if self.cost_per_hour is None:
            raise ValueError(f"{self.name} has no cloud price (on-prem machine)")
        return self.cost_per_hour


# -- Table 2 -----------------------------------------------------------------

H100_SERVER = MachineSpec(
    name="H100 Server",
    vcpus=24,
    gpu=H100_80GB,
    gpu_count=1,
    has_nvlink=False,
    pcie_bandwidth=PCIE_GEN5_X16,
    storage_bandwidth=6.0e9,
    memory_gb=512.0,
    notes="On-prem server used for DALL-E 2 collocation and the Joader comparison.",
)

A100_SERVER = MachineSpec(
    name="A100 Server",
    vcpus=48,  # 128 physical, capped at 48 to mimic Azure's 12:1 vCPU:GPU ratio
    gpu=A100_40GB,
    gpu_count=4,
    has_nvlink=True,
    nvlink_bandwidth=NVLINK_A100,
    pcie_bandwidth=PCIE_GEN4_X16,
    storage_bandwidth=5.0e9,
    memory_gb=512.0,
    notes="4x A100 NVLink server; capped to 48 cores as in the paper's Table 2.",
)

AWS_G5_2XLARGE = MachineSpec(
    name="g5.2xlarge",
    vcpus=8,
    gpu=A10G_24GB,
    gpu_count=1,
    cost_per_hour=1.212,
    pcie_bandwidth=PCIE_GEN4_X16,
    storage_bandwidth=1.2e9,
    memory_gb=32.0,
    provider="aws",
)

AWS_G5_4XLARGE = MachineSpec(
    name="g5.4xlarge",
    vcpus=16,
    gpu=A10G_24GB,
    gpu_count=1,
    cost_per_hour=1.624,
    pcie_bandwidth=PCIE_GEN4_X16,
    storage_bandwidth=1.8e9,
    memory_gb=64.0,
    provider="aws",
)

AWS_G5_8XLARGE = MachineSpec(
    name="g5.8xlarge",
    vcpus=32,
    gpu=A10G_24GB,
    gpu_count=1,
    cost_per_hour=2.448,
    pcie_bandwidth=PCIE_GEN4_X16,
    storage_bandwidth=3.5e9,
    memory_gb=128.0,
    provider="aws",
)


def machine_catalog() -> Dict[str, MachineSpec]:
    """Every machine used in the evaluation, keyed by name."""
    machines = (
        H100_SERVER,
        A100_SERVER,
        AWS_G5_2XLARGE,
        AWS_G5_4XLARGE,
        AWS_G5_8XLARGE,
    )
    return {machine.name: machine for machine in machines}


def aws_g5_instances() -> Tuple[MachineSpec, ...]:
    """The three AWS G5 sizes, ordered by vCPU count (Figures 11 and 13)."""
    return (AWS_G5_2XLARGE, AWS_G5_4XLARGE, AWS_G5_8XLARGE)
