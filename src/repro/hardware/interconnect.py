"""Interconnect links: PCIe (CPU↔GPU) and NVLink (GPU↔GPU).

TensorSocket replaces per-process host-to-device copies over PCIe with a
single staging copy followed by GPU-to-GPU broadcasts over NVLink (Table 3 in
the paper).  A :class:`Link` models one such channel: a finite bandwidth
shared FIFO plus a byte counter, so experiments can report average MB/s per
link exactly as ``dcgm`` does.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.hardware.metrics import TrafficMeter
from repro.simulation.engine import Simulator
from repro.simulation.resources import Resource


class LinkKind(str, enum.Enum):
    PCIE = "pcie"
    NVLINK = "nvlink"
    NETWORK = "network"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Usable bandwidths (bytes/second) for the link generations in the paper's
#: machines.  These are effective rates (~80% of the headline figure).
PCIE_GEN4_X16 = int(25e9)
PCIE_GEN5_X16 = int(50e9)
NVLINK_A100 = int(480e9)
NVLINK_H100 = int(720e9)


class Link:
    """A point-to-point (or shared bus) transfer channel."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        kind: LinkKind,
        bandwidth_bytes_per_s: float,
        latency_s: float = 5e-6,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.name = name
        self.kind = kind
        self.bandwidth = float(bandwidth_bytes_per_s)
        self.latency = float(latency_s)
        self._channel = Resource(sim, 1, name=f"{name}-channel")
        self.meter = TrafficMeter(name, clock or sim.clock)

    def transfer_seconds(self, nbytes: int) -> float:
        """Time one transfer of ``nbytes`` takes with the link to itself."""
        return self.latency + nbytes / self.bandwidth

    def transfer(self, nbytes: int):
        """A process body performing one transfer (FIFO access to the link)."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")

        def _body():
            yield self._channel.request()
            try:
                self.meter.record(nbytes)
                duration = self.transfer_seconds(nbytes)
                if duration > 0:
                    yield self.sim.timeout(duration)
            finally:
                self._channel.release()

        return _body()

    def record_only(self, nbytes: int) -> None:
        """Account bytes without simulating the transfer time.

        Used for small control-plane messages whose latency is negligible but
        whose volume should still show up in the traffic report.
        """
        self.meter.record(nbytes)

    # -- reporting ----------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.meter.total_bytes

    def average_mb_per_second(self) -> float:
        return self.meter.average_mb_per_second()

    def utilization(self, since: float = 0.0) -> float:
        return self._channel.utilization(since)

    def __repr__(self) -> str:
        return f"Link({self.name!r}, kind={self.kind.value}, total={self.total_bytes}B)"
