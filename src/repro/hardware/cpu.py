"""CPU pool: vCPU cores shared by data-loading workers and training loops.

Data pre-processing is the CPU-side bottleneck the paper targets.  A
:class:`CpuPool` models ``cores`` identical vCPUs.  Work is submitted in
*core-seconds*; a worker claims one core for the duration of its item, so when
more workers are runnable than cores exist the excess queue — exactly the
oversubscription behaviour that throttles non-shared loading on small cloud
instances (Figures 11 and 13).

An optional ``contention_factor`` models the efficiency loss real pipelines
see when the host is saturated (page-cache thrashing, GIL hand-offs, memory
bandwidth pressure): while the pool is at or near full occupancy, submitted
work is inflated by the factor.
"""

from __future__ import annotations


from repro.simulation.engine import Simulator
from repro.simulation.resources import Resource


class CpuPool:
    """A pool of vCPU cores on one machine."""

    #: Scheduling quantum: a task releases its core after at most this many
    #: seconds of work so short tasks (training-loop host work, orchestration)
    #: are not stuck behind multi-second preprocessing tasks — approximating
    #: the preemptive fairness of a real OS scheduler.
    TIME_SLICE_S = 0.025

    def __init__(
        self,
        sim: Simulator,
        cores: int,
        name: str = "cpu",
        contention_factor: float = 1.08,
        contention_threshold: float = 0.95,
        time_slice_s: float = TIME_SLICE_S,
    ) -> None:
        if cores <= 0:
            raise ValueError("a CPU pool needs at least one core")
        if contention_factor < 1.0:
            raise ValueError("contention_factor must be >= 1.0")
        if time_slice_s <= 0:
            raise ValueError("time_slice_s must be positive")
        self.sim = sim
        self.cores = int(cores)
        self.name = name
        self.contention_factor = float(contention_factor)
        self.contention_threshold = float(contention_threshold)
        self.time_slice_s = float(time_slice_s)
        self._resource = Resource(sim, self.cores, name=f"{name}-cores")
        self.total_core_seconds_requested = 0.0

    # -- work submission ---------------------------------------------------------------
    def run(self, core_seconds: float):
        """A process body that occupies one core for ``core_seconds``.

        Usage inside a simulated process::

            yield sim.process(cpu.run(0.006))      # spawn and continue
            yield from cpu.run(0.006)              # inline, blocking
        """
        if core_seconds < 0:
            raise ValueError("core_seconds must be non-negative")
        self.total_core_seconds_requested += core_seconds

        def _body():
            remaining = core_seconds
            while remaining > 0:
                chunk = min(remaining, self.time_slice_s)
                remaining -= chunk
                yield self._resource.request()
                try:
                    duration = chunk
                    if self.occupancy_fraction >= self.contention_threshold:
                        duration = chunk * self.contention_factor
                    yield self.sim.timeout(duration)
                finally:
                    self._resource.release()

        return _body()

    def spawn(self, core_seconds: float, name: str = "cpu-work"):
        """Convenience: spawn the work as an independent process and return it."""
        return self.sim.process(self.run(core_seconds), name=name)

    # -- introspection -----------------------------------------------------------------
    @property
    def cores_in_use(self) -> int:
        return self._resource.in_use

    @property
    def occupancy_fraction(self) -> float:
        return self._resource.in_use / self.cores

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def utilization(self, since: float = 0.0) -> float:
        """Average fraction of cores busy since ``since`` (0..1)."""
        return self._resource.utilization(since)

    def utilization_percent(self, since: float = 0.0) -> float:
        """Utilization as the paper reports it: percent of all vCPUs."""
        return 100.0 * self.utilization(since)

    def reset_utilization(self) -> None:
        """Restart utilization measurement (excludes warm-up from reports)."""
        self._resource.reset_utilization()

    @property
    def busy_core_seconds(self) -> float:
        return self._resource.busy_core_seconds

    def __repr__(self) -> str:
        return f"CpuPool({self.name!r}, cores={self.cores}, in_use={self.cores_in_use})"
