"""Simulated hardware substrate: CPUs, GPUs, interconnects, storage, machines.

The paper's experiments run on an H100 server, a 4x A100 NVLink server and
AWS G5 (A10G) cloud instances.  This subpackage models those machines on top
of the discrete-event kernel in :mod:`repro.simulation` so the benchmark
harness can reproduce every figure and table without the hardware:

* :class:`~repro.hardware.cpu.CpuPool` — vCPU cores claimed by data-loading
  workers and training-loop host work, with utilization accounting (the
  paper's ``top``-style CPU %).
* :class:`~repro.hardware.gpu.Gpu` — SM compute shared between collocated
  processes via MPS or multi-streams, plus VRAM accounting (``dcgm`` SM
  activity and ``nvidia-smi`` memory).
* :class:`~repro.hardware.interconnect.Link` — PCIe and NVLink links with
  finite bandwidth and byte counters (``dcgm`` PCIe/NVLink traffic).
* :class:`~repro.hardware.storage.StorageDevice` — disk with a page cache
  (``iostat`` disk I/O).
* :class:`~repro.hardware.machine.Machine` — wires the above together from a
  :class:`~repro.hardware.instances.MachineSpec`.
* :mod:`~repro.hardware.instances` — the catalogue of machines used in the
  paper's Table 2, including cloud prices.
"""

from repro.hardware.cpu import CpuPool
from repro.hardware.gpu import Gpu, GpuSharingMode
from repro.hardware.interconnect import Link, LinkKind
from repro.hardware.storage import StorageDevice
from repro.hardware.instances import (
    AWS_G5_2XLARGE,
    AWS_G5_4XLARGE,
    AWS_G5_8XLARGE,
    A100_SERVER,
    H100_SERVER,
    GpuSpec,
    MachineSpec,
    machine_catalog,
)
from repro.hardware.machine import Machine
from repro.hardware.metrics import MetricsRegistry, TrafficMeter

__all__ = [
    "CpuPool",
    "Gpu",
    "GpuSharingMode",
    "Link",
    "LinkKind",
    "StorageDevice",
    "Machine",
    "MachineSpec",
    "GpuSpec",
    "machine_catalog",
    "H100_SERVER",
    "A100_SERVER",
    "AWS_G5_2XLARGE",
    "AWS_G5_4XLARGE",
    "AWS_G5_8XLARGE",
    "MetricsRegistry",
    "TrafficMeter",
]
