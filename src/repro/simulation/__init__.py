"""A small discrete-event simulation kernel (SimPy-style, dependency-free).

The paper's evaluation spans hardware this environment does not have (4x A100
with NVLink, an H100 server, AWS A10G instances).  The benchmark harness
therefore runs the TensorSocket protocol and its baselines on a simulated
substrate; this subpackage is the kernel underneath that substrate.

* :class:`~repro.simulation.engine.Simulator` — the event loop and clock.
* :class:`~repro.simulation.engine.Process` — a generator-based coroutine;
  yielding a :class:`~repro.simulation.engine.Timeout`, another process, or a
  resource request suspends it until the corresponding event fires.
* :mod:`~repro.simulation.resources` — ``Resource`` (counted slots),
  ``Store`` (producer/consumer queue), ``Container`` (continuous quantity) and
  ``ProcessorSharingResource`` (capacity split evenly among active jobs —
  how MPS shares GPU SMs).
"""

from repro.simulation.engine import (
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simulation.resources import (
    Container,
    ProcessorSharingResource,
    Resource,
    Store,
)

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Store",
    "Container",
    "ProcessorSharingResource",
]
