"""The discrete-event simulation kernel: events, processes and the event loop.

The kernel follows the SimPy model closely (but is dependency-free):

* an :class:`Event` is something that will *trigger* at a simulated time and
  then run its callbacks;
* a :class:`Process` wraps a Python generator.  Each ``yield`` hands back an
  event (a :class:`Timeout`, a resource request, or another process) and the
  process resumes when that event triggers;
* the :class:`Simulator` owns the clock and the priority queue of scheduled
  events and advances time by popping events in (time, insertion order).

Determinism: two events scheduled for the same instant fire in the order they
were scheduled, so simulation results are reproducible run to run.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for kernel misuse (yielding non-events, running without work, ...)."""


class Interrupt(Exception):
    """Thrown into a process that another actor interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """Something that triggers at a simulated time and then runs callbacks."""

    __slots__ = ("sim", "callbacks", "_triggered", "_processed", "value", "ok")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._processed = False
        self.value: Any = None
        self.ok = True

    # -- state ----------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    # -- triggering -------------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to trigger (optionally after ``delay``)."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self.value = value
        self.ok = True
        self.sim._enqueue(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to trigger as a failure (raises in the waiter)."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self.value = exception
        self.ok = False
        self.sim._enqueue(self, delay)
        return self

    # -- internals ---------------------------------------------------------------
    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"{type(self).__name__}({state})"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self.value = value
        sim._enqueue(self, delay)


class Process(Event):
    """A generator-based coroutine.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, so other processes can ``yield`` it to
    join on completion.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process needs a generator, got {type(generator)!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        # Kick off the process at the current simulated instant.
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if not self.is_alive:
            return
        self._interrupts.append(Interrupt(cause))
        wake = Event(self.sim)
        wake.callbacks.append(self._resume)
        wake.succeed()

    # -- stepping ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        # Detach from whatever we were waiting on (relevant for interrupts).
        if self._waiting_on is not None and self._resume in self._waiting_on.callbacks:
            self._waiting_on.callbacks.remove(self._resume)
        self._waiting_on = None

        try:
            if self._interrupts:
                interrupt = self._interrupts.pop(0)
                target = self.generator.throw(interrupt)
            elif event is not None and not event.ok:
                target = self.generator.throw(event.value)
            else:
                target = self.generator.send(event.value if event is not None else None)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # The process chose not to handle the interrupt: terminate it.
            self._finish(None)
            return

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
        if target.processed:
            # The event already happened; resume immediately (this instant).
            wake = Event(self.sim)
            wake.callbacks.append(self._resume)
            if target.ok:
                wake.succeed(target.value)
            else:
                wake.fail(target.value)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def _finish(self, value: Any) -> None:
        if not self._triggered:
            self._triggered = True
            self.value = value
            self.ok = True
            self.sim._enqueue(self, 0.0)

    def __repr__(self) -> str:
        return f"Process({self.name!r}, alive={self.is_alive})"


class AllOf(Event):
    """An event that triggers once every child event has triggered."""

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        self._remaining = len(events)
        if self._remaining == 0:
            self.succeed([])
            return
        self.value = [None] * len(events)
        for position, event in enumerate(events):
            callback = self._make_callback(position)
            if event.processed:
                callback(event)
            else:
                event.callbacks.append(callback)

    def _make_callback(self, position: int):
        def _on_child(event: Event) -> None:
            self.value[position] = event.value
            self._remaining -= 1
            if self._remaining == 0 and not self._triggered:
                self._triggered = True
                self.sim._enqueue(self, 0.0)

        return _on_child


class AnyOf(Event):
    """An event that triggers as soon as any child event triggers."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        for event in events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if not self._triggered:
            self._triggered = True
            self.value = event.value
            self.sim._enqueue(self, 0.0)


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List = []
        self._sequence = itertools.count()
        self.events_processed = 0

    # -- clock ----------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def clock(self) -> float:
        """A zero-argument callable view of the clock (for injection)."""
        return self._now

    # -- event creation ----------------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), event))

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events to process")
        time, _, event = heapq.heappop(self._queue)
        self._now = time
        event._run_callbacks()
        self.events_processed += 1

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue empties, ``until`` is reached, or an event budget.

        Returns the simulated time at which the run stopped.
        """
        processed = 0
        while self._queue:
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self._now = until
                return self._now
            self.step()
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; possible livelock"
                )
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_until_process(self, process: Process, max_events: int = 50_000_000) -> Any:
        """Run until a given process completes; returns its return value."""
        processed = 0
        while not process.processed:
            if not self._queue:
                raise SimulationError(
                    f"event queue drained before process {process.name!r} completed"
                )
            self.step()
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; possible livelock"
                )
        return process.value

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.6f}, pending={len(self._queue)})"
