"""Shared resources for simulated processes.

Four resource types cover everything the hardware models need:

* :class:`Resource` — ``capacity`` identical slots with FIFO queueing.  Models
  CPU cores claimed by data-loading workers and I/O channels.
* :class:`Store` — an (optionally bounded) FIFO of items.  Models the batch
  queues between pipeline stages and the consumer-side batch buffer.
* :class:`Container` — a continuous quantity with bounded capacity.  Models
  GPU memory (VRAM) occupancy.
* :class:`ProcessorSharingResource` — jobs submit an amount of *work*; all
  active jobs progress simultaneously, each at ``capacity / n_active``.  This
  is how NVIDIA MPS shares streaming multiprocessors among collocated training
  processes, and how a saturated disk or link divides its bandwidth.

Every resource records a utilization integral so experiments can report
average utilization over a run (the paper's CPU % and GPU SM activity).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.simulation.engine import Event, SimulationError, Simulator


class _UtilizationIntegrator:
    """Integrates ``usage/capacity`` over simulated time.

    ``reset()`` restarts the measurement window at the current instant; the
    collocation runner uses it to exclude the warm-up period from reported
    utilization, the way the paper's measurements skip ramp-up.
    """

    def __init__(self, sim: Simulator, capacity: float) -> None:
        self._sim = sim
        self._capacity = float(capacity)
        self._measure_start = sim.now
        self._last_time = sim.now
        self._last_usage = 0.0
        self._busy_integral = 0.0

    def update(self, usage: float) -> None:
        now = self._sim.now
        self._busy_integral += self._last_usage * (now - self._last_time)
        self._last_time = now
        self._last_usage = float(usage)

    def reset(self) -> None:
        """Restart the measurement window (keeps the current usage level)."""
        self._measure_start = self._sim.now
        self._last_time = self._sim.now
        self._busy_integral = 0.0

    def utilization(self, since: float = 0.0) -> float:
        """Average busy fraction in [0, 1] over the current measurement window.

        ``since`` may narrow the window further but can never reach back
        before the last :meth:`reset`.
        """
        now = self._sim.now
        start = max(since, self._measure_start)
        elapsed = now - start
        if elapsed <= 0:
            return 0.0
        integral = self._busy_integral + self._last_usage * (now - self._last_time)
        return min(1.0, integral / (elapsed * self._capacity))

    @property
    def busy_core_seconds(self) -> float:
        return self._busy_integral + self._last_usage * (self._sim.now - self._last_time)


class Resource:
    """``capacity`` identical slots with FIFO queueing."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        self._usage = _UtilizationIntegrator(sim, capacity)

    # -- acquire / release -----------------------------------------------------------
    def request(self) -> Event:
        """An event that triggers when a slot is granted to the caller."""
        event = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            self._usage.update(self.in_use)
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; occupancy is unchanged.
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self.in_use -= 1
            self._usage.update(self.in_use)

    def use(self, duration: float):
        """A process body that holds one slot for ``duration`` seconds."""

        def _body():
            yield self.request()
            try:
                yield self.sim.timeout(duration)
            finally:
                self.release()

        return _body()

    # -- accounting ---------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def utilization(self, since: float = 0.0) -> float:
        return self._usage.utilization(since)

    def reset_utilization(self) -> None:
        self._usage.reset()

    @property
    def busy_core_seconds(self) -> float:
        return self._usage.busy_core_seconds

    def __repr__(self) -> str:
        return f"Resource({self.name!r}, {self.in_use}/{self.capacity}, queued={self.queue_length})"


class Store:
    """A FIFO of items with optional capacity, usable from processes via events."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store") -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError("store capacity must be positive when given")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        self.total_put = 0
        self.total_got = 0

    def put(self, item: Any) -> Event:
        """An event that triggers once the item has been accepted."""
        event = self.sim.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            self.total_put += 1
            self.total_got += 1
            event.succeed(None)
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            self.total_put += 1
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """An event that triggers with the next item."""
        event = self.sim.event()
        if self.items:
            item = self.items.popleft()
            self.total_got += 1
            event.succeed(item)
            self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def _admit_waiting_putter(self) -> None:
        if self._putters and (self.capacity is None or len(self.items) < self.capacity):
            put_event, item = self._putters.popleft()
            self.items.append(item)
            self.total_put += 1
            put_event.succeed(None)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def pending_getters(self) -> int:
        return len(self._getters)

    def __repr__(self) -> str:
        return f"Store({self.name!r}, items={len(self.items)}, capacity={self.capacity})"


class Container:
    """A continuous quantity (e.g. bytes of VRAM) with a hard capacity."""

    def __init__(self, sim: Simulator, capacity: float, initial: float = 0.0, name: str = "container") -> None:
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not (0 <= initial <= capacity):
            raise SimulationError("initial level must lie within [0, capacity]")
        self.sim = sim
        self.capacity = float(capacity)
        self.level = float(initial)
        self.name = name
        self.peak_level = self.level
        self._waiters: List[Tuple[float, Event]] = []

    def put(self, amount: float) -> None:
        """Add to the level immediately; raises if capacity would be exceeded."""
        if amount < 0:
            raise SimulationError("put amount must be non-negative")
        if self.level + amount > self.capacity + 1e-9:
            raise SimulationError(
                f"container {self.name!r} overflow: level {self.level} + {amount} > {self.capacity}"
            )
        self.level += amount
        self.peak_level = max(self.peak_level, self.level)

    def get(self, amount: float) -> None:
        """Remove from the level immediately; raises if it would go negative."""
        if amount < 0:
            raise SimulationError("get amount must be non-negative")
        if amount > self.level + 1e-9:
            raise SimulationError(
                f"container {self.name!r} underflow: requested {amount}, level {self.level}"
            )
        self.level -= amount

    @property
    def available(self) -> float:
        return self.capacity - self.level

    def __repr__(self) -> str:
        return f"Container({self.name!r}, level={self.level:.3g}/{self.capacity:.3g})"


class ProcessorSharingResource:
    """Capacity divided evenly among active jobs (MPS-style GPU sharing).

    A job calls :meth:`execute` with an amount of work expressed in seconds of
    *exclusive* use; the returned event triggers when that work completes.
    While ``n`` jobs are active each progresses at ``capacity_share / n``.  An
    optional ``efficiency(n)`` callable models sharing overhead: with
    efficiency 0.9 at n jobs, total throughput across jobs is 90% of exclusive
    throughput.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "ps-resource",
        efficiency=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self._efficiency = efficiency or (lambda n: 1.0)
        # job id -> [remaining_work, completion_event]
        self._jobs: Dict[int, List] = {}
        self._next_job_id = 0
        self._last_update = sim.now
        self._wake: Optional[Event] = None
        self._scheduler_running = False
        self._usage = _UtilizationIntegrator(sim, 1.0)
        self.total_work_done = 0.0

    # -- public API ------------------------------------------------------------------
    def execute(self, work: float) -> Event:
        """Submit ``work`` seconds of exclusive-use work; returns completion event."""
        if work < 0:
            raise SimulationError("work must be non-negative")
        done = self.sim.event()
        if work == 0:
            done.succeed(None)
            return done
        self._advance_progress()
        job_id = self._next_job_id
        self._next_job_id += 1
        self._jobs[job_id] = [float(work), done]
        self._usage.update(1.0 if self._jobs else 0.0)
        self._reschedule()
        return done

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def utilization(self, since: float = 0.0) -> float:
        return self._usage.utilization(since)

    def reset_utilization(self) -> None:
        self._usage.reset()

    # -- internals -----------------------------------------------------------------------
    def _rate_per_job(self) -> float:
        n = len(self._jobs)
        if n == 0:
            return 0.0
        return self._efficiency(n) / n

    def _advance_progress(self) -> None:
        """Apply progress accrued since the last update to every active job."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._jobs:
            return
        rate = self._rate_per_job()
        progressed = elapsed * rate
        finished: List[int] = []
        for job_id, record in self._jobs.items():
            record[0] -= progressed
            self.total_work_done += min(progressed, max(record[0] + progressed, 0.0))
            if record[0] <= 1e-12:
                finished.append(job_id)
        for job_id in finished:
            _, done = self._jobs.pop(job_id)
            done.succeed(None)
        self._usage.update(1.0 if self._jobs else 0.0)

    def _reschedule(self) -> None:
        """(Re)arm a wake-up at the next job completion time."""
        if not self._jobs:
            return
        rate = self._rate_per_job()
        min_remaining = min(record[0] for record in self._jobs.values())
        delay = min_remaining / rate if rate > 0 else float("inf")
        wake = self.sim.timeout(delay)
        self._wake = wake
        wake.callbacks.append(self._on_wake)

    def _on_wake(self, event: Event) -> None:
        if event is not self._wake:
            # A newer schedule superseded this wake-up; ignore it.
            return
        self._advance_progress()
        self._reschedule()

    def __repr__(self) -> str:
        return f"ProcessorSharingResource({self.name!r}, active={self.active_jobs})"
