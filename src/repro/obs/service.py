"""The ``{address}/metrics`` exposition channel.

Every serving session (plain and sharded) and every broker binds a tiny
REQ/REP responder next to its data channels, exactly like the describe and
catalog services.  The channel answers::

    {"op": "snapshot"}    -> {"ok": True, "metrics": {...}, "stall": {...},
                              "spans": [...], "stats": {...}, "origin": {...}}
    {"op": "prometheus"}  -> {"ok": True, "text": "<exposition format>"}

``metrics`` is the process-wide registry snapshot, ``stall`` the derived
attribution breakdown, ``spans`` the tail of the span ring (completed
batch-lifecycle traces recorded when ACKs return to the producer), and
``stats`` the serving object's legacy ``stats()`` dict when one was wired.
All values are plain dicts/lists/floats, so they cross the tcp:// broker as
ordinary pickled bodies — ``python -m repro.obs <address>`` works from any
process that can dial the address.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.obs import trace as obs_trace
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.stall import attribution

__all__ = ["MetricsService", "fetch_metrics", "fetch_metrics_from_hub"]

#: Default number of spans returned by a snapshot (the ring holds more).
SNAPSHOT_SPAN_LIMIT = 64


class MetricsService:
    """Serve the process-wide registry on ``{address}/metrics``."""

    def __init__(
        self,
        hub,
        address: str,
        *,
        stats_fn: Optional[Callable[[], Dict[str, object]]] = None,
        registry: Optional[MetricsRegistry] = None,
        ring: Optional[obs_trace.SpanRing] = None,
    ) -> None:
        from repro.messaging.sockets import RepSocket

        self._rep = RepSocket(hub, f"{address}/metrics", identity=f"metrics-{address}")
        self._stats_fn = stats_fn
        self._registry = registry if registry is not None else REGISTRY
        self._ring = ring if ring is not None else obs_trace.RING
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, daemon=True, name="repro-metrics-service"
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                request = self._rep.recv(timeout=0.2)
            except Exception:
                continue
            try:
                payload = (
                    request.body.get("payload")
                    if isinstance(request.body, dict)
                    else None
                )
                self._rep.reply(request, self._handle(payload))
            except Exception:
                pass  # requester vanished; keep serving others

    def _handle(self, payload) -> Dict[str, object]:
        op = payload.get("op") if isinstance(payload, dict) else None
        if op == "prometheus":
            return {"ok": True, "text": self._registry.prometheus_text()}
        if op in (None, "snapshot"):
            limit = SNAPSHOT_SPAN_LIMIT
            if isinstance(payload, dict) and isinstance(payload.get("spans"), int):
                limit = max(0, payload["spans"])
            reply: Dict[str, object] = {
                "ok": True,
                "metrics": self._registry.snapshot(),
                "stall": attribution(self._registry),
                "spans": self._ring.spans(limit=limit),
                "spans_recorded": self._ring.recorded,
                "origin": obs_trace.origin(),
            }
            if self._stats_fn is not None:
                try:
                    reply["stats"] = self._stats_fn()
                except Exception:
                    pass  # a mid-teardown session still answers with metrics
            return reply
        return {"ok": False, "error": f"unknown op {op!r}"}

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._rep.close()


def fetch_metrics_from_hub(
    hub, address: str, *, body: Optional[Dict[str, object]] = None, timeout: float = 5.0
) -> Dict[str, object]:
    """One request on ``{address}/metrics`` over an existing hub."""
    from repro.messaging.sockets import ReqSocket

    req = ReqSocket(hub, f"{address}/metrics")
    try:
        reply = req.request(dict(body or {"op": "snapshot"}), timeout=timeout)
    finally:
        req.close()
    if not isinstance(reply, dict):
        raise RuntimeError(f"malformed metrics reply from {address!r}: {reply!r}")
    return reply


def fetch_metrics(
    address: str, *, body: Optional[Dict[str, object]] = None, timeout: float = 5.0
) -> Dict[str, object]:
    """Dial ``address`` with a fresh connection and snapshot its metrics."""
    from repro.messaging import endpoint as endpoints

    endpoint = endpoints.connect(address)
    try:
        return fetch_metrics_from_hub(endpoint.hub, address, body=body, timeout=timeout)
    finally:
        endpoint.release()
