"""Snapshot or live-tail any running data plane's metrics channel.

Point it at a serving address (session, sharded group, or broker)::

    python -m repro.obs tcp://127.0.0.1:5555            # one snapshot
    python -m repro.obs tcp://127.0.0.1:5555 --tail     # live, 2s refresh
    python -m repro.obs tcp://127.0.0.1:5555 --prometheus
    python -m repro.obs tcp://127.0.0.1:5555 --export trace.jsonl

Or run the built-in smoke test (used by CI)::

    python -m repro.obs --self-test

``--self-test`` serves a tiny in-process session, trains one epoch through a
real consumer, and asserts the registry counted it, the batch spans cover all
seven lifecycle stages, the stall attribution accounts for the epoch wall
time, and the ``{address}/metrics`` channel answers both snapshot and
Prometheus requests.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.obs import trace as obs_trace
from repro.obs.service import fetch_metrics


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f}ms"
    return f"{value * 1e6:.0f}us"


def _fmt_metric(value) -> str:
    if isinstance(value, dict):
        parts = [f"count={value.get('count', 0):.0f}"]
        for key in ("mean", "p50", "p95", "p99"):
            if key in value:
                parts.append(f"{key}={_fmt_seconds(value[key])}")
        return " ".join(parts)
    if isinstance(value, float) and value == int(value):
        return f"{int(value)}"
    return f"{value}"


def _print_stall(stall: Dict[str, object]) -> None:
    print("stall attribution:")
    for role in ("producer", "consumer"):
        row = stall.get(role)
        if not isinstance(row, dict):
            continue
        wall = float(row.get("wall_seconds", 0.0))
        components: Dict[str, float] = row.get("components", {})  # type: ignore[assignment]
        detail = " ".join(
            f"{phase}={_fmt_seconds(seconds)}" for phase, seconds in components.items()
        )
        print(
            f"  {role}: wall={_fmt_seconds(wall)} "
            f"coverage={100.0 * float(row.get('coverage', 0.0)):.0f}% "
            f"bottleneck={row.get('bottleneck')} ({detail})"
        )


def _print_spans(spans: List[Dict[str, object]], limit: int) -> None:
    shown = spans[-limit:]
    print(f"spans (last {len(shown)} of {len(spans)} returned):")
    for span in shown:
        stages = span.get("stages", {})
        if not isinstance(stages, dict):
            continue
        phases = []
        for phase, (begin, end) in zip(
            obs_trace.PHASES, zip(obs_trace.STAGES, obs_trace.STAGES[1:])
        ):
            if begin in stages and end in stages:
                phases.append(
                    f"{phase}={_fmt_seconds(float(stages[end]) - float(stages[begin]))}"
                )
        total = ""
        if "sampled" in stages and "acked" in stages:
            total = f" total={_fmt_seconds(float(stages['acked']) - float(stages['sampled']))}"
        who = f" consumer={span['consumer_id']}" if "consumer_id" in span else ""
        print(
            f"  epoch={span.get('epoch')} batch={span.get('batch_index')}{who} "
            + " ".join(phases)
            + total
        )


def _print_snapshot(address: str, reply: Dict[str, object], span_limit: int) -> None:
    print(f"metrics @ {address}")
    metrics = reply.get("metrics")
    if isinstance(metrics, dict):
        width = max((len(name) for name in metrics), default=0)
        for name in sorted(metrics):
            print(f"  {name:<{width}}  {_fmt_metric(metrics[name])}")
    stall = reply.get("stall")
    if isinstance(stall, dict):
        _print_stall(stall)
    spans = reply.get("spans")
    if isinstance(spans, list) and spans:
        _print_spans(spans, span_limit)


def _snapshot(address: str, args) -> Dict[str, object]:
    return fetch_metrics(
        address,
        body={"op": "snapshot", "spans": args.spans},
        timeout=args.timeout,
    )


def self_test() -> int:
    """In-process serve → attach → assert counters, spans and the channel."""
    import numpy as np

    import repro
    from repro.data import DataLoader
    from repro.data.dataset import Dataset
    from repro.obs import RING, span_complete
    from repro.obs.metrics import REGISTRY
    from repro.obs.service import fetch_metrics_from_hub
    from repro.obs.stall import attribution

    class _IndexDataset(Dataset):
        def __len__(self) -> int:
            return 24

        def __getitem__(self, index: int):
            return {"x": np.full((8,), float(index), dtype=np.float32)}

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}" + (f": {detail}" if detail else ""))
        if not ok:
            raise SystemExit(f"obs self-test failed at: {label} {detail}")

    print("obs self-test")
    RING.clear()
    address = "inproc://obs-self-test"
    session = repro.serve(DataLoader(_IndexDataset(), batch_size=4), address=address,
                          epochs=1, start=False)
    try:
        consumer = repro.attach(address, max_epochs=1, receive_timeout=20)
        try:
            session.start()
            batches = sum(1 for _ in consumer)
        finally:
            consumer.close()
        check("consumed one epoch", batches == 6, f"batches={batches}")

        # A finished epochs=1 producer has already released its endpoint, so
        # dial the metrics channel through the session's own hub.
        reply = fetch_metrics_from_hub(session.hub, address,
                                       body={"op": "snapshot", "spans": 64})
        check("metrics channel answers", reply.get("ok") is True)
        metrics = reply.get("metrics", {})
        check(
            "non-zero counters",
            metrics.get("repro.producer.publishes", 0) >= 6
            and metrics.get("repro.consumer.batches", 0) >= 6,
            f"publishes={metrics.get('repro.producer.publishes')} "
            f"batches={metrics.get('repro.consumer.batches')}",
        )
        prom = fetch_metrics_from_hub(session.hub, address, body={"op": "prometheus"})
        check(
            "prometheus dump",
            prom.get("ok") is True and "repro_producer_publishes" in prom.get("text", ""),
        )
    finally:
        session.shutdown()

    complete = [span for span in RING.spans() if span_complete(span)]
    check("complete 7-stage span recorded", bool(complete), f"ring={len(RING)}")
    stages = complete[-1]["stages"]
    ordered = [stages[name] for name in obs_trace.STAGES]
    check("span stages monotonic", ordered == sorted(ordered))

    stall = attribution(REGISTRY)
    producer_row = stall["producer"]
    check(
        "stall attribution covers epoch wall",
        producer_row["wall_seconds"] > 0 and producer_row["coverage"] >= 0.5,
        f"coverage={producer_row['coverage']:.2f}",
    )
    check("bottleneck named", producer_row["bottleneck"] is not None,
          str(producer_row["bottleneck"]))
    print("obs self-test: ok")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Snapshot or live-tail a running data plane's metrics.",
    )
    parser.add_argument("address", nargs="?", help="serving address (session or broker)")
    parser.add_argument("--prometheus", action="store_true",
                        help="dump Prometheus exposition text instead of a snapshot")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw snapshot reply as JSON")
    parser.add_argument("--tail", action="store_true",
                        help="refresh the snapshot every --interval seconds")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period for --tail (default: %(default)ss)")
    parser.add_argument("--spans", type=int, default=16,
                        help="lifecycle spans to request (default: %(default)s)")
    parser.add_argument("--export", metavar="FILE",
                        help="also write returned spans as chrome-trace JSONL")
    parser.add_argument("--timeout", type=float, default=5.0,
                        help="request timeout in seconds (default: %(default)s)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the in-process observability smoke test and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.address:
        parser.error("an address is required (or pass --self-test)")

    if args.prometheus:
        reply = fetch_metrics(args.address, body={"op": "prometheus"},
                              timeout=args.timeout)
        print(reply.get("text", ""), end="")
        return 0

    while True:
        reply = _snapshot(args.address, args)
        if args.as_json:
            print(json.dumps(reply, indent=2, default=str))
        else:
            _print_snapshot(args.address, reply, args.spans)
        if args.export:
            spans = reply.get("spans")
            if isinstance(spans, list):
                with open(args.export, "w", encoding="utf-8") as handle:
                    written = obs_trace.export_chrome_trace(spans, handle)
                print(f"wrote {written} trace events to {args.export}")
        if not args.tail:
            return 0
        time.sleep(args.interval)
        print("---")


if __name__ == "__main__":
    sys.exit(main())
