"""Process-wide metrics registry: counters, gauges, histograms.

Design constraints (this module is imported by the messaging/tensor/core hot
paths, so it must be cheap and dependency-free):

* **stdlib only** — no imports from ``repro``; everything under ``src/repro``
  may import this module without creating a cycle.
* **lock-free hot path** — ``Counter.inc`` and ``Histogram.observe`` write to
  a per-thread cell (a plain list) obtained via ``threading.local``; the
  instrument's lock is taken only on the *first* recording from a new thread
  and on aggregation (``value()`` / ``snapshot()``).  Recording from
  ``@reactor_only`` code is therefore non-blocking, which reprolint's RL006
  metric check verifies statically.
* **module-level handles** — instruments are created once at import time
  (``_PUBLISHES = counter("repro.producer.publishes")``) and the registry
  get-or-creates by name, so every module referring to the same name shares
  one instrument.

Names are dotted (``repro.producer.publishes``); ``prometheus_text()``
rewrites them to the Prometheus grammar (dots become underscores).
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "set_enabled",
    "enabled",
]

#: Global kill switch for the hot-path instruments.  Off, ``inc``/``observe``
#: return before touching any cell — the obs-overhead benchmark uses this to
#: measure the uninstrumented baseline without editing call sites.
_ENABLED = True


def set_enabled(flag: bool) -> bool:
    """Enable/disable hot-path recording; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def enabled() -> bool:
    return _ENABLED


class Counter:
    """Monotonic counter with per-thread accumulation cells."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._local = threading.local()
        self._cells: List[List[float]] = []  #: guarded by _lock

    def _cell(self) -> List[float]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = [0.0]
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        self._cell()[0] += amount

    def value(self) -> float:
        with self._lock:
            return sum(cell[0] for cell in self._cells)

    def reset(self) -> None:
        with self._lock:
            for cell in self._cells:
                cell[0] = 0.0

    def snapshot(self) -> float:
        return self.value()


class Gauge:
    """Last-value gauge, plus weakly-held callback sources.

    ``set()`` stores a plain float (a single GIL-atomic store — no lock on
    the hot path).  ``attach(owner, getter)`` registers ``getter(owner)`` to
    be summed into ``value()`` while ``owner`` is alive; the owner is held
    through a weakref so pools and sessions are never kept alive by their
    gauges.  Getters run *outside* the gauge lock (they typically take the
    owner's own lock, e.g. the shared-memory pool accounting lock).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._sources: List[Tuple[weakref.ref, Callable]] = []  #: guarded by _lock

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        self._value = float(value)

    def attach(self, owner: object, getter: Callable[[object], float]) -> None:
        """Sum ``getter(owner)`` into the gauge while ``owner`` is alive."""
        with self._lock:
            self._sources.append((weakref.ref(owner), getter))

    def value(self) -> float:
        total = self._value
        with self._lock:
            sources = list(self._sources)
        saw_dead = False
        for ref, getter in sources:
            owner = ref()
            if owner is None:
                saw_dead = True
                continue
            try:
                total += float(getter(owner))
            except Exception:
                continue  # a mid-teardown owner is not a metrics failure
        if saw_dead:
            with self._lock:
                self._sources = [
                    (ref, getter) for ref, getter in self._sources if ref() is not None
                ]
        return total

    def reset(self) -> None:
        self._value = 0.0

    def snapshot(self) -> float:
        return self.value()


def default_bounds() -> Tuple[float, ...]:
    """Log-spaced latency bounds: 1e-6 s .. 1e2 s at 4 buckets per decade."""
    bounds: List[float] = []
    for decade in range(-6, 2):
        for step in range(4):
            bounds.append(10.0 ** (decade + step / 4.0))
    bounds.append(100.0)
    return tuple(bounds)


class Histogram:
    """Fixed-bucket histogram with per-thread accumulation cells.

    Each cell is ``[count, sum, bucket_0, ..., bucket_n]`` where bucket ``i``
    counts observations ``<= bounds[i]`` exclusive of earlier buckets, and the
    final bucket is the ``+inf`` overflow.  Aggregation merges cells under
    the lock; percentiles interpolate the geometric midpoint of the winning
    bucket (log-spaced bounds make that the unbiased choice).
    """

    def __init__(self, name: str, bounds: Optional[Iterable[float]] = None) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = (
            tuple(sorted(set(float(b) for b in bounds)))
            if bounds is not None
            else default_bounds()
        )
        self._width = 2 + len(self.bounds) + 1
        self._lock = threading.Lock()
        self._local = threading.local()
        self._cells: List[List[float]] = []  #: guarded by _lock

    def _cell(self) -> List[float]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = [0.0] * self._width
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        cell = self._cell()
        cell[0] += 1.0
        cell[1] += value
        cell[2 + bisect_right(self.bounds, value)] += 1.0

    def _merged(self) -> List[float]:
        merged = [0.0] * self._width
        with self._lock:
            for cell in self._cells:
                for i, v in enumerate(cell):
                    merged[i] += v
        return merged

    def count(self) -> float:
        return self._merged()[0]

    def sum(self) -> float:
        return self._merged()[1]

    def mean(self) -> float:
        merged = self._merged()
        return merged[1] / merged[0] if merged[0] else 0.0

    def percentile(self, q: float) -> float:
        """Approximate quantile ``q`` in [0, 1] from the merged buckets."""
        merged = self._merged()
        total = merged[0]
        if not total:
            return 0.0
        target = q * total
        cumulative = 0.0
        buckets = merged[2:]
        for i, bucket_count in enumerate(buckets):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                upper = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else upper / 10.0
                if lower <= 0:
                    return upper
                return (lower * upper) ** 0.5
        return self.bounds[-1]

    def reset(self) -> None:
        with self._lock:
            for cell in self._cells:
                for i in range(len(cell)):
                    cell[i] = 0.0

    def snapshot(self) -> Dict[str, float]:
        merged = self._merged()
        out = {
            "count": merged[0],
            "sum": merged[1],
            "mean": merged[1] / merged[0] if merged[0] else 0.0,
        }
        if merged[0]:
            out["p50"] = self.percentile(0.50)
            out["p95"] = self.percentile(0.95)
            out["p99"] = self.percentile(0.99)
        return out

    def bucket_counts(self) -> List[float]:
        return self._merged()[2:]


class MetricsRegistry:
    """Name -> instrument map with get-or-create semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}  #: guarded by _lock

    def _get_or_create(self, name: str, factory: Callable[[], object], kind: type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, bounds), Histogram)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[object]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, object]:
        """Aggregated view: counters/gauges -> float, histograms -> dict."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def reset(self) -> None:
        """Zero every instrument *in place* — module-level handles stay
        bound to the same objects, so instrumentation keeps working."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def prometheus_text(self) -> str:
        """Prometheus exposition text format (dots become underscores)."""
        with self._lock:
            metrics = list(self._metrics.items())
        lines: List[str] = []
        for name, metric in sorted(metrics):
            flat = _prom_name(name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {flat} counter")
                lines.append(f"{flat} {metric.value():.17g}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {flat} gauge")
                lines.append(f"{flat} {metric.value():.17g}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {flat} histogram")
                cumulative = 0.0
                for bound, bucket in zip(metric.bounds, metric.bucket_counts()):
                    cumulative += bucket
                    lines.append(f'{flat}_bucket{{le="{bound:.9g}"}} {cumulative:.17g}')
                lines.append(f'{flat}_bucket{{le="+Inf"}} {metric.count():.17g}')
                lines.append(f"{flat}_sum {metric.sum():.17g}")
                lines.append(f"{flat}_count {metric.count():.17g}")
        return "\n".join(lines) + "\n"


def _prom_name(name: str) -> str:
    flat = "".join(ch if (ch.isalnum() or ch in "_:") else "_" for ch in name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


#: The process-wide registry every repro component publishes into.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a :class:`Counter` in the process-wide registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a :class:`Gauge` in the process-wide registry."""
    return REGISTRY.gauge(name)


def histogram(name: str, bounds: Optional[Iterable[float]] = None) -> Histogram:
    """Get-or-create a :class:`Histogram` in the process-wide registry."""
    return REGISTRY.histogram(name, bounds)
