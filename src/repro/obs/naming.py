"""Canonical metric namespace and the legacy ``stats()`` key maps.

Every component reports through one dotted scheme (``repro.<component>.<what>``).
The pre-observability ``stats()`` dicts used ad-hoc, drifting key names
(``payloads_published`` on the producer row, ``batches_consumed`` on the
consumer row, bare pool byte counts on both); those shapes are kept alive as
*thin deprecated views* derived from the canonical ``metrics()`` dicts via
the maps below, so existing callers and tests keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = [
    "PRODUCER_KEYS",
    "CONSUMER_KEYS",
    "GROUP_CONSUMER_KEYS",
    "to_legacy",
]

#: canonical producer metric name -> legacy ``TensorProducer.stats()`` key.
PRODUCER_KEYS: Dict[str, str] = {
    "repro.producer.epoch": "epoch",
    "repro.producer.epochs_completed": "epochs_completed",
    "repro.producer.batches_loaded": "batches_loaded",
    "repro.producer.publishes": "payloads_published",
    "repro.producer.pending_batches": "pending_batches",
    "repro.producer.consumers": "consumers",
    "repro.pool.bytes_in_flight": "bytes_in_flight",
    "repro.pool.cached_bytes": "cached_bytes",
    "repro.pool.peak_bytes": "peak_bytes",
    "repro.pool.free_bytes": "free_bytes",
    "repro.cache": "cache",
}

#: canonical consumer metric name -> legacy ``TensorConsumer.stats()`` key.
CONSUMER_KEYS: Dict[str, str] = {
    "repro.consumer.id": "consumer_id",
    "repro.consumer.batches": "batches_consumed",
    "repro.consumer.samples": "samples_consumed",
    "repro.consumer.epochs": "epochs_seen",
    "repro.consumer.duplicates": "duplicates_dropped",
    "repro.consumer.buffered": "buffered",
    "repro.consumer.admitted_epoch": "admitted_epoch",
}


#: canonical group metric name -> legacy ``GroupConsumer.stats()`` key.
GROUP_CONSUMER_KEYS: Dict[str, str] = {
    "repro.consumer.id": "consumer_id",
    "repro.group.interleave": "interleave",
    "repro.group.shards": "shards",
    "repro.consumer.batches": "batches_consumed",
    "repro.consumer.samples": "samples_consumed",
    "repro.consumer.duplicates": "duplicates_dropped",
}


def to_legacy(
    canonical: Mapping[str, object], key_map: Mapping[str, str], *, role: str
) -> Dict[str, object]:
    """Project a canonical ``metrics()`` dict onto the legacy key names."""
    legacy: Dict[str, object] = {"role": role}
    for canonical_key, legacy_key in key_map.items():
        if canonical_key in canonical:
            legacy[legacy_key] = canonical[canonical_key]
    return legacy
