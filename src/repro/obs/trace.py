"""Batch-lifecycle tracing: one compact span per batch.

A span is a plain dict of stage-name -> ``time.monotonic()`` stamp covering
the seven lifecycle stages::

    sampled -> loaded -> staged -> published -> delivered -> trained -> acked

The producer stamps the first four into ``BatchPayload.metadata["trace"]``,
so the stamps travel with the payload over ``inproc://`` (shared dict) and
``tcp://`` (pickled) alike; the consumer copies the dict (payloads are shared
between consumers in-process), appends its stages, and carries the completed
trace back to the producer inside the ACK body.  Both sides record completed
spans into a bounded in-process :class:`SpanRing`.

Clock model: stamps are ``time.monotonic()`` (CLOCK_MONOTONIC — shared by
all processes on one Linux host, so cross-process deltas are meaningful on a
single machine).  Each process also publishes its *wall anchor*
(``time.time() - time.monotonic()`` at import); adding the anchor converts a
stamp to an absolute wall-clock time, which the chrome-``trace_event`` export
uses for its microsecond timestamps.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Deque, Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "STAGES",
    "WALL_ANCHOR",
    "now",
    "origin",
    "new_trace",
    "span_complete",
    "SpanRing",
    "RING",
    "record_span",
    "export_chrome_trace",
]

#: Lifecycle stages in order.  Adjacent pairs define the derived phases
#: (load, stage, publish, deliver, train, ack).
STAGES = ("sampled", "loaded", "staged", "published", "delivered", "trained", "acked")

#: Names for the interval *between* adjacent stages, index-aligned with
#: ``zip(STAGES, STAGES[1:])``.
PHASES = ("load", "stage", "publish", "deliver", "train", "ack")

#: This process's monotonic->wall offset, fixed at import time.
WALL_ANCHOR = time.time() - time.monotonic()


def now() -> float:
    """The trace clock: ``time.monotonic()``."""
    return time.monotonic()


def origin() -> Dict[str, float]:
    """Identity of the stamping process, carried alongside the trace."""
    return {"pid": os.getpid(), "anchor": WALL_ANCHOR}


def new_trace(**stamps: float) -> Dict[str, float]:
    """A fresh trace dict seeded with the given stage stamps."""
    return dict(stamps)


def span_complete(span: Dict[str, object]) -> bool:
    """True when every lifecycle stage has a stamp."""
    stages = span.get("stages", span)
    return isinstance(stages, dict) and all(stage in stages for stage in STAGES)


class SpanRing:
    """Bounded in-memory ring of completed spans (oldest evicted first)."""

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: Deque[Dict[str, object]] = deque(maxlen=capacity)  #: guarded by _lock
        self._recorded = 0  #: guarded by _lock

    def record(self, span: Dict[str, object]) -> None:
        with self._lock:
            self._spans.append(span)
            self._recorded += 1

    def spans(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        with self._lock:
            items = list(self._spans)
        if limit is not None and limit < len(items):
            return items[-limit:]
        return items

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (>= len() once eviction starts)."""
        with self._lock:
            return self._recorded

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def export_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write the ring as chrome-``trace_event`` JSONL; returns the
        number of events written."""
        spans = self.spans()
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                return export_chrome_trace(spans, handle)
        return export_chrome_trace(spans, destination)


#: The process-wide ring both producers and consumers record into.
RING = SpanRing()


def record_span(
    *,
    epoch: int,
    batch_index: int,
    stages: Dict[str, float],
    consumer_id: Optional[str] = None,
    origin: Optional[Dict[str, float]] = None,
    ring: Optional[SpanRing] = None,
) -> Dict[str, object]:
    """Assemble a span record and push it onto the ring."""
    span: Dict[str, object] = {
        "epoch": int(epoch),
        "batch_index": int(batch_index),
        "stages": dict(stages),
    }
    if consumer_id is not None:
        span["consumer_id"] = consumer_id
    if origin:
        span["origin"] = dict(origin)
    (ring if ring is not None else RING).record(span)
    return span


def _span_events(span: Dict[str, object]) -> Iterable[Dict[str, object]]:
    stages = span.get("stages")
    if not isinstance(stages, dict):
        return
    span_origin = span.get("origin") or {}
    anchor = float(span_origin.get("anchor", WALL_ANCHOR))
    pid = int(span_origin.get("pid", os.getpid()))
    tid = int(span.get("batch_index", 0))
    for phase, (begin, end) in zip(PHASES, zip(STAGES, STAGES[1:])):
        if begin not in stages or end not in stages:
            continue
        start = float(stages[begin])
        duration = max(0.0, float(stages[end]) - start)
        yield {
            "name": phase,
            "ph": "X",
            "ts": (start + anchor) * 1e6,
            "dur": duration * 1e6,
            "pid": pid,
            "tid": tid,
            "cat": "batch",
            "args": {
                "epoch": span.get("epoch"),
                "batch_index": span.get("batch_index"),
                "consumer_id": span.get("consumer_id"),
            },
        }


def export_chrome_trace(spans: Iterable[Dict[str, object]], handle: IO[str]) -> int:
    """Write spans as JSONL, one chrome-``trace_event`` dict per line.

    The output loads in Perfetto / ``chrome://tracing`` after wrapping the
    lines in a JSON array (``jq -s .``), or line-by-line in any JSONL tool.
    """
    written = 0
    for span in spans:
        for event in _span_events(span):
            handle.write(json.dumps(event) + "\n")
            written += 1
    return written
