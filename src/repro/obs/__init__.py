"""Observability for the shared data plane.

Four pieces, designed to be imported from anywhere in the tree:

* :mod:`repro.obs.metrics` — the process-wide registry (counters, gauges,
  histograms; lock-free hot path via per-thread cells).
* :mod:`repro.obs.trace` — per-batch lifecycle spans (sampled → loaded →
  staged → published → delivered → trained → acked) carried in payload
  metadata across processes, collected in a bounded ring.
* :mod:`repro.obs.stall` — derived stall attribution (where did the wall
  time go, and which phase is the bottleneck).
* :mod:`repro.obs.service` — the ``{address}/metrics`` REQ/REP channel plus
  the ``python -m repro.obs`` CLI.  Loaded lazily: the service pulls in the
  messaging stack, which itself records into this package's registry.
"""

from __future__ import annotations

from repro.obs import naming, stall, trace
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from repro.obs.trace import RING, STAGES, SpanRing, record_span, span_complete

__all__ = [
    "REGISTRY",
    "RING",
    "STAGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsService",
    "SpanRing",
    "counter",
    "fetch_metrics",
    "gauge",
    "histogram",
    "naming",
    "record_span",
    "span_complete",
    "stall",
    "trace",
]

_LAZY = {"MetricsService", "fetch_metrics", "fetch_metrics_from_hub"}


def __getattr__(name: str):
    # repro.obs.service imports the messaging stack, whose modules import
    # repro.obs.metrics at module scope — resolving it lazily keeps this
    # package importable from anywhere without a cycle.
    if name in _LAZY:
        from repro.obs import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
