"""Stall attribution: decompose wall time into named phases.

Producer wall time (the epoch loop) splits into **load** (drawing and
transforming batches), **stage** (copying into shared memory), **capacity
wait** (blocked on the ack ledger / pool budget) and **publish** (fan-out on
the data channel).  Consumer wall time (the training loop) splits into
**wait** (no batch available — starved), **train** (the time the training
step holds the batch) and **ack** (sending the release).

The components are plain registry counters accumulated by the instrumented
code; this module derives the breakdown, the per-role coverage (components /
wall — should be >= 0.95 in a healthy run, the gap being loop bookkeeping)
and names the bottleneck phase.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.obs.metrics import REGISTRY, Counter, Histogram, MetricsRegistry

__all__ = [
    "PRODUCER_COMPONENTS",
    "CONSUMER_COMPONENTS",
    "attribution",
]

#: phase name -> counter holding cumulative seconds spent in that phase.
PRODUCER_COMPONENTS: Dict[str, str] = {
    "load": "repro.producer.stall.load_seconds",
    "stage": "repro.producer.stall.stage_seconds",
    "capacity_wait": "repro.producer.stall.capacity_wait_seconds",
    "publish": "repro.producer.stall.publish_seconds",
}

CONSUMER_COMPONENTS: Dict[str, str] = {
    "wait": "repro.consumer.stall.wait_seconds",
    "train": "repro.consumer.stall.train_seconds",
    "ack": "repro.consumer.stall.ack_seconds",
}

#: wall-time source per role: a histogram (sum of epoch durations) for the
#: producer, a counter (cumulative loop seconds) for the consumer.
PRODUCER_WALL = "repro.producer.epoch_seconds"
CONSUMER_WALL = "repro.consumer.loop_seconds"


def _counter_value(registry: MetricsRegistry, name: str) -> float:
    metric = registry.get(name)
    if isinstance(metric, Counter):
        return metric.value()
    return 0.0


def _wall_seconds(registry: MetricsRegistry, name: str) -> float:
    metric = registry.get(name)
    if isinstance(metric, Histogram):
        return metric.sum()
    if isinstance(metric, Counter):
        return metric.value()
    return 0.0


def _role_breakdown(
    registry: MetricsRegistry, components: Mapping[str, str], wall_name: str
) -> Dict[str, object]:
    parts = {
        phase: _counter_value(registry, metric) for phase, metric in components.items()
    }
    wall = _wall_seconds(registry, wall_name)
    accounted = sum(parts.values())
    bottleneck: Optional[str] = None
    if any(parts.values()):
        bottleneck = max(parts, key=lambda phase: parts[phase])
    return {
        "wall_seconds": wall,
        "components": parts,
        "accounted_seconds": accounted,
        "coverage": (accounted / wall) if wall > 0 else 0.0,
        "bottleneck": bottleneck,
    }


def attribution(registry: Optional[MetricsRegistry] = None) -> Dict[str, object]:
    """The stall breakdown for both roles, from the given (or global)
    registry."""
    registry = registry if registry is not None else REGISTRY
    return {
        "producer": _role_breakdown(registry, PRODUCER_COMPONENTS, PRODUCER_WALL),
        "consumer": _role_breakdown(registry, CONSUMER_COMPONENTS, CONSUMER_WALL),
    }
