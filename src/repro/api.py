"""The ergonomic top-level API: ``repro.serve()`` and ``repro.attach()``.

These two calls make the paper's "one-line swap" literal.  A training script
that used to build its own loader::

    loader = DataLoader(dataset, batch_size=32, transform=pipeline)
    for batch in loader: ...

becomes a consumer of a shared loader served at an address::

    repro.serve(loader, address="inproc://cifar")          # once, anywhere

    for batch in repro.attach("inproc://cifar"): ...       # each trainer

Addresses are URIs resolved through the pluggable transport registry in
:mod:`repro.messaging.endpoint`.  ``inproc://`` serves threads of this
process; ``tcp://`` serves **other OS processes** — serving starts a broker
thread plus a posix shared-memory pool (``tcp://host:0`` auto-assigns a port,
surfaced via ``session.address``), and attaching dials the broker while
tensors stay zero-copy in shared memory.  New schemes register the same way.
Nobody passes hub or pool objects around: ``serve`` binds the address,
``attach`` resolves it — from the live-session directory when the producer
runs in this process, falling back to a transport connect otherwise.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.config import ConsumerConfig, ProducerConfig
from repro.core.group import ShardedLoaderSession, attach_address
from repro.core.session import SharedLoaderSession, live_sessions
from repro.messaging.endpoint import is_uri, parse_address

#: Where ``serve()`` puts a loader when the caller does not name an address.
DEFAULT_ADDRESS = "inproc://shared-loader"


def _resolve_address_and_config(address, config, config_param, config_cls, kwargs):
    """Shared serve()/attach() plumbing: address fallback and config merge.

    Falls back to the config's address (when it is a URI) then to
    :data:`DEFAULT_ADDRESS`, validates the address early (catching typos like
    ``inproc:/x`` before serving silently), and builds a config from kwargs
    unless an explicit one was passed.
    """
    if address is None:
        if config is not None and is_uri(config.address):
            address = config.address
        else:
            address = DEFAULT_ADDRESS
    parse_address(address)
    if config is not None and kwargs:
        raise TypeError(
            f"pass either {config_param}= or {config_cls.__name__} kwargs, not both"
        )
    if config is None:
        config = config_cls(address=address, **kwargs)
    return address, config


def serve(
    data_loader,
    *,
    address: Optional[str] = None,
    producer_config: Optional[ProducerConfig] = None,
    start: bool = True,
    cache: Optional[str] = None,
    shards: int = 1,
    shard_mode: str = "strided",
    **config_kwargs,
):
    """Serve ``data_loader`` at ``address`` and return the running session.

    When ``address`` is omitted it falls back to the address inside an
    explicitly passed ``producer_config`` (if it is a URI), then to
    :data:`DEFAULT_ADDRESS`.  Keyword arguments other than
    ``producer_config``/``start``/``cache``/``shards``/``shard_mode`` are
    forwarded to :class:`~repro.core.config.ProducerConfig` (``epochs=2``,
    ``flexible_batching=True``, ...).  Pass ``start=False`` to bind the
    address — making it attachable — without starting the producer loop yet
    (useful when consumers should all register before the first batch).

    ``cache`` switches on the epoch cache (:mod:`repro.cache`):
    ``serve(loader, cache="all")`` retains every staged batch so epoch 1+ is
    republished straight from shared memory; ``cache="lru"`` or ``"mru"``
    with ``cache_bytes=<budget>`` keeps a CoorDL-style partial cache.  It is
    sugar for ``cache_policy=`` and the session's cache counters are at
    ``session.stats()["producer"]["cache"]``.

    ``shards=N`` (N > 1) serves the loader from a **sharded producer group**
    (:class:`~repro.core.group.ShardedLoaderSession`): N member producers,
    each loading a disjoint shard of the sample space, behind this one
    address — ``repro.attach`` then returns a merged stream covering the
    whole dataset.  ``shard_mode`` picks the partitioning (``"strided"`` or
    ``"contiguous"``); ``cache`` composes — each member caches only its
    shard, and a ``cache_bytes`` budget is the group total (split evenly
    across members).

    For ``tcp://host:0`` addresses the OS assigns the port at bind time; read
    the resolved address back from ``session.address`` and hand it to the
    consumer processes.
    """
    if cache is not None:
        if "cache_policy" in config_kwargs:
            raise TypeError("pass either cache= or cache_policy=, not both")
        config_kwargs["cache_policy"] = cache
    if shards < 1:
        raise ValueError("shards must be at least 1")
    address, producer_config = _resolve_address_and_config(
        address, producer_config, "producer_config", ProducerConfig, config_kwargs
    )
    if shards > 1:
        session = ShardedLoaderSession(
            data_loader,
            address=address,
            shards=shards,
            producer_config=producer_config,
            shard_mode=shard_mode,
        )
    else:
        session = SharedLoaderSession(
            data_loader, address=address, producer_config=producer_config
        )
    if start:
        session.start()
    return session


def attach(
    address: Optional[str] = None,
    *,
    consumer_config: Optional[ConsumerConfig] = None,
    **config_kwargs,
):
    """Attach to the shared loader served at ``address``.

    Returns an iterable of batches, drop-in for a data loader: a
    :class:`~repro.core.consumer.TensorConsumer` for a plain address, or a
    :class:`~repro.core.group.GroupConsumer` (same iteration surface) when
    the address is served by a sharded producer group — training code does
    not need to know which.  Keyword arguments other than ``consumer_config``
    are forwarded to :class:`~repro.core.config.ConsumerConfig`
    (``consumer_id=...``, ``batch_size=...``, ``max_epochs=...``,
    ``interleave="any"`` for arrival-order sharded delivery).

    When the serving session lives in this process the consumer is created
    through it (so the session also closes it at shutdown); otherwise the
    address is resolved through the transport registry and the serving
    side's describe responder decides the consumer shape.  When ``address``
    is omitted it falls back to the address inside an explicitly passed
    ``consumer_config`` (if it is a URI), then to :data:`DEFAULT_ADDRESS`.
    """
    address, consumer_config = _resolve_address_and_config(
        address, consumer_config, "consumer_config", ConsumerConfig, config_kwargs
    )
    session = SharedLoaderSession.at(address)
    if session is not None:
        return session.consumer(consumer_config)
    resolved = _resolve_broker_dataset(address)
    if resolved is not None:
        plane, dataset = resolved
        return plane.attach_dataset(dataset, consumer_config)
    return attach_address(address, consumer_config)


def _resolve_broker_dataset(address: str):
    """Match ``address`` against an in-process broker's dataset namespace.

    A broker-mounted dataset registers its session under the full mount
    address, so the exact-match lookup in :func:`attach` normally wins; this
    prefix scan is what makes *lazily registered* (or evicted) datasets
    attachable by address — the broker mounts them on the way through.  Only
    objects exposing ``attach_dataset`` (brokers) participate, so plain
    sessions whose address happens to prefix another's are never matched.
    """
    for base, candidate in live_sessions().items():
        if not hasattr(candidate, "attach_dataset"):
            continue
        if address.startswith(f"{base}/"):
            if candidate._owner_pid != os.getpid():  # inherited via fork(): stale
                continue
            return candidate, address[len(base) + 1 :]
    return None


def broker(
    address: Optional[str] = None,
    *,
    idle_ttl: Optional[float] = None,
    sweep_interval: float = 1.0,
    default_quota_bytes: Optional[int] = None,
):
    """Open a multi-tenant :class:`~repro.broker.DatasetBroker` at ``address``.

    One bound address (and one shared-memory pool) hosting many named
    datasets::

        plane = repro.broker("tcp://0.0.0.0:5555")
        plane.publish("imagenet", imagenet_loader, quota_bytes=2 << 30)
        plane.publish("audio", audio_loader, shards=2)

        # any process:
        for batch in repro.attach("tcp://host:5555/imagenet"):
            ...

    ``idle_ttl`` evicts datasets with no consumers for that many seconds
    (they remount on the next attach); ``default_quota_bytes`` caps each
    dataset's live shared-memory footprint unless its ``publish`` overrides
    it.  When ``address`` is omitted the plane binds
    :data:`repro.broker.DEFAULT_BROKER_ADDRESS`.
    """
    from repro.broker.service import DatasetBroker

    return DatasetBroker(
        address,
        idle_ttl=idle_ttl,
        sweep_interval=sweep_interval,
        default_quota_bytes=default_quota_bytes,
    )
