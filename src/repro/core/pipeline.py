"""The overlapped producer pipeline: load + stage off the publish path.

The paper's producer (Figure 4) is a loop of *load → stage → publish → wait
for acknowledgements*.  Run strictly in sequence, the loader sits idle while
the producer waits on consumer acks and the consumers sit idle while the next
batch is loaded and copied into shared memory.  This module separates the two
halves so they overlap:

* a **stage worker** thread pulls prepared batches from the nested loader
  (itself possibly multi-worker, see
  :meth:`~repro.data.dataloader.DataLoader.prefetch_iter`), runs a caller
  supplied ``stage_fn`` on each (for the producer: copy into shared memory and
  pack a :class:`~repro.tensor.payload.BatchPayload`), and
* a **bounded hand-off queue** of at most ``depth`` staged items feeds the
  publishing loop, which then spends its time only on publish/ack/control
  work.

``depth <= 1`` short-circuits to a fully synchronous pipeline — no thread, no
queue — which is byte-for-byte the pre-pipeline producer behaviour and the
default.

Staged items own resources (shared-memory holds) before anyone has consumed
them, so shutdown is explicit: :meth:`StagePipeline.close` stops the worker,
drains everything still queued, and runs ``release_fn`` on each drained item
so no staged segment leaks its producer hold when an epoch is stopped or
skipped mid-flight.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, Tuple

from repro.obs.metrics import counter

__all__ = ["StagedItem", "StagePipeline"]

_ITEMS_STAGED = counter("repro.pipeline.items_staged")
_ITEMS_DRAINED = counter("repro.pipeline.items_drained")


@dataclass
class StagedItem:
    """One staged unit flowing from the stage worker to the publish loop.

    ``value`` is whatever ``stage_fn`` produced (a packed payload for the
    default epoch runner, a staged producer batch under flexible batching);
    ``segment_names`` are the shared segments whose producer holds the item
    carries, so a drain can release them without understanding ``value``.
    ``from_cache`` marks items republished from the epoch cache
    (:mod:`repro.cache`): they already carry staged segments (never re-stage)
    and must not be re-inserted into the cache after publishing.
    """

    index: int
    value: Any
    segment_names: Tuple[str, ...] = ()
    from_cache: bool = False


class _Done:
    """Sentinel: the source is exhausted."""


class _Failed:
    """Sentinel: the worker died; carries the exception to re-raise."""

    def __init__(self, error: BaseException) -> None:
        self.error = error


class StagePipeline:
    """Apply ``stage_fn`` to ``source`` items with at most ``depth`` staged in flight.

    Parameters
    ----------
    source:
        Iterable of raw work items (typically loader batches, already
        prefetched in parallel by the loader's own workers).
    stage_fn:
        Turns one source item into a :class:`StagedItem`.  With ``depth > 1``
        it runs on the background worker thread; it must only touch
        thread-safe state (the :class:`~repro.tensor.shared_memory.SharedMemoryPool`
        is; the producer's sockets are not).
    depth:
        Bound on staged items in flight between the worker and the consumer
        of the pipeline.  ``1`` (the default posture) disables the worker and
        stages synchronously on :meth:`__next__`.
    release_fn:
        Called on every staged-but-never-consumed item during :meth:`close`
        (and on an item the worker had in hand when stopped) so its resource
        holds are returned.
    source_close:
        Optional callable tearing down the source (e.g.
        :meth:`LoaderIterator.close`) once the pipeline is done with it.
    """

    def __init__(
        self,
        source: Iterable,
        stage_fn: Callable[[Any], StagedItem],
        *,
        depth: int = 1,
        release_fn: Optional[Callable[[StagedItem], None]] = None,
        source_close: Optional[Callable[[], None]] = None,
        name: str = "repro-stage-worker",
    ) -> None:
        if depth < 1:
            raise ValueError("pipeline depth must be at least 1")
        self.depth = int(depth)
        self._stage_fn = stage_fn
        self._release_fn = release_fn
        self._source_close = source_close
        self._closed = False
        self.items_staged = 0
        self.items_released_unconsumed = 0

        if self.depth == 1:
            self._iter: Optional[Iterator] = iter(source)
            self._queue: Optional["queue.Queue"] = None
            self._thread: Optional[threading.Thread] = None
            return

        self._iter = None
        self._source = iter(source)
        self._queue = queue.Queue(maxsize=self.depth)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._worker, daemon=True, name=name)
        self._thread.start()

    # ------------------------------------------------------------------ worker side
    def _worker(self) -> None:
        try:
            for item in self._source:
                if self._stop.is_set():
                    return
                staged = self._stage_fn(item)
                self.items_staged += 1
                _ITEMS_STAGED.inc()
                if not self._put(staged):
                    # Stop was requested while the queue was full; the staged
                    # item was never handed over, so its holds are ours to
                    # return.
                    self._discard(staged)
                    return
            self._put(_Done())
        except BaseException as exc:  # propagate loader/staging failures
            if not self._put(_Failed(exc)):
                pass  # closing anyway; close() re-raises nothing by design

    def _put(self, obj) -> bool:
        """Blocking put that gives up when the pipeline is being closed."""
        while not self._stop.is_set():
            try:
                self._queue.put(obj, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    # ------------------------------------------------------------------ consumer side
    def __iter__(self) -> "StagePipeline":
        return self

    def __next__(self) -> StagedItem:
        if self._closed:
            raise StopIteration
        if self._queue is None:
            # Synchronous depth-1 mode: load + stage happen here, lazily.
            item = next(self._iter)
            staged = self._stage_fn(item)
            self.items_staged += 1
            _ITEMS_STAGED.inc()
            return staged
        obj = self._queue.get()
        if isinstance(obj, _Done):
            raise StopIteration
        if isinstance(obj, _Failed):
            raise obj.error
        return obj

    # ------------------------------------------------------------------ shutdown
    def _discard(self, obj) -> None:
        if not isinstance(obj, StagedItem):
            return
        self.items_released_unconsumed += 1
        _ITEMS_DRAINED.inc()
        if self._release_fn is not None:
            try:
                self._release_fn(obj)
            except Exception:
                pass  # a failed release must not mask the shutdown path

    def _drain(self) -> None:
        while True:
            try:
                obj = self._queue.get_nowait()
            except queue.Empty:
                return
            self._discard(obj)

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker and release every staged-but-unconsumed item.

        Idempotent.  Safe to call with the worker blocked on a full queue
        (draining unblocks it) or blocked inside the loader (``source_close``
        wakes it).
        """
        if self._closed:
            return
        self._closed = True
        if self._queue is not None:
            self._stop.set()
            # A worker blocked inside the loader's __next__ (e.g. waiting on
            # loader worker threads) is woken by closing the source.
            if self._source_close is not None:
                try:
                    self._source_close()
                except Exception:
                    pass
            deadline = timeout
            while True:
                self._drain()
                self._thread.join(timeout=min(0.1, deadline))
                if not self._thread.is_alive():
                    break
                deadline -= 0.1
                if deadline <= 0:
                    break
            self._drain()  # anything the worker squeezed in before exiting
        elif self._source_close is not None:
            try:
                self._source_close()
            except Exception:
                pass

    @property
    def is_background(self) -> bool:
        return self._queue is not None

    def __repr__(self) -> str:
        mode = "background" if self.is_background else "sync"
        return (
            f"StagePipeline(depth={self.depth}, mode={mode}, staged={self.items_staged}, "
            f"drained={self.items_released_unconsumed})"
        )
