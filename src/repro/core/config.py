"""Configuration objects for the producer and consumers.

The defaults follow the paper: a consumer-side buffer of two batches is enough
for similar workloads (Section 3.2.5), the rubberband window is 2% of the
dataset (Section 3.2.5), and flexible batching is off unless consumers request
different batch sizes (Section 3.2.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class ProducerConfig:
    """Settings for a :class:`~repro.core.producer.TensorProducer`.

    Attributes
    ----------
    address:
        Base address for the producer's sockets; the data channel lives at
        ``{address}/data`` and the control/ack channel at ``{address}/control``.
    buffer_size:
        Maximum batches a consumer may hold un-acknowledged; bounds how far
        consumers can drift apart.
    rubberband_fraction:
        Fraction of the epoch during which a newly joining consumer is
        admitted immediately (others halt while it catches up).  ``0``
        disables rubberbanding: late joiners wait for the next epoch.
    epochs:
        Number of passes over the nested data loader before the producer
        shuts down.  ``None`` runs until :meth:`TensorProducer.stop`.
    flexible_batching:
        Serve consumers with differing batch sizes from larger producer
        batches (Section 3.2.6).
    producer_batch_size:
        Row count of a producer batch under flexible batching.  Should be at
        least twice the largest consumer batch size to bound repetition below
        50%; when ``None`` it is sized automatically from consumer requests.
    shuffle_slices / consumer_offsets:
        Batch-order variation knobs (Section 3.2.7): shuffle the order of each
        consumer's slices within a producer batch, and start each consumer's
        carving at a different offset.
    heartbeat_timeout:
        Seconds of consumer silence after which the producer detaches it.
    wait_for_consumers:
        Pause data loading while no consumers are registered (the paper's
        always-available producer behaviour).
    share_device:
        Device batches are staged on before publishing (``"cuda:0"`` for the
        GPU-staging behaviour, ``"cpu"`` to share host tensors).
    pipeline_depth:
        Bound on batches kept loaded-and-staged ahead of publishing.  ``1``
        (the default) keeps the classic strictly-sequential producer loop;
        larger values run load + stage on a background pipeline
        (:mod:`repro.core.pipeline`) so loading overlaps publish/ack work, at
        the cost of up to ``pipeline_depth`` extra staged batches of shared
        memory in flight.
    pipeline_workers:
        Loader worker threads the pipeline may use while prefetching.
        ``None`` (auto) uses the nested loader's own ``num_workers`` when it
        has any, otherwise up to ``min(4, pipeline_depth)`` threads; ``0``
        forces source-side loading to stay synchronous (only staging
        overlaps) — use it when the dataset or transform is not thread-safe.
        Ignored at ``pipeline_depth=1``.
    cache_policy:
        Epoch-cache policy (:class:`repro.cache.CachePolicy`): ``"none"``
        (default — every epoch reloads), ``"all"`` (retain every staged
        batch; epoch 1+ republishes from shared memory without touching the
        loader), or budgeted ``"lru"`` / ``"mru"`` over batch indices
        (CoorDL-style partial caching; requires ``cache_bytes``).  Cached
        epochs replay the batch composition of the epoch that filled the
        cache, so pair the cache with a deterministic sampler when exact
        cross-epoch shuffling matters.
    cache_bytes:
        Byte budget for the epoch cache, required by (and only valid with)
        ``"lru"`` / ``"mru"``.  A capped "cache as much as fits" is
        expressed as ``"lru"``; pairing a budget with ``"all"`` or
        ``"none"`` is rejected rather than silently changing the policy's
        meaning.
    max_inflight_batches:
        Hard cap on batches published-but-unacknowledged at once (the
        ledger's pending count).  Per-consumer ``buffer_size`` already bounds
        each consumer's drift; this bounds the *producer's* total footprint
        regardless of how many consumers attach — the broker sets it per
        dataset so one popular tenant cannot monopolise the shared plane.
        ``None`` (default) leaves only the per-consumer bound.
    """

    address: str = "tensorsocket"
    buffer_size: int = 2
    rubberband_fraction: float = 0.02
    epochs: Optional[int] = 1
    flexible_batching: bool = False
    producer_batch_size: Optional[int] = None
    shuffle_slices: bool = False
    consumer_offsets: bool = False
    heartbeat_timeout: float = 10.0
    wait_for_consumers: bool = True
    share_device: str = "cpu"
    poll_interval: float = 0.005
    seed: int = 0
    pipeline_depth: int = 1
    pipeline_workers: Optional[int] = None
    cache_policy: str = "none"
    cache_bytes: Optional[int] = None
    max_inflight_batches: Optional[int] = None

    def __post_init__(self) -> None:
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be at least 1")
        if self.max_inflight_batches is not None and self.max_inflight_batches < 1:
            raise ValueError("max_inflight_batches must be at least 1 when given")
        if not (0.0 <= self.rubberband_fraction <= 1.0):
            raise ValueError("rubberband_fraction must be within [0, 1]")
        if self.epochs is not None and self.epochs < 1:
            raise ValueError("epochs must be at least 1 when given")
        if self.producer_batch_size is not None and self.producer_batch_size < 1:
            raise ValueError("producer_batch_size must be positive when given")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be at least 1")
        if self.pipeline_workers is not None and self.pipeline_workers < 0:
            raise ValueError("pipeline_workers must be non-negative when given")
        # Validates the policy name and the budget pairing early (a typo'd
        # policy must fail at construction, not mid-epoch).  Imported lazily:
        # repro.cache sits above repro.tensor, not above repro.core.
        from repro.cache import CachePolicy

        policy = CachePolicy.parse(self.cache_policy)
        if self.cache_bytes is not None and self.cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive when given")
        if policy in (CachePolicy.LRU, CachePolicy.MRU) and self.cache_bytes is None:
            raise ValueError(
                f"cache_policy={policy.value!r} requires cache_bytes (the byte budget)"
            )
        if policy in (CachePolicy.NONE, CachePolicy.ALL) and self.cache_bytes is not None:
            # Silently accepting a budget here would degrade "all" (retain
            # everything) into an evicting cache behind the caller's back.
            raise ValueError(
                f"cache_policy={policy.value!r} takes no cache_bytes; "
                f"use 'lru' or 'mru' for a budgeted cache"
            )

    @property
    def data_address(self) -> str:
        return f"{self.address}/data"

    @property
    def control_address(self) -> str:
        return f"{self.address}/control"


@dataclass
class ConsumerConfig:
    """Settings for a :class:`~repro.core.consumer.TensorConsumer`.

    ``interleave`` only matters when attaching to a *sharded* producer group
    (:mod:`repro.core.group`): ``"index"`` (default) merges the member
    streams deterministically by ``(epoch, batch index, shard)``; ``"any"``
    delivers batches in arrival order (still epoch-aligned across members).
    Plain consumers ignore it.
    """

    address: str = "tensorsocket"
    consumer_id: Optional[str] = None
    batch_size: Optional[int] = None
    buffer_size: int = 2
    heartbeat_interval: float = 1.0
    receive_timeout: float = 30.0
    max_epochs: Optional[int] = None
    interleave: str = "index"

    def __post_init__(self) -> None:
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be positive when given")
        if self.interleave not in ("index", "any"):
            raise ValueError(
                f"interleave must be 'index' or 'any', got {self.interleave!r}"
            )
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be at least 1")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.receive_timeout <= 0:
            raise ValueError("receive_timeout must be positive")
        if self.max_epochs is not None and self.max_epochs < 1:
            raise ValueError("max_epochs must be at least 1 when given")

    @property
    def data_address(self) -> str:
        return f"{self.address}/data"

    @property
    def control_address(self) -> str:
        return f"{self.address}/control"
