"""The TensorSocket consumer: the training process's view of the shared loader.

A consumer replaces the data loader inside a training script with a one-line
swap (paper Figure 3c)::

    consumer = TensorConsumer(hub=hub, pool=pool)
    for batch in consumer:
        ...  # training iteration on batch["inputs"], batch["targets"]

Internally the consumer registers with the producer (HELLO), receives pointer
payloads over the PUB/SUB data channel, rebuilds tensors zero-copy (step 4 in
Figure 4), buffers up to N pending batches, acknowledges each batch once the
training loop moves past it (step 6), emits heartbeats, and departs cleanly
with BYE.

Message reception rides the per-process :class:`~repro.messaging.reactor.
ConsumerReactor` rather than a private blocking receive loop: the reactor
fans the data channel out to this consumer's **mailbox** (a bounded queue)
and runs its heartbeat/registration-retry timer, so attaching K consumers
costs O(1) threads, not O(K).  The reactor thread does only eager signal
work (the registration REPLY, SHUTDOWN) — everything that affects epoch
accounting, admission, dedupe, and acknowledgement happens on the training
thread, in arrival order, exactly as the old pump did.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
import uuid
from typing import Dict, Iterator, Optional, Tuple

from repro.core.batch_buffer import BatchBuffer
from repro.core.config import ConsumerConfig
from repro.messaging import endpoint as endpoints
from repro.messaging.errors import DuplicateConsumerError, MessagingError, TimeoutError_
from repro.messaging.heartbeat import HeartbeatSender
from repro.messaging.message import Message, MessageKind
from repro.messaging.reactor import get_reactor, reactor_only
from repro.messaging.sockets import PushSocket
from repro.messaging.transport import InProcHub
from repro.obs import naming
from repro.obs import trace as obs_trace
from repro.obs.metrics import counter, histogram
from repro.tensor.payload import BatchPayload
from repro.tensor.shared_memory import SharedMemoryPool
from repro.tensor.tensor import Tensor

#: Registry instruments (process-wide; see repro.obs.metrics).  The ``stall.``
#: counters accumulate seconds and feed repro.obs.stall's attribution.
_BATCHES = counter("repro.consumer.batches")
_SAMPLES = counter("repro.consumer.samples")
_DUPLICATES = counter("repro.consumer.duplicates")
_OVERFLOWS = counter("repro.consumer.mailbox_overflows")
_WAIT_SECONDS = counter("repro.consumer.stall.wait_seconds")
_TRAIN_SECONDS = counter("repro.consumer.stall.train_seconds")
_ACK_SECONDS = counter("repro.consumer.stall.ack_seconds")
_LOOP_SECONDS = counter("repro.consumer.loop_seconds")
_LATENCY = histogram("repro.consumer.batch_latency_seconds")


class _ShutdownReceived(Exception):
    """Internal: the producer announced shutdown."""


#: Sentinels returned by the non-blocking :meth:`TensorConsumer._try_take`
#: step; the group merge drives members through it without feeder threads.
_WAIT = object()
_DONE = object()

#: Mailbox bound.  Flow control (the producer's outstanding-ack ledger) keeps
#: live consumers far below this; it only trips when a training thread has
#: wedged, in which case dropping beats unbounded growth.
_MAILBOX_LIMIT = 4096


class TensorConsumer:
    """An iterable over batches served by a :class:`TensorProducer`."""

    def __init__(
        self,
        address: Optional[str] = None,
        *,
        hub: Optional[InProcHub] = None,
        pool: Optional[SharedMemoryPool] = None,
        config: Optional[ConsumerConfig] = None,
    ) -> None:
        self.config = config or ConsumerConfig()
        if address is not None and address != self.config.address:
            self.config = dataclasses.replace(self.config, address=address)
        # URI addresses resolve hub and pool through the transport registry;
        # explicit hub=/pool= arguments override the endpoint's resources.
        self._endpoint: Optional[endpoints.Endpoint] = None
        if hub is None:
            if not endpoints.is_uri(self.config.address):
                raise MessagingError(
                    "TensorConsumer needs either an explicit hub= or a URI address "
                    f"(e.g. 'inproc://demo'); got address={self.config.address!r}"
                )
            self._endpoint = endpoints.connect(self.config.address)
            hub = self._endpoint.hub
            pool = pool or self._endpoint.pool
        self.consumer_id = self.config.consumer_id or f"consumer-{uuid.uuid4().hex[:8]}"
        self.pool = pool
        self.hub = hub
        #: Unique per consumer *instance*: lets the producer tell a HELLO retry
        #: from this consumer apart from another consumer reusing its id.
        self._token = uuid.uuid4().hex

        self._buffer = BatchBuffer(self.config.buffer_size)
        self._admitted_epoch: Optional[int] = None
        # Group sessions raise the effective start epoch above the admitted
        # one (iter_batches(min_epoch=...)); epochs below it are skipped, so
        # they must not count toward max_epochs either.
        self._min_epoch: Optional[int] = None
        self._epochs_ended = 0
        self._closed = False
        self._shutdown = False
        # Iteration stops only when the training thread *processes* the
        # SHUTDOWN in arrival order; the eager ``_shutdown`` flag above is a
        # signal for shutdown_received / wait_until_registered, and must not
        # cut off batches that arrived before the SHUTDOWN.
        self._shutdown_processed = False
        self._registered = False
        # Reactor-thread view of the registration handshake.  The admitted
        # epoch used for *filtering* stays trainer-side (``_admitted_epoch``,
        # set when the REPLY is processed in order); this eager copy only
        # feeds wait_until_registered so it need not drain the mailbox.
        self._reactor_admitted: Optional[int] = None
        self._registration_error: Optional[BaseException] = None
        self._registered_event = threading.Event()
        # Inbound messages, reactor -> training thread, in arrival order.
        self._mailbox: "queue.Queue[Message]" = queue.Queue(maxsize=_MAILBOX_LIMIT)
        self.mailbox_overflows = 0
        # Callbacks poked on every mailbox put (the group merge parks on one
        # condition across all members instead of one thread per member).
        self._wakeups: list = []
        # Delivery dedupe: a consumer that subscribed before its HELLO was
        # processed can receive an early-epoch batch twice — once on
        # ``broadcast`` and again via the rubberband replay on its personal
        # topic (same epoch, so the admitted-epoch filter passes both).  Keys
        # seen this epoch are remembered so the duplicate is acknowledged
        # (returning the producer's replay hold) but never trained on.
        self._delivered_keys: set = set()
        # Keys this consumer has acknowledged; decides how a duplicate is
        # handled (ack it to release the producer's re-send hold vs. drop it
        # silently while the original still owes the ack).
        self._acked_keys: set = set()
        # Batches consumed per epoch, for __len__ (batches in the last
        # *completed* epoch, the sized-loader contract).
        self._consumed_per_epoch: Dict[int, int] = {}
        self._last_completed_epoch: Optional[int] = None
        # Per-batch lifecycle traces keyed by (epoch, batch_index): the
        # producer-side stamps arrive in payload metadata; this consumer's
        # delivered/trained stamps are added here and the completed trace
        # rides back to the producer in the ACK body.  Touched only from the
        # training thread; entries are popped at acknowledgement time, so the
        # table is bounded by the buffer size.
        self._traces: Dict[Tuple[int, int], Dict[str, float]] = {}

        # Statistics surfaced by tests and experiments.
        self.batches_consumed = 0
        self.epochs_seen = 0
        self.samples_consumed = 0
        self.duplicates_dropped = 0

        self._reactor = get_reactor()
        self._subscription = None
        self._timer = None
        try:
            self._subscription = self._reactor.subscribe(
                hub,
                self.config.data_address,
                ("broadcast", f"consumer/{self.consumer_id}"),
                self._on_reactor_message,
            )
            self._push = PushSocket(hub, self.config.control_address, identity=self.consumer_id)
            self._heartbeat = HeartbeatSender(
                self._push, self.consumer_id, interval=self.config.heartbeat_interval
            )
            # Heartbeats and registration retries run from the reactor's
            # timer wheel — no per-consumer heartbeat thread.
            self._timer = self._reactor.every(
                self.config.heartbeat_interval, self._on_reactor_timer
            )
        except BaseException:
            # A socket failing mid-construction (e.g. the broker died after
            # the endpoint connected) must not leak the endpoint's client
            # connections, subscriptions, or attach pool.
            if self._timer is not None:
                self._timer.cancel()
            if self._subscription is not None:
                self._subscription.unsubscribe()
            if self._endpoint is not None:
                self._endpoint.release()
            raise

        self._register()

    # ------------------------------------------------------------------ registration
    def _register(self) -> None:
        """Announce this consumer to the producer.

        The producer may not be up yet (consumers can be launched first, the
        paper's always-available-loading scenario in reverse); in that case the
        registration is retried from the reactor's timer until it succeeds.
        """
        try:
            self._push.send(
                MessageKind.HELLO,
                body={
                    "consumer_id": self.consumer_id,
                    "token": self._token,
                    "batch_size": self.config.batch_size,
                    "buffer_size": self.config.buffer_size,
                },
            )
            self._heartbeat.send()
            self._registered = True
        except MessagingError:
            self._registered = False

    @property
    def admitted_epoch(self) -> Optional[int]:
        if self._admitted_epoch is not None:
            return self._admitted_epoch
        return self._reactor_admitted

    @property
    def is_admitted(self) -> bool:
        return self.admitted_epoch is not None

    @property
    def shutdown_received(self) -> bool:
        """Whether the producer has announced shutdown to this consumer."""
        return self._shutdown

    def wait_until_registered(self, timeout: float = 10.0) -> int:
        """Block until the producer's registration REPLY arrives.

        Returns the admitted epoch.  Group sessions use this to learn every
        member's admission decision *before* merging streams (so a consumer
        admitted mid-epoch by some members and next-epoch by others can start
        at the first epoch all members agree on).  Safe to call before
        iterating: while unadmitted, every BATCH message predates this
        consumer's admission and is filtered, not consumed.

        Waits on the reactor-delivered registration event — no polling
        receive loop; the reactor's timer keeps re-sending HELLO while the
        producer is not up yet.
        """
        deadline = time.monotonic() + timeout
        if not self._registered:
            self._register()
        while True:
            if self._registration_error is not None:
                raise self._registration_error
            if self._reactor_admitted is not None:
                return self._reactor_admitted
            if self._shutdown:
                raise MessagingError(
                    f"producer shut down before admitting consumer {self.consumer_id!r}"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError_(
                    f"consumer {self.consumer_id!r} received no registration reply "
                    f"within {timeout}s; is the producer running?"
                )
            self._registered_event.wait(remaining)

    # ------------------------------------------------------------------ reactor callbacks
    @reactor_only
    def _on_reactor_message(self, message: Message) -> None:
        """Reactor thread: eager signal extraction, then forward to the mailbox.

        Only registration/shutdown *signals* are acted on here (they unblock
        wait_until_registered without a trainer present).  The message itself
        always goes to the mailbox so the training thread replays everything
        in arrival order — epoch accounting and admission depend on it.
        """
        if self._closed:
            return
        if message.kind is MessageKind.REPLY:
            body = message.body or {}
            if body.get("consumer_id") == self.consumer_id:
                token = body.get("token")
                if token is None or token == self._token:
                    if body.get("error"):
                        if self._registration_error is None:
                            self._registration_error = DuplicateConsumerError(
                                body["error"]
                            )
                    else:
                        self._reactor_admitted = int(body.get("admitted_epoch", 0))
                    self._registered_event.set()
        elif message.kind is MessageKind.SHUTDOWN:
            self._shutdown = True
            self._registered_event.set()
        try:
            self._mailbox.put_nowait(message)
        except queue.Full:
            self.mailbox_overflows += 1
            _OVERFLOWS.inc()
            return
        for wakeup in list(self._wakeups):
            try:
                wakeup()
            except Exception:
                pass

    @reactor_only
    def _on_reactor_timer(self) -> None:
        """Reactor timer wheel: heartbeats and registration retries."""
        if self._closed or self._shutdown:
            return
        if not self._registered or self._reactor_admitted is None:
            # Not registered, or registered but unanswered — the HELLO (or
            # its REPLY) may have been lost; resend until admitted.  The
            # producer treats a repeat HELLO from the same token as idempotent.
            self._register()
            return
        try:
            self._heartbeat.maybe_send()
        except MessagingError:
            self._registered = False

    def _add_mailbox_listener(self, wakeup) -> None:
        self._wakeups.append(wakeup)

    def _remove_mailbox_listener(self, wakeup) -> None:
        # The reactor thread snapshots this list while group members add and
        # remove themselves from training threads; a membership test followed
        # by remove() is a TOCTOU window where two concurrent removals both
        # pass the test and the loser raises.  A single remove() is atomic
        # under the GIL, so catch the miss instead of testing first.
        try:
            self._wakeups.remove(wakeup)
        except ValueError:
            pass

    # ------------------------------------------------------------------ message handling
    def _handle_message(self, message: Message) -> Optional[BatchPayload]:
        """Process one message; returns a payload when it is a usable data batch."""
        if message.kind is MessageKind.REPLY:
            body = message.body or {}
            if body.get("consumer_id") == self.consumer_id:
                token = body.get("token")
                if token is not None and token != self._token:
                    # Addressed to a different instance that shares our id
                    # (e.g. the producer rejecting a duplicate registration).
                    return None
                if body.get("error"):
                    raise DuplicateConsumerError(body["error"])
                self._admitted_epoch = int(body.get("admitted_epoch", 0))
            return None
        if message.kind is MessageKind.SHUTDOWN:
            self._shutdown = True
            raise _ShutdownReceived()
        if message.kind is MessageKind.EPOCH_END:
            body = message.body or {}
            epoch = int(body.get("epoch", 0))
            floor = self._admitted_epoch
            if floor is not None and self._min_epoch is not None:
                # Epochs the group skipped (admitted before the merge's start
                # epoch) were never trained on; counting them toward
                # max_epochs would end this member's stream early and leave
                # later epochs served by a subset of shards.
                floor = max(floor, self._min_epoch)
            if floor is not None and epoch >= floor:
                self.epochs_seen += 1
                self._epochs_ended += 1
                if self._last_completed_epoch is None or epoch > self._last_completed_epoch:
                    self._last_completed_epoch = epoch
                # The dedupe window only needs to span one epoch: batch keys
                # are (epoch, index), so keys from closed epochs cannot recur.
                self._delivered_keys = {k for k in self._delivered_keys if k[0] > epoch}
                self._acked_keys = {k for k in self._acked_keys if k[0] > epoch}
                self._consumed_per_epoch = {
                    e: n for e, n in self._consumed_per_epoch.items() if e >= epoch
                }
            return None
        if message.kind is MessageKind.BATCH:
            payload: BatchPayload = message.body
            if self._admitted_epoch is None or payload.epoch < self._admitted_epoch:
                # Published before this consumer was admitted; not ours to use.
                return None
            key = payload.key()
            if key in self._delivered_keys:
                # Duplicate delivery (broadcast + rubberband replay of the
                # same batch): never hand it to training twice.  Acknowledge
                # it only when the original was already acknowledged — that
                # is exactly when the producer took a fresh hold for the
                # re-send.  While the original is still buffered it owes the
                # ledger its single ack; acking the duplicate now would clear
                # the outstanding count early, letting the producer publish
                # past this consumer's buffer capacity.
                self.duplicates_dropped += 1
                _DUPLICATES.inc()
                if key in self._acked_keys:
                    self._acknowledge(payload)
                return None
            self._delivered_keys.add(key)
            metadata = payload.metadata
            producer_trace = (
                metadata.get("trace") if isinstance(metadata, dict) else None
            )
            if isinstance(producer_trace, dict):
                # Copy before stamping: inproc payloads share one metadata
                # dict across every consumer in the process (and the window
                # cache), so the shared trace must stay consumer-agnostic.
                trace = dict(producer_trace)
                trace["delivered"] = time.monotonic()
                self._traces[key] = trace
            return payload
        return None

    def _ingest(self, message: Message) -> None:
        """Training thread: process one mailbox message into the buffer."""
        try:
            payload = self._handle_message(message)
        except _ShutdownReceived:
            self._shutdown_processed = True
            return
        if payload is not None:
            self._buffer.put(payload)

    # ------------------------------------------------------------------ acknowledgements
    def _acknowledge(self, payload: BatchPayload) -> None:
        started = time.monotonic()
        key = payload.key()
        self._acked_keys.add(key)
        body: Dict[str, object] = {
            "consumer_id": self.consumer_id,
            "epoch": payload.epoch,
            "batch_index": payload.batch_index,
        }
        trace = self._traces.pop(key, None)
        if trace is not None:
            # Batches dropped without training (duplicates, pre-group epochs,
            # shutdown drains) never got a trained stamp; close the span at
            # ack time so it still parses as a complete lifecycle.
            trace.setdefault("trained", started)
            trace["acked"] = time.monotonic()
            if "sampled" in trace:
                _LATENCY.observe(trace["acked"] - trace["sampled"])
            obs_trace.record_span(
                epoch=payload.epoch,
                batch_index=payload.batch_index,
                consumer_id=self.consumer_id,
                stages=trace,
                origin=obs_trace.origin(),
            )
            # The producer aggregates the full span on its side of the plane.
            body["trace"] = trace
        try:
            self._push.send(MessageKind.ACK, body=body)
        except MessagingError:
            # The producer is gone; there is nobody left to account the ack.
            pass
        _ACK_SECONDS.inc(time.monotonic() - started)

    # ------------------------------------------------------------------ iteration
    def _reached_epoch_limit(self) -> bool:
        return (
            self.config.max_epochs is not None
            and self._epochs_ended >= self.config.max_epochs
        )

    def _begin_iteration(self, min_epoch: Optional[int]) -> None:
        if self._closed:
            raise RuntimeError("consumer has been closed")
        if min_epoch is not None:
            self._min_epoch = min_epoch

    def _drop_buffered(self) -> None:
        """Acknowledge everything buffered so nothing stays pinned."""
        for leftover in self._buffer.clear():
            self._acknowledge(leftover)

    def _try_take(self):
        """One non-blocking consume step.

        Returns ``(payload, batch)`` when a batch is ready, ``_WAIT`` when
        nothing is available yet, or ``_DONE`` when the stream has ended
        (epoch limit or producer shutdown).  This is the engine under both
        :meth:`iter_batches` and the group merge — the merge drives many
        members through it from one thread.
        """
        while True:
            if self._shutdown_processed:
                self._drop_buffered()
                return _DONE
            while True:
                try:
                    message = self._mailbox.get_nowait()
                except queue.Empty:
                    break
                self._ingest(message)
                if self._shutdown_processed:
                    break
            if self._shutdown_processed:
                continue
            # Stop once the producer has closed max_epochs epochs and every
            # batch from those epochs has been consumed.  (The producer sends
            # EPOCH_END after the epoch's batches, and the reactor preserves
            # per-channel ordering into the mailbox, so this check is
            # race-free.)
            if (
                self._reached_epoch_limit()
                and self._buffer.is_empty
                and self._mailbox.qsize() == 0
            ):
                return _DONE
            payload = self._buffer.get()
            if payload is None:
                if self._reached_epoch_limit():
                    return _DONE
                return _WAIT
            start_epoch = max(self._admitted_epoch or 0, self._min_epoch or 0)
            if self._reached_epoch_limit() and payload.epoch >= start_epoch + (
                self.config.max_epochs or 0
            ):
                # A batch from an epoch beyond our limit: acknowledge and drop
                # it so the producer does not wait on us.
                self._acknowledge(payload)
                self._drop_buffered()
                return _DONE
            if self._min_epoch is not None and payload.epoch < self._min_epoch:
                # Admitted earlier than the group: this member's pre-group
                # epochs are not trained on, but their holds must be returned.
                self._acknowledge(payload)
                continue
            batch = payload.unpack(self.pool)
            self.batches_consumed += 1
            self.samples_consumed += payload.batch_size
            _BATCHES.inc()
            _SAMPLES.inc(payload.batch_size)
            self._consumed_per_epoch[payload.epoch] = (
                self._consumed_per_epoch.get(payload.epoch, 0) + 1
            )
            return (payload, batch)

    def __iter__(self) -> Iterator[Dict[str, Tensor]]:
        for _payload, batch in self.iter_batches():
            yield batch

    def iter_batches(
        self, *, min_epoch: Optional[int] = None
    ) -> Iterator[Tuple[BatchPayload, Dict[str, Tensor]]]:
        """Iterate ``(payload, batch)`` pairs — the batch plus its metadata.

        This is the annotated form of ``iter(consumer)``: group sessions use
        the payload's ``(epoch, batch_index)`` to merge several member
        streams deterministically.  Acknowledgement timing is identical —
        each batch is acked when the loop advances past it.

        ``min_epoch`` drops (and immediately acknowledges) batches from
        earlier epochs: a group consumer admitted mid-epoch by one member and
        next-epoch by another starts every member at the same epoch.  The
        skipped epochs do not count toward ``max_epochs``.
        """
        self._begin_iteration(min_epoch)
        # The receive deadline measures time *without a batch*: it is armed
        # when the stream runs dry and reset whenever a batch is delivered,
        # matching the old pump's per-blocking-call deadline.
        deadline: Optional[float] = None
        loop_started = time.monotonic()
        try:
            while True:
                step_started = time.monotonic()
                step = self._try_take()
                # Ingest/unpack time counts as waiting — anything that is not
                # the training step or the acknowledgement is time the
                # trainer spends without compute.
                _WAIT_SECONDS.inc(time.monotonic() - step_started)
                if step is _DONE:
                    break
                if step is _WAIT:
                    wait_started = time.monotonic()
                    try:
                        if deadline is None:
                            deadline = time.monotonic() + self.config.receive_timeout
                        if not self._registered:
                            self._register()
                        try:
                            self._heartbeat.maybe_send()
                        except MessagingError:
                            pass
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError_(
                                f"consumer {self.consumer_id!r} received no data for "
                                f"{self.config.receive_timeout}s; is the producer running?"
                            )
                        try:
                            message = self._mailbox.get(
                                timeout=min(self.config.heartbeat_interval, remaining)
                            )
                        except queue.Empty:
                            continue
                        self._ingest(message)
                        continue
                    finally:
                        _WAIT_SECONDS.inc(time.monotonic() - wait_started)
                deadline = None
                payload, batch = step
                train_started = time.monotonic()
                yield payload, batch
                trained_at = time.monotonic()
                _TRAIN_SECONDS.inc(trained_at - train_started)
                trace = self._traces.get(payload.key())
                if trace is not None:
                    trace["trained"] = trained_at
                # The training loop finished with the batch: acknowledge it so
                # the producer can release the shared memory.
                self._acknowledge(payload)
                self._heartbeat.maybe_send()
            # Acknowledge anything left in the buffer so nothing stays pinned.
            self._drop_buffered()
        finally:
            _LOOP_SECONDS.inc(time.monotonic() - loop_started)

    def __len__(self) -> int:
        """Batches consumed in the last *completed* epoch.

        This is the sized-loader contract (e.g. for
        :meth:`RubberbandPolicy.set_epoch_length`): a stable batches-per-epoch
        figure, not a cumulative counter that doubles every epoch.  Before the
        first epoch completes it falls back to the running count of the
        current epoch (best effort, matching the old behaviour for one-epoch
        runs).
        """
        if self._last_completed_epoch is not None:
            return self._consumed_per_epoch.get(self._last_completed_epoch, 0)
        return self.batches_consumed

    # ------------------------------------------------------------------ introspection
    def metrics(self) -> Dict[str, object]:
        """This consumer's state under the canonical registry namespace
        (``repro.consumer.*``).  Per-instance snapshot — the process-wide
        registry aggregates across every consumer in the process; this dict
        reports one consumer's own counters."""
        return {
            "repro.consumer.id": self.consumer_id,
            "repro.consumer.batches": self.batches_consumed,
            "repro.consumer.samples": self.samples_consumed,
            "repro.consumer.epochs": self.epochs_seen,
            "repro.consumer.duplicates": self.duplicates_dropped,
            "repro.consumer.buffered": len(self._buffer),
            "repro.consumer.admitted_epoch": self.admitted_epoch,
            "repro.consumer.mailbox_overflows": self.mailbox_overflows,
            # Attach-side effect of the producer's slab recycling: once
            # segment names repeat, by-name attaches hit this consumer's
            # cache instead of opening + mapping a segment per delivery.
            "repro.pool.attach_cache_hits": getattr(self.pool, "attach_cache_hits", 0),
            "repro.pool.attach_opens": getattr(self.pool, "attach_opens", 0),
        }

    def stats(self) -> Dict[str, object]:
        """Uniform statistics dict (the consumer half of
        :meth:`TensorProducer.stats`): stable keys instead of ad-hoc
        attribute spelunking.

        .. deprecated:: PR 9
           A thin legacy view over :meth:`metrics` (the key map lives in
           :mod:`repro.obs.naming`); new code should read :meth:`metrics`.
        """
        return naming.to_legacy(self.metrics(), naming.CONSUMER_KEYS, role="consumer")

    # ------------------------------------------------------------------ shutdown
    def close(self) -> None:
        """Deregister from the producer and close the sockets."""
        if self._closed:
            return
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
        self._heartbeat.stop()
        try:
            self._push.send(
                MessageKind.BYE,
                body={"consumer_id": self.consumer_id, "token": self._token},
            )
        except Exception:
            pass
        if self._subscription is not None:
            self._subscription.unsubscribe()
        self._push.close()
        if self._endpoint is not None:
            # Connect-side release: a no-op for inproc://, but tcp:// drops
            # this consumer's refcount on the shared broker connection.
            self._endpoint.release()

    def __enter__(self) -> "TensorConsumer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"TensorConsumer({self.consumer_id!r}, consumed={self.batches_consumed}, "
            f"buffer={len(self._buffer)})"
        )
