"""Rubberbanding: the join window at the start of an epoch.

Paper Section 3.2.5: "If a consumer joins before 2% of the dataset has been
iterated on in an epoch, the producer will halt all other consumers to let
that consumer synchronize."  Consumers that miss the window wait for the next
epoch boundary (Figure 6).

The policy is a pure decision object so the threaded producer, the simulated
producer and the unit tests all share it.  It answers two questions:

* *Admission*: given how far the current epoch has progressed, is a newly
  arrived consumer admitted immediately (and served the batches it missed), or
  parked until the next epoch?
* *Catch-up*: which batch indices does an admitted late joiner need to replay,
  and is the producer currently halting the other consumers while that
  happens?
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional


class JoinDecision(str, enum.Enum):
    """What happens to a consumer that asks to join."""

    IMMEDIATE = "immediate"          # epoch has not started producing yet
    CATCH_UP = "catch_up"            # inside the rubberband window: replay missed batches
    WAIT_FOR_NEXT_EPOCH = "wait"     # missed the window: admitted at the next epoch boundary

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class PendingCatchUp:
    """A consumer currently being caught up via rubberbanding."""

    consumer_id: str
    missed_batches: List[int]
    remaining: int


class RubberbandPolicy:
    """Decides admission for joining consumers and tracks catch-up state."""

    def __init__(self, window_fraction: float = 0.02, batches_per_epoch: Optional[int] = None) -> None:
        if not (0.0 <= window_fraction <= 1.0):
            raise ValueError("window_fraction must be within [0, 1]")
        self.window_fraction = float(window_fraction)
        self.batches_per_epoch = batches_per_epoch
        self._catch_ups: Dict[str, PendingCatchUp] = {}
        self.joins_immediate = 0
        self.joins_caught_up = 0
        self.joins_deferred = 0

    # -- window geometry -----------------------------------------------------------------
    def set_epoch_length(self, batches_per_epoch: int) -> None:
        if batches_per_epoch < 1:
            raise ValueError("batches_per_epoch must be positive")
        self.batches_per_epoch = int(batches_per_epoch)

    @property
    def window_batches(self) -> int:
        """Number of leading batches of an epoch that fall inside the join window."""
        if self.batches_per_epoch is None:
            raise ValueError("epoch length is not known yet")
        if self.window_fraction == 0.0:
            return 0
        return max(1, int(self.batches_per_epoch * self.window_fraction))

    def within_window(self, batches_already_published: int) -> bool:
        """True while strictly fewer than ``window_batches`` batches are out.

        The paper admits a joiner "before 2% of the dataset has been
        iterated on": once the full window has been published the join
        window is over, so the comparison is strict — ``<=`` would admit a
        joiner one batch late.
        """
        if self.window_fraction == 0.0:
            return False
        return batches_already_published < self.window_batches

    # -- admission ------------------------------------------------------------------------
    def decide(self, consumer_id: str, batches_already_published: int) -> JoinDecision:
        """Decide how a consumer joining mid-epoch is handled."""
        if batches_already_published <= 0:
            self.joins_immediate += 1
            return JoinDecision.IMMEDIATE
        if self.within_window(batches_already_published):
            self._catch_ups[consumer_id] = PendingCatchUp(
                consumer_id=consumer_id,
                missed_batches=list(range(batches_already_published)),
                remaining=batches_already_published,
            )
            self.joins_caught_up += 1
            return JoinDecision.CATCH_UP
        self.joins_deferred += 1
        return JoinDecision.WAIT_FOR_NEXT_EPOCH

    # -- catch-up tracking -------------------------------------------------------------------
    @property
    def halting(self) -> bool:
        """True while at least one consumer is still replaying missed batches."""
        return bool(self._catch_ups)

    def catch_up_for(self, consumer_id: str) -> Optional[PendingCatchUp]:
        return self._catch_ups.get(consumer_id)

    def record_replayed(self, consumer_id: str, count: int = 1) -> bool:
        """Mark replayed batches delivered; returns True when the consumer is caught up."""
        pending = self._catch_ups.get(consumer_id)
        if pending is None:
            return True
        pending.remaining = max(0, pending.remaining - count)
        if pending.remaining == 0:
            del self._catch_ups[consumer_id]
            return True
        return False

    def abandon(self, consumer_id: str) -> None:
        """Forget a catch-up (the consumer left before finishing it)."""
        self._catch_ups.pop(consumer_id, None)

    def reset_for_new_epoch(self) -> None:
        """Epoch boundary: every parked consumer becomes a normal participant."""
        self._catch_ups.clear()

    def __repr__(self) -> str:
        return (
            f"RubberbandPolicy(window={self.window_fraction:.0%}, "
            f"halting={self.halting}, catch_ups={len(self._catch_ups)})"
        )
