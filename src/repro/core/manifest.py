"""The one manifest schema every describe/catalog channel speaks.

Before the broker existed, :class:`~repro.core.session.SharedLoaderSession`
and :class:`~repro.core.group.ShardedLoaderSession` each hand-built the dict
their describe responder returned, and ``attach_address`` poked at raw keys.
With a third party (the broker's catalog channel) producing and consuming the
same shape, the schema becomes a real contract: one versioned dataclass,
built by every serving side and parsed by every attaching side.

``schema_version`` lets a newer attacher reject a manifest it cannot
interpret instead of silently mis-building a consumer; unknown keys from a
*newer* server are ignored, so the schema can grow additively without
breaking old attachers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Bumped when a field changes meaning (additive growth keeps the version).
MANIFEST_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SessionManifest:
    """How an address is shaped: what an attacher needs to build a consumer.

    ``kind`` is ``"session"`` for a plain single-producer session,
    ``"group"`` for a sharded producer group, and ``"dataset"`` for a
    broker-mounted dataset (either shape, plus broker bookkeeping fields).
    """

    address: str
    kind: str = "session"
    shards: int = 1
    shard_mode: Optional[str] = None
    member_addresses: Tuple[str, ...] = ()
    #: Broker fields: the dataset's catalog name and lifecycle state
    #: (``mounted`` / ``registered`` / ``evicted``).
    dataset: Optional[str] = None
    state: Optional[str] = None
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"manifest shards must be >= 1, got {self.shards}")
        if self.kind not in ("session", "group", "dataset"):
            raise ValueError(f"unknown manifest kind {self.kind!r}")

    @property
    def sharded(self) -> bool:
        return self.shards > 1

    def members(self) -> Tuple[str, ...]:
        """Member channel prefixes; derived from the address when not listed."""
        if self.member_addresses:
            return self.member_addresses
        if self.shards == 1:
            return (self.address,)
        return tuple(f"{self.address}/shard{rank}" for rank in range(self.shards))

    def to_dict(self) -> Dict[str, object]:
        body = dataclasses.asdict(self)
        body["member_addresses"] = list(self.member_addresses)
        return body

    @classmethod
    def from_dict(cls, body: Dict[str, object]) -> "SessionManifest":
        """Parse a wire manifest; raises ``ValueError`` on a newer schema.

        Unknown keys are dropped (additive growth); missing optional keys take
        their defaults, so a pre-schema ``{"shards": 1, "address": ...}`` reply
        still parses.
        """
        if not isinstance(body, dict):
            raise ValueError(f"manifest must be a dict, got {type(body).__name__}")
        version = int(body.get("schema_version", 1))
        if version > MANIFEST_SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema_version {version} is newer than supported "
                f"({MANIFEST_SCHEMA_VERSION}); upgrade this client"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        kwargs = {key: value for key, value in body.items() if key in known}
        kwargs["address"] = str(kwargs.get("address", ""))
        kwargs["shards"] = int(kwargs.get("shards", 1))
        kwargs["member_addresses"] = tuple(kwargs.get("member_addresses", ()) or ())
        kwargs["schema_version"] = version
        return cls(**kwargs)
