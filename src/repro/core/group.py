"""Sharded producer groups: one dataset served by N cooperating producers.

A single :class:`~repro.core.producer.TensorProducer` tops out at one
process's load/stage bandwidth.  This module scales past that the way
CoorDL's partitioned cache and DGL's ``DistDataLoader`` do: partition the
sample space across members, keep a single logical stream at the consumer.

Serving side — :class:`ShardedLoaderSession` (``repro.serve(loader, address,
shards=N)``):

* binds the *logical* address once through the transport registry (one hub,
  one shared-memory pool for the whole group);
* splits the loader into N disjoint shard loaders
  (:meth:`~repro.data.dataloader.DataLoader.shard`, backed by
  :class:`~repro.data.samplers.ShardSampler`) — every epoch each member pins
  its equal-seeded sampler to the same epoch, so the shards cover the
  dataset exactly once per epoch;
* runs one member producer per shard (each with its own
  :class:`~repro.core.epoch_runner.EpochRunner`, ack ledger and optional
  epoch cache over *its shard only*) on channels derived from the logical
  address (``{address}/shard{k}``);
* answers ``{address}/group`` describe requests so consumers in other OS
  processes discover the membership with nothing but the address string.

Attaching side — :class:`GroupConsumer` (what ``repro.attach(address)``
returns for a sharded address): one
:class:`~repro.core.consumer.TensorConsumer` per member, merged into a
single batch stream.  ``interleave="index"`` (default) delivers globally
in-order by ``(epoch, batch index, shard)``; ``interleave="any"`` delivers in
arrival order.  Both modes enforce an **epoch barrier**: no batch of epoch
``e+1`` is delivered until every member finished delivering epoch ``e``, and
flow control (per-member acks against per-member ledgers) naturally bounds
how far fast members can run ahead.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import uuid
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.config import ConsumerConfig, ProducerConfig
from repro.core.consumer import _DONE, _WAIT, TensorConsumer
from repro.core.manifest import SessionManifest
from repro.core.producer import TensorProducer
from repro.core.session import DescribeService, register_session, unregister_session
from repro.messaging import endpoint as endpoints
from repro.messaging.errors import MessagingError, TimeoutError_
from repro.obs import naming
from repro.tensor.tensor import Tensor

__all__ = [
    "GroupConsumer",
    "ShardedLoaderSession",
    "attach_address",
    "catalog_resolve",
    "describe_address",
    "member_address",
]

#: How long a remote attach waits for a describe reply before assuming the
#: address is served by a plain (single-producer, possibly pre-describe)
#: endpoint.  In-process attaches never wait: they hit the session directory.
GROUP_DISCOVERY_TIMEOUT = 2.0


def member_address(address: str, shard_index: int) -> str:
    """The channel prefix of one group member behind a logical address."""
    return f"{address}/shard{shard_index}"


def _build_member_consumers(
    *, shards: int, config: ConsumerConfig, hub, pool, address: str
) -> List[TensorConsumer]:
    """One consumer per member, all under one consumer id; unwind on failure.

    Shared by in-process attach (:meth:`ShardedLoaderSession.consumer`) and
    cross-process attach (:func:`attach_address`) so the two paths cannot
    drift in how member configs are derived or partially-built consumers are
    cleaned up.
    """
    consumer_id = config.consumer_id or f"consumer-{uuid.uuid4().hex[:8]}"
    members: List[TensorConsumer] = []
    try:
        for rank in range(shards):
            member_config = dataclasses.replace(
                config, address=member_address(address, rank), consumer_id=consumer_id
            )
            members.append(TensorConsumer(hub=hub, pool=pool, config=member_config))
    except BaseException:
        for member in members:
            try:
                member.close()
            except Exception:
                pass
        raise
    return members


def describe_address(hub, address: str, timeout: float = GROUP_DISCOVERY_TIMEOUT):
    """Ask the serving side how ``address`` is shaped (shards, members).

    Returns the manifest dict, or ``None`` when nothing answers — a plain
    producer without a session, or a pre-describe server.  On ``inproc://``
    an unserved describe channel fails fast (the push raises); over a TCP
    broker it costs the full ``timeout``.
    """
    from repro.messaging.sockets import ReqSocket

    try:
        req = ReqSocket(hub, f"{address}/group")
    except Exception:
        return None
    try:
        manifest = req.request({"op": "describe"}, timeout=timeout)
        return manifest if isinstance(manifest, dict) else None
    except MessagingError:
        return None
    finally:
        req.close()


def catalog_resolve(
    hub,
    base_address: str,
    dataset: str,
    *,
    consumer_id: Optional[str] = None,
    timeout: float = GROUP_DISCOVERY_TIMEOUT,
):
    """Resolve ``dataset`` through a broker's ``{base_address}/catalog`` channel.

    Sends a ``subscribe`` request — which also marks the dataset active for
    idle-eviction purposes and spins up lazily registered datasets — and
    returns the manifest dict, or ``None`` when no catalog answers (the
    address is not served by a :class:`~repro.broker.DatasetBroker`).
    """
    from repro.messaging.sockets import ReqSocket

    try:
        req = ReqSocket(hub, f"{base_address}/catalog")
    except Exception:
        return None
    try:
        reply = req.request(
            {"op": "subscribe", "dataset": dataset, "consumer_id": consumer_id},
            timeout=timeout,
        )
    except MessagingError:
        return None
    finally:
        req.close()
    if not isinstance(reply, dict) or not reply.get("ok"):
        return None
    manifest = reply.get("manifest")
    return manifest if isinstance(manifest, dict) else None


class GroupConsumer:
    """A single logical batch stream merged from N member consumers.

    Iterating yields plain batch dicts, exactly like a
    :class:`~repro.core.consumer.TensorConsumer` — training code cannot tell
    a sharded address from a plain one.  Internally each member stream is
    consumed through :meth:`TensorConsumer.iter_batches`, so acknowledgement
    timing (ack after the training loop moves past a batch) and therefore
    flow control are identical per member.

    Admission is synchronised before the first batch: every member reports
    its admitted epoch and the merge starts at the latest one, acknowledging
    (not training on) any earlier batches a faster member already granted —
    a group never trains on a partial epoch.
    """

    def __init__(
        self,
        members: List[TensorConsumer],
        *,
        interleave: str = "index",
        address: Optional[str] = None,
        endpoint: Optional["endpoints.Endpoint"] = None,
    ) -> None:
        if not members:
            raise ValueError("a group consumer needs at least one member")
        if interleave not in ("index", "any"):
            raise ValueError(f"interleave must be 'index' or 'any', got {interleave!r}")
        self.members = list(members)
        self.interleave = interleave
        self.address = address
        self.consumer_id = members[0].consumer_id
        self._endpoint = endpoint
        self._closed = False

    # ------------------------------------------------------------------ iteration
    def _sync_admission(self) -> int:
        """Wait for every member's registration; start at the latest epoch.

        A member whose producer already shut down (stopped before this
        consumer was admitted — group churn) is tolerated: its stream simply
        ends immediately and the merge proceeds with the survivors.
        """
        admitted = []
        for member in self.members:
            try:
                admitted.append(
                    member.wait_until_registered(timeout=member.config.receive_timeout)
                )
            except MessagingError:
                if not member.shutdown_received:
                    raise
        return max(admitted, default=0)

    def __iter__(self) -> Iterator[Dict[str, Tensor]]:
        if self._closed:
            raise RuntimeError("group consumer has been closed")
        min_epoch = self._sync_admission()
        if self.interleave == "any":
            return self._iter_any(min_epoch)
        return self._iter_in_order(min_epoch)

    def _iter_in_order(self, min_epoch: int) -> Iterator[Dict[str, Tensor]]:
        """K-way merge on ``(epoch, batch_index, shard)``.

        One head batch is held per member; refilling a member's head is what
        acknowledges the batch previously taken from it, so at most one
        delivered-but-unacked batch per member rides in the merge (within
        every member's buffer budget).  Because *all* heads are refilled
        before a winner is picked, a member whose next batch belongs to the
        next epoch simply waits unchosen — the epoch barrier — and a member
        that ends (producer stopped, shard exhausted) drops out of the merge
        while the others keep serving.
        """
        iters = [member.iter_batches(min_epoch=min_epoch) for member in self.members]
        heads: List[Optional[Tuple]] = [None] * len(iters)
        finished = [False] * len(iters)
        while True:
            for rank, member_iter in enumerate(iters):
                if heads[rank] is None and not finished[rank]:
                    try:
                        heads[rank] = next(member_iter)
                    except StopIteration:
                        finished[rank] = True
            candidates = [
                (pair[0].epoch, pair[0].batch_index, rank)
                for rank, pair in enumerate(heads)
                if pair is not None
            ]
            if not candidates:
                return
            _, _, rank = min(candidates)
            payload, batch = heads[rank]
            heads[rank] = None
            yield batch

    def _iter_any(self, min_epoch: int) -> Iterator[Dict[str, Tensor]]:
        """Arrival-order merge with an epoch barrier — and no feeder threads.

        Every member's reactor mailbox pokes one shared condition variable;
        this loop drives all members through their non-blocking
        ``_try_take()`` step from the calling thread.  At most one taken,
        not-yet-delivered head rides per member — the batch is acknowledged
        right after the training loop moves past it, preserving
        ack-after-training and each member's flow-control budget.  A head
        from a future epoch parks its member; only when every live member's
        head has crossed the boundary does the epoch advance.

        Only a *cleanly ended* member stream (producer shutdown — group
        churn) is survivable; a member that starves re-raises the same
        receive timeout its own iteration would have, exactly like the
        in-order merge — swallowing it would silently drop a whole shard
        from training.
        """
        wake = threading.Condition()
        # A counter, not an event: a wake-up landing between a fruitless poll
        # round and the wait() below must not be lost.
        state = {"events": 0}

        def on_delivery() -> None:
            with wake:
                state["events"] += 1
                wake.notify_all()

        members = list(self.members)
        for member in members:
            member._begin_iteration(min_epoch)
            member._add_mailbox_listener(on_delivery)

        heads: Dict[int, Tuple] = {}  # rank -> (payload, batch) taken, undelivered
        done: set = set()
        waiting_since: Dict[int, float] = {}  # rank -> start of batch-less stretch
        current_epoch = min_epoch
        try:
            while True:
                with wake:
                    events_before = state["events"]
                progressed = False
                for rank, member in enumerate(members):
                    if rank in done or rank in heads:
                        continue
                    step = member._try_take()
                    if step is _DONE:
                        done.add(rank)
                        waiting_since.pop(rank, None)
                        progressed = True
                    elif step is _WAIT:
                        waiting_since.setdefault(rank, time.monotonic())
                    else:
                        heads[rank] = step
                        waiting_since.pop(rank, None)
                        progressed = True
                ready = [
                    rank for rank, (payload, _batch) in heads.items()
                    if payload.epoch <= current_epoch
                ]
                if ready:
                    for rank in ready:
                        payload, batch = heads.pop(rank)
                        yield batch
                        # The training loop moved past the batch: ack it so
                        # the member's producer can release the hold.
                        members[rank]._acknowledge(payload)
                    continue
                if len(done) == len(members) and not heads:
                    return
                if len(heads) == len(members) - len(done) and heads:
                    # Every live member's head is beyond the barrier: advance.
                    current_epoch = min(
                        payload.epoch for payload, _batch in heads.values()
                    )
                    continue
                if progressed:
                    continue
                # Nothing moved: park until a mailbox delivery (or a member's
                # receive timeout) — the per-member deadline mirrors what its
                # own iter_batches would raise.
                now = time.monotonic()
                wait_timeout = 0.2
                for rank, since in waiting_since.items():
                    member = members[rank]
                    remaining = since + member.config.receive_timeout - now
                    if remaining <= 0:
                        raise TimeoutError_(
                            f"consumer {member.consumer_id!r} received no data for "
                            f"{member.config.receive_timeout}s; is the producer "
                            f"running?"
                        )
                    wait_timeout = min(wait_timeout, remaining)
                with wake:
                    if state["events"] == events_before:
                        wake.wait(timeout=wait_timeout)
        finally:
            for rank, (payload, _batch) in heads.items():
                try:
                    members[rank]._acknowledge(payload)
                except Exception:
                    pass
            for member in members:
                member._remove_mailbox_listener(on_delivery)

    # ------------------------------------------------------------------ introspection
    @property
    def batches_consumed(self) -> int:
        return sum(member.batches_consumed for member in self.members)

    @property
    def samples_consumed(self) -> int:
        return sum(member.samples_consumed for member in self.members)

    @property
    def duplicates_dropped(self) -> int:
        return sum(member.duplicates_dropped for member in self.members)

    def __len__(self) -> int:
        """Batches per completed epoch, summed over the member shards."""
        return sum(len(member) for member in self.members)

    def metrics(self) -> Dict[str, object]:
        """Aggregated counters under the canonical ``repro.*`` namespace."""
        return {
            "repro.consumer.id": self.consumer_id,
            "repro.group.interleave": self.interleave,
            "repro.group.shards": len(self.members),
            "repro.consumer.batches": self.batches_consumed,
            "repro.consumer.samples": self.samples_consumed,
            "repro.consumer.duplicates": self.duplicates_dropped,
        }

    def stats(self) -> Dict[str, object]:
        """Aggregated consumer stats plus one row per member shard.

        Deprecated view: a projection of :meth:`metrics` onto the historical
        key names (plus the per-member legacy rows).
        """
        legacy = naming.to_legacy(
            self.metrics(), naming.GROUP_CONSUMER_KEYS, role="group-consumer"
        )
        legacy["members"] = [member.stats() for member in self.members]
        return legacy

    # ------------------------------------------------------------------ shutdown
    def close(self) -> None:
        """Close every member consumer and release the attach endpoint."""
        if self._closed:
            return
        self._closed = True
        for member in self.members:
            try:
                member.close()
            except Exception:
                pass
        if self._endpoint is not None:
            self._endpoint.release()

    def __enter__(self) -> "GroupConsumer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"GroupConsumer({self.consumer_id!r}, shards={len(self.members)}, "
            f"interleave={self.interleave!r}, consumed={self.batches_consumed})"
        )


class ShardedLoaderSession:
    """Serve one dataset from N member producers behind a single address.

    The session binds the logical address once (one hub + one shared-memory
    pool for the whole group), builds one shard loader and one member
    producer per shard, and runs each member's producer loop on its own
    thread.  Members publish on channels derived from the logical address
    (``{address}/shard{k}``), so on ``tcp://`` a single broker carries the
    whole group and remote consumers attach to all members over one
    connection set.

    Directory- and describe-registered exactly like a
    :class:`~repro.core.session.SharedLoaderSession`, so ``repro.attach``
    transparently returns a :class:`GroupConsumer` for sharded addresses.
    """

    def __init__(
        self,
        data_loader,
        *,
        address: str,
        shards: int,
        producer_config: Optional[ProducerConfig] = None,
        shard_mode: str = "strided",
        hub=None,
        pool=None,
        embedded: bool = False,
        dataset: Optional[str] = None,
    ) -> None:
        if shards < 2:
            raise ValueError(
                "a sharded session needs shards >= 2; use SharedLoaderSession "
                "(repro.serve without shards=) for a single producer"
            )
        if not hasattr(data_loader, "shard"):
            raise TypeError(
                f"{type(data_loader).__name__} cannot be sharded: it has no .shard() "
                f"(wrap the dataset in repro.data.DataLoader to serve it sharded)"
            )
        if embedded and (hub is None or pool is None):
            raise ValueError(
                "an embedded sharded session rides a shared transport: pass "
                "both hub= and pool= (the broker owns the bind)"
            )
        config = producer_config or ProducerConfig()
        self.shards = int(shards)
        self.shard_mode = shard_mode
        self.dataset = dataset
        self._embedded = embedded
        if embedded:
            # The broker bound the base address; member channels hang off the
            # mount path, so no further endpoint registration is needed.
            self._endpoint = None
            self.address = address
            self.hub = hub
            self.pool = pool
        else:
            self._endpoint = endpoints.bind(address)
            self.address = self._endpoint.address
            self.hub = self._endpoint.hub
            self.pool = self._endpoint.pool
        self.members: List[TensorProducer] = []
        self._describe: Optional[DescribeService] = None
        self._metrics_service = None
        try:
            for rank in range(self.shards):
                shard_loader = data_loader.shard(rank, self.shards, mode=shard_mode)
                try:
                    shard_batches = len(shard_loader)
                except TypeError:
                    shard_batches = None  # unsized loaders cannot be validated
                if shard_batches == 0:
                    # An empty shard's member would burn through its epoch
                    # budget instantly and vanish, wedging later attaches on
                    # a member that never admits them.
                    raise ValueError(
                        f"shard {rank} of {self.shards} is empty "
                        f"(mode={shard_mode!r}); serve with fewer shards"
                        + (" or shard_mode='strided'" if shard_mode != "strided" else "")
                    )
                member_overrides = {"address": member_address(self.address, rank)}
                if config.cache_bytes is not None:
                    # The configured budget is the GROUP total: each member
                    # caches only its shard, so it gets an equal slice —
                    # otherwise a sharded session would silently pin up to
                    # shards x cache_bytes of shared memory.
                    member_overrides["cache_bytes"] = max(
                        1, config.cache_bytes // self.shards
                    )
                member_config = dataclasses.replace(config, **member_overrides)
                self.members.append(
                    TensorProducer(
                        shard_loader, hub=self.hub, pool=self.pool, config=member_config
                    )
                )
            self._describe = DescribeService(
                self.hub, self.address, self.manifest().to_dict()
            )
            # The observability channel for the whole group on
            # {address}/metrics (see repro.obs.service).
            try:
                from repro.obs.service import MetricsService

                self._metrics_service = MetricsService(
                    self.hub, self.address, stats_fn=self.stats
                )
            except Exception:
                self._metrics_service = None
        except BaseException:
            for member in self.members:
                try:
                    member.join(timeout=0.1)
                except Exception:
                    pass
            if self._endpoint is not None:
                self._endpoint.release()
            raise
        # Soft epoch tracking: members report boundary crossings (each on
        # its own producer thread); surfaced in stats() so drift between
        # shards is observable.
        self._progress_lock = threading.Lock()
        self._epoch_progress: Dict[int, int] = {}  #: guarded by _progress_lock
        for rank, member in enumerate(self.members):
            member.on_epoch_end = self._note_epoch_end(rank)
        self._threads: List[threading.Thread] = []
        self._consumers: List[GroupConsumer] = []
        self._member_errors: List[BaseException] = []
        self._shutdown = False
        # Read by SharedLoaderSession.at(): a fork()ed child must not reuse
        # this process's member threads through the inherited directory.
        self._owner_pid = os.getpid()
        register_session(self.address, self)

    def _note_epoch_end(self, rank: int):
        def note(epoch: int) -> None:
            with self._progress_lock:
                self._epoch_progress[rank] = epoch

        return note

    def epoch_progress(self) -> Dict[int, int]:
        """Per-rank last-completed-epoch snapshot."""
        with self._progress_lock:
            return dict(self._epoch_progress)

    def manifest(self) -> SessionManifest:
        """What remote attachers need to construct a :class:`GroupConsumer`."""
        return SessionManifest(
            address=self.address,
            kind="dataset" if self.dataset is not None else "group",
            shards=self.shards,
            shard_mode=self.shard_mode,
            member_addresses=tuple(
                member_address(self.address, rank) for rank in range(self.shards)
            ),
            dataset=self.dataset,
        )

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "ShardedLoaderSession":
        """Start every member's producer loop on its own daemon thread."""
        if self._shutdown:
            raise RuntimeError(
                f"session at {self.address!r} has been shut down; "
                f"create a new session to serve again"
            )
        if self._threads:
            raise RuntimeError("session already started")
        self._threads = [
            threading.Thread(
                target=self._run_member,
                args=(member,),
                daemon=True,
                name=f"repro-producer-shard{rank}",
            )
            for rank, member in enumerate(self.members)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def _run_member(self, member: TensorProducer) -> None:
        try:
            for _ in member:
                pass
            member.join()
        except BaseException as exc:  # surfaced via raise_producer_error
            self._member_errors.append(exc)

    def consumer(self, config: Optional[ConsumerConfig] = None) -> GroupConsumer:
        """A :class:`GroupConsumer` attached to every member of this session."""
        if self._shutdown:
            raise RuntimeError(
                f"session at {self.address!r} has been shut down; its producers are "
                f"stopped and cannot serve new consumers"
            )
        config = config or ConsumerConfig()
        members = _build_member_consumers(
            shards=self.shards,
            config=config,
            hub=self.hub,
            pool=self.pool,
            address=self.address,
        )
        group = GroupConsumer(members, interleave=config.interleave, address=self.address)
        self._consumers.append(group)
        return group

    # Alias matching the module-level repro.attach() vocabulary.
    attach = consumer

    # ------------------------------------------------------------------ introspection
    def metrics(self) -> Dict[str, object]:
        """Group aggregate under the canonical ``repro.*`` namespace.

        Counter fields are summed across members; the pool buckets
        (``repro.pool.*``) are read once from the shared pool — members share
        it, so summing would double-count.
        """
        member_rows = [member.metrics() for member in self.members]
        cache_totals: Dict[str, int] = {}
        for row in member_rows:
            for key, value in row["repro.cache"].items():
                if isinstance(value, (int, float)):
                    cache_totals[key] = cache_totals.get(key, 0) + value
        return {
            "repro.group.shards": self.shards,
            "repro.producer.epoch": min(
                (row["repro.producer.epoch"] for row in member_rows), default=0
            ),
            "repro.producer.epochs_completed": min(
                (row["repro.producer.epochs_completed"] for row in member_rows),
                default=0,
            ),
            "repro.producer.batches_loaded": sum(
                row["repro.producer.batches_loaded"] for row in member_rows
            ),
            "repro.producer.publishes": sum(
                row["repro.producer.publishes"] for row in member_rows
            ),
            "repro.producer.pending_batches": sum(
                row["repro.producer.pending_batches"] for row in member_rows
            ),
            "repro.producer.consumers": max(
                (row["repro.producer.consumers"] for row in member_rows), default=0
            ),
            "repro.pool.bytes_in_flight": self.pool.bytes_in_flight,
            "repro.pool.cached_bytes": self.pool.cached_bytes,
            "repro.pool.peak_bytes": self.pool.peak_bytes,
            "repro.pool.free_bytes": self.pool.free_bytes,
            "repro.pool.segment_reuse_hits": self.pool.segment_reuse_hits,
            "repro.pool.segment_reuse_misses": self.pool.segment_reuse_misses,
            "repro.pool.mmap_total": self.pool.mmap_total,
            "repro.cache": cache_totals,
        }

    def stats(self) -> Dict[str, object]:
        """One snapshot of the group: aggregate + one row per member shard.

        Deprecated view: the aggregate row is a projection of :meth:`metrics`
        onto the historical key names.
        """
        member_rows = []
        for rank, member in enumerate(self.members):
            row = member.stats()
            row["shard"] = rank
            row["address"] = member.address
            member_rows.append(row)
        aggregate = naming.to_legacy(
            self.metrics(), naming.PRODUCER_KEYS, role="producer-group"
        )
        aggregate["shards"] = self.shards
        aggregate["epoch_progress"] = self.epoch_progress()
        return {
            "address": self.address,
            "running": self.is_running,
            "shards": self.shards,
            "producer": aggregate,
            "members": member_rows,
            "consumers": [consumer.stats() for consumer in self._consumers],
        }

    @property
    def producer(self) -> TensorProducer:
        """The first member (compatibility handle for single-producer code).

        Prefer :attr:`members` / :meth:`stats` for group-aware callers.
        """
        return self.members[0]

    def raise_producer_error(self) -> None:
        """Re-raise the first exception any member's producer thread died with."""
        if self._member_errors:
            raise self._member_errors[0]

    @property
    def is_running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    # ------------------------------------------------------------------ shutdown
    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every member, close consumers and release shared memory.

        Exception-safe like the single-producer session: every teardown step
        runs, the first consumer-close error (and any member-thread error) is
        re-raised at the end.
        """
        if self._shutdown:
            return
        self._shutdown = True
        close_error: Optional[BaseException] = None
        try:
            for member in self.members:
                member.stop()
            for consumer in self._consumers:
                try:
                    consumer.close()
                except BaseException as exc:
                    if close_error is None:
                        close_error = exc
            for thread in self._threads:
                thread.join(timeout=timeout)
            if not self._threads:
                # Never started: run each member's drain path directly so
                # window/cache holds are returned before the pool goes away.
                for member in self.members:
                    try:
                        member.join(timeout=1.0)
                    except Exception:
                        pass
        finally:
            unregister_session(self.address, self)
            if self._describe is not None:
                self._describe.stop()
            if self._metrics_service is not None:
                self._metrics_service.stop()
            try:
                if not self._embedded:
                    # Embedded groups share the broker's pool: their bytes
                    # drained through the member joins above.
                    self.pool.shutdown()
            finally:
                if self._endpoint is not None:
                    self._endpoint.release()
        self.raise_producer_error()
        if close_error is not None:
            raise close_error

    def __enter__(self) -> "ShardedLoaderSession":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "shutdown" if self._shutdown else ("running" if self.is_running else "idle")
        return (
            f"ShardedLoaderSession(address={self.address!r}, shards={self.shards}, "
            f"state={state}, consumers={len(self._consumers)})"
        )


def attach_address(address: str, config: ConsumerConfig):
    """Attach to ``address`` without an in-process session (the remote path).

    Resolves the address through the transport registry, asks the serving
    side how it is shaped, and returns a :class:`GroupConsumer` for sharded
    addresses or a plain :class:`~repro.core.consumer.TensorConsumer`
    otherwise (including when nothing answers any probe — a bare producer
    served by address).  An address carrying a dataset path
    (``tcp://host:port/imagenet``) is resolved through the broker's catalog
    channel first — which also lazily mounts registered-but-unmounted
    datasets — falling back to the mount's own describe responder.
    """
    endpoint = endpoints.connect(address)
    base, dataset = endpoints.split_dataset_address(address)
    manifest = None
    if dataset is not None:
        try:
            manifest = catalog_resolve(
                endpoint.hub, base, dataset, consumer_id=config.consumer_id
            )
        except Exception:
            manifest = None
    if manifest is None:
        try:
            manifest = describe_address(endpoint.hub, address)
        except Exception:
            manifest = None
    if manifest is not None:
        try:
            manifest = SessionManifest.from_dict(manifest)
        except ValueError:
            manifest = None
    shards = manifest.shards if manifest else 1
    if shards <= 1:
        # Reuse the live connection instead of tearing it down and letting
        # the consumer redial (for tcp:// that is a second broker handshake
        # plus a second attach-by-name pool).  The consumer adopts the
        # endpoint and releases it in close().
        try:
            consumer = TensorConsumer(
                hub=endpoint.hub,
                pool=endpoint.pool,
                config=dataclasses.replace(config, address=address),
            )
        except BaseException:
            endpoint.release()
            raise
        consumer._endpoint = endpoint
        return consumer
    try:
        members = _build_member_consumers(
            shards=shards,
            config=config,
            hub=endpoint.hub,
            pool=endpoint.pool,
            address=address,
        )
    except BaseException:
        endpoint.release()
        raise
    return GroupConsumer(
        members, interleave=config.interleave, address=address, endpoint=endpoint
    )
