"""The TensorSocket producer: one data-loading pipeline serving many trainers.

The producer is the *connection and flow-control shell* around an
:class:`~repro.core.epoch_runner.EpochRunner`.  The runner owns the nested
loader, the staging pipeline, flexible batching and the epoch cache; the
producer implements the paper's connection mechanisms — consumer registration
and heartbeats, flow control through the consumer batch buffer, rubberbanding
for late joiners, and the acknowledgement ledger that releases shared memory
once every consumer has acknowledged a batch (Figure 4, steps 3 and 6).

It is exposed as an iterator over the nested loader, exactly like the paper's
``producer.py`` example::

    producer = TensorProducer(loader, hub=hub, config=ProducerConfig(epochs=2))
    for _ in producer:      # drives loading, publishing and acknowledgements
        pass
    producer.join()         # drain acks, announce shutdown

Sharded producer groups (:mod:`repro.core.group`) instantiate several
producers — each with its own runner over one shard of the dataset — behind a
single logical address; nothing in this class is shard-aware.
"""

from __future__ import annotations

import dataclasses
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.cache import BatchCache, CachePolicy, CacheStats
from repro.core.ack_ledger import AckLedger
from repro.core.config import ProducerConfig
from repro.core.epoch_runner import EpochRunner, SkipEpoch
from repro.core.rubberband import JoinDecision, RubberbandPolicy
from repro.messaging import endpoint as endpoints
from repro.messaging.heartbeat import HeartbeatMonitor
from repro.messaging.message import Message, MessageKind
from repro.messaging.sockets import PubSocket, PullSocket
from repro.messaging.transport import InProcHub
from repro.obs import naming
from repro.obs import trace as obs_trace
from repro.obs.metrics import counter, histogram
from repro.tensor.payload import BatchPayload
from repro.tensor.shared_memory import SharedMemoryPool

#: Registry instruments (process-wide; see repro.obs.metrics).  Counters with
#: a ``stall.`` segment accumulate seconds and feed the attribution in
#: repro.obs.stall; the rest are volume counters/latency histograms.
_PUBLISHES = counter("repro.producer.publishes")
_ACKS = counter("repro.producer.acks")
_CAPACITY_WAIT_SECONDS = counter("repro.producer.stall.capacity_wait_seconds")
_PUBLISH_SECONDS = counter("repro.producer.stall.publish_seconds")
_EPOCH_SECONDS = histogram("repro.producer.epoch_seconds")
_SPAN_SECONDS = histogram("repro.producer.batch_span_seconds")
_CONSUMER_DROPS = counter("repro.producer.consumer_drops")


@dataclass
class ConsumerState:
    """What the producer knows about one registered consumer."""

    consumer_id: str
    batch_size: Optional[int] = None
    buffer_size: int = 2
    active: bool = True
    admitted_epoch: int = 0
    joined_at: float = field(default_factory=time.monotonic)
    batches_sent: int = 0
    #: Registration token from the consumer's HELLO; lets the producer tell a
    #: retry of the same consumer apart from a different consumer trying to
    #: squat on an id that is already registered.
    token: Optional[str] = None


class TensorProducer:
    """A shared data loader server wrapping an ordinary data loader."""

    def __init__(
        self,
        data_loader,
        *,
        address: Optional[str] = None,
        hub: Optional[InProcHub] = None,
        config: Optional[ProducerConfig] = None,
        pool: Optional[SharedMemoryPool] = None,
    ) -> None:
        self.loader = data_loader
        self.config = config or ProducerConfig()
        if address is not None and address != self.config.address:
            self.config = dataclasses.replace(self.config, address=address)
        # URI addresses resolve hub and pool through the transport registry;
        # explicit hub=/pool= arguments override the endpoint's resources.
        self._endpoint: Optional[endpoints.Endpoint] = None
        if hub is None and endpoints.is_uri(self.config.address):
            self._endpoint = endpoints.bind(self.config.address)
            if self._endpoint.address != self.config.address:
                # The transport resolved the address (tcp://host:0 picked a
                # real port); surface it so consumers can attach to it.
                self.config = dataclasses.replace(self.config, address=self._endpoint.address)
            hub = self._endpoint.hub
            pool = pool or self._endpoint.pool
        try:
            self.hub = hub or InProcHub()
            self.pool = pool or SharedMemoryPool()
            self.identity = f"producer-{uuid.uuid4().hex[:8]}"

            # The epoch cache (repro.cache); None when the policy is "none".
            cache_policy = CachePolicy.parse(self.config.cache_policy)
            self.cache: Optional[BatchCache] = None
            if cache_policy is not CachePolicy.NONE:
                self.cache = BatchCache(
                    self.pool,
                    policy=cache_policy,
                    budget_bytes=self.config.cache_bytes,
                )

            self._pub = PubSocket(self.hub, self.config.data_address, identity=self.identity)
            self._control = PullSocket(self.hub, self.config.control_address, identity=self.identity)
            self._heartbeats = HeartbeatMonitor(detach_timeout=self.config.heartbeat_timeout)
            self.ledger = AckLedger()
            self.rubberband = RubberbandPolicy(self.config.rubberband_fraction)
            try:
                self.rubberband.set_epoch_length(len(data_loader))
            except TypeError:
                pass
        except BaseException:
            # A failure after the bind must not leave the address registered
            # (or the tcp:// broker running) with no owner to release it.
            self.close_endpoint()
            raise

        self._consumers: Dict[str, ConsumerState] = {}
        self.epoch = 0
        self._stopped = False
        self._shutdown_sent = False
        # Rubberband replay window: producer holds keyed by per-epoch index.
        self._window_cache: Dict[int, BatchPayload] = {}

        self.runner = EpochRunner(
            data_loader,
            pool=self.pool,
            config=self.config,
            host=self,
            cache=self.cache,
            identity=self.identity,
        )

        #: Called with each completed epoch number (group progress tracking).
        self.on_epoch_end = None
        self.payloads_published = 0
        self.epochs_completed = 0

    # ------------------------------------------------------------------ registration
    @property
    def address(self) -> str:
        """The address this producer serves (a URI when endpoint-resolved)."""
        return self.config.address

    @property
    def owns_address(self) -> bool:
        """Whether this producer bound its address in the transport registry."""
        return self._endpoint is not None and not self._endpoint.released

    @property
    def consumers(self) -> Dict[str, ConsumerState]:
        return dict(self._consumers)

    @property
    def batches_loaded(self) -> int:
        """Total batches the runner has staged (producer-lifetime counter)."""
        return self.runner.batches_loaded

    @property
    def _batches_published_this_epoch(self) -> int:
        return self.runner.batches_published_this_epoch

    def active_consumer_ids(self) -> List[str]:
        return [c.consumer_id for c in self._consumers.values() if c.active]

    def _register_consumer(self, body: Mapping) -> None:
        consumer_id = body["consumer_id"]
        token = body.get("token")
        existing = self._consumers.get(consumer_id)
        if existing is not None:
            if existing.token != token:
                # A *different* consumer squatting on a live id would corrupt
                # the ack ledger (two parties acknowledging under one key):
                # reject on its personal topic; the rightful owner filters
                # the reply out by token.
                self._pub.send(
                    MessageKind.REPLY,
                    body={
                        "consumer_id": consumer_id,
                        "token": token,
                        "error": (
                            f"consumer_id {consumer_id!r} is already registered with "
                            f"this producer; choose a unique consumer_id"
                        ),
                    },
                    topic=f"consumer/{consumer_id}",
                )
                return
            # A HELLO retry: re-announce without re-running the join decision.
            self._heartbeats.beat(consumer_id)
            self._pub.send(
                MessageKind.REPLY,
                body={
                    "consumer_id": consumer_id,
                    "token": token,
                    "admitted_epoch": existing.admitted_epoch,
                    "decision": "already-registered",
                    "flexible_batching": self.config.flexible_batching,
                },
                topic=f"consumer/{consumer_id}",
            )
            return
        state = ConsumerState(
            consumer_id=consumer_id,
            batch_size=body.get("batch_size"),
            buffer_size=int(body.get("buffer_size", self.config.buffer_size)),
            token=token,
        )
        published = self._batches_published_this_epoch
        decision = self.rubberband.decide(consumer_id, published) \
            if self.rubberband.batches_per_epoch is not None else (
                JoinDecision.IMMEDIATE if published == 0
                else JoinDecision.WAIT_FOR_NEXT_EPOCH
            )

        if decision is JoinDecision.WAIT_FOR_NEXT_EPOCH:
            state.active = False
            state.admitted_epoch = self.epoch + 1
        else:
            state.active = True
            state.admitted_epoch = self.epoch
        self._consumers[consumer_id] = state
        self._heartbeats.beat(consumer_id)

        # Tell the consumer which epoch it starts in.
        self._pub.send(
            MessageKind.REPLY,
            body={
                "consumer_id": consumer_id,
                "token": token,
                "admitted_epoch": state.admitted_epoch,
                "decision": str(decision),
                "flexible_batching": self.config.flexible_batching,
            },
            topic=f"consumer/{consumer_id}",
        )

        if decision is JoinDecision.CATCH_UP:
            self._replay_window(state)

    def _replay_window(self, state: ConsumerState) -> None:
        """Send the batches a rubberbanded consumer missed (personal topic).

        A hold is taken only when the consumer is genuinely *added* as a
        waiter for the batch; if it already owes an ack for this key the
        message is re-sent (the consumer dedupes) but retaining again would
        leak — the duplicate ack never releases the extra hold.
        """
        for index in sorted(self._window_cache):
            payload = self._window_cache[index]
            key = payload.key()
            record = self.ledger.record_for(key)
            if record is None:
                for name in payload.segment_names:
                    self.pool.retain(name)
                self.ledger.publish(
                    key,
                    [state.consumer_id],
                    segment_names=payload.segment_names,
                    nbytes=payload.tensor_nbytes,
                )
            elif state.consumer_id not in record.waiting_on:
                for name in payload.segment_names:
                    self.pool.retain(name)
                self.ledger.add_waiter(key, state.consumer_id)
            self._pub.send(MessageKind.BATCH, body=payload, topic=f"consumer/{state.consumer_id}")
            state.batches_sent += 1
            self.rubberband.record_replayed(state.consumer_id, 0)  # tracked via acks

    def _drop_consumer(self, consumer_id: str, *, reason: str) -> None:
        state = self._consumers.pop(consumer_id, None)
        if state is None:
            return
        _CONSUMER_DROPS.inc()
        # Release the holds of every batch the consumer still owed an ack for.
        for key in list(self.ledger.pending_keys()):
            record = self.ledger.record_for(key)
            if record is not None and consumer_id in record.waiting_on:
                for name in record.segment_names:
                    self.pool.release_if_present(name)
        self.ledger.drop_consumer(consumer_id)
        self.rubberband.abandon(consumer_id)
        self._heartbeats.forget(consumer_id)

    # ------------------------------------------------------------------ control plane
    def _process_control(self, block_timeout: Optional[float] = None) -> None:
        """Drain the control socket: registrations, acks, byes, heartbeats."""
        message = self._control.try_recv()
        if message is None and block_timeout:
            try:
                message = self._control.recv(timeout=block_timeout)
            except Exception:
                message = None
        while message is not None:
            self._handle_control_message(message)
            message = self._control.try_recv()

    def _handle_control_message(self, message: Message) -> None:
        body = message.body or {}
        consumer_id = body.get("consumer_id", message.sender)
        # Only registered consumers count as live peers (an unconditional beat
        # would track rejected duplicate-id HELLOs and stray senders forever).
        if message.kind is not MessageKind.HELLO and consumer_id in self._consumers:
            self._heartbeats.beat(consumer_id)
        if message.kind is MessageKind.HELLO:
            self._register_consumer(body)
        elif message.kind is MessageKind.ACK:
            self._handle_ack(
                consumer_id,
                (int(body["epoch"]), int(body["batch_index"])),
                trace=body.get("trace"),
            )
        elif message.kind is MessageKind.BYE:
            # A rejected duplicate also says BYE when it closes; its token
            # mismatch must not drop the rightful owner on its behalf.
            state = self._consumers.get(consumer_id)
            token = body.get("token")
            if state is None or token is None or state.token == token:
                self._drop_consumer(consumer_id, reason="bye")
        elif message.kind is MessageKind.HEARTBEAT:
            pass  # the beat above is all that is needed

    def _handle_ack(
        self,
        consumer_id: str,
        key: Tuple[int, int],
        trace: Optional[Dict[str, float]] = None,
    ) -> None:
        _ACKS.inc()
        if isinstance(trace, dict):
            # The consumer carried the batch's completed lifecycle trace back
            # in the ACK body; record the full seven-stage span on the
            # producer side so one process (the serving one) holds the
            # end-to-end picture even over tcp://.
            obs_trace.record_span(
                epoch=key[0],
                batch_index=key[1],
                consumer_id=consumer_id,
                stages=trace,
                origin=obs_trace.origin(),
            )
            if "sampled" in trace and "acked" in trace:
                _SPAN_SECONDS.observe(float(trace["acked"]) - float(trace["sampled"]))
        record = self.ledger.record_for(key)
        if record is None or consumer_id not in record.waiting_on:
            self.ledger.acknowledge(consumer_id, key)  # counts the duplicate
            return
        for name in record.segment_names:
            self.pool.release_if_present(name)
        self.ledger.acknowledge(consumer_id, key)
        if self.rubberband.catch_up_for(consumer_id) is not None:
            self.rubberband.record_replayed(consumer_id, 1)

    def _sweep_heartbeats(self) -> None:
        for consumer_id in self._heartbeats.sweep():
            self._drop_consumer(consumer_id, reason="heartbeat timeout")

    # ------------------------------------------------------------------ epoch-host interface
    # The EpochRunner drives epochs through exactly these members (see
    # repro.core.epoch_runner.EpochHost).

    @property
    def stopped(self) -> bool:
        return self._stopped

    def wait_for_capacity(self) -> None:
        """Block until every active consumer can take another batch.

        Also enforces the paper's pause conditions: no consumers → no
        loading; a rubberbanded consumer catching up → publishing halts.
        """
        started = time.monotonic()
        try:
            self._wait_for_capacity()
        finally:
            _CAPACITY_WAIT_SECONDS.inc(time.monotonic() - started)

    def _wait_for_capacity(self) -> None:
        deadline = time.monotonic() + self.config.heartbeat_timeout * 4
        while not self._stopped:
            self._process_control()
            self._sweep_heartbeats()
            active = self.active_consumer_ids()
            waiting = [c for c in self._consumers.values() if not c.active]

            if not active:
                if not self.config.wait_for_consumers:
                    return
                if waiting and self._batches_published_this_epoch > 0:
                    # Everyone left mid-epoch and a newcomer is parked for
                    # the next epoch: abandon this epoch so it can start.
                    raise SkipEpoch()
                self._process_control(block_timeout=self.config.poll_interval)
                deadline = time.monotonic() + self.config.heartbeat_timeout * 4
                continue

            buffer_limit = min(
                [self.config.buffer_size]
                + [state.buffer_size for state in self._consumers.values() if state.active]
            )
            capacity_ok = self.ledger.all_have_capacity(active, buffer_limit)
            inflight_cap = self.config.max_inflight_batches
            if inflight_cap is not None and self.ledger.pending_batches >= inflight_cap:
                # Total-footprint bound: even with room in every consumer's
                # buffer, the producer holds publishing until acks drain the
                # ledger below the cap (keeps one dataset's shared-memory use
                # bounded when it shares a pool with other tenants).
                capacity_ok = False
            if capacity_ok and not self.rubberband.halting:
                return
            if time.monotonic() > deadline:
                # A consumer stopped acknowledging but still heartbeats:
                # detach the slowest rather than wedging the shared loader.
                for consumer_id in self.ledger.slowest_consumers(active):
                    self._drop_consumer(consumer_id, reason="ack timeout")
                deadline = time.monotonic() + self.config.heartbeat_timeout * 4
                continue
            self._process_control(block_timeout=self.config.poll_interval)

    def publish(
        self, payload: BatchPayload, consumers: List[str], *, topic: str = "broadcast"
    ) -> None:
        started = time.monotonic()
        for name in payload.segment_names:
            self.pool.retain(name, count=len(consumers))
        self.ledger.publish(
            payload.key(),
            consumers,
            segment_names=payload.segment_names,
            nbytes=payload.tensor_nbytes,
            published_at=started,
        )
        trace = (
            payload.metadata.get("trace") if isinstance(payload.metadata, dict) else None
        )
        if isinstance(trace, dict):
            # Stamped before the send so the stamp travels with the payload.
            trace["published"] = time.monotonic()
        self._pub.send(MessageKind.BATCH, body=payload, topic=topic)
        for consumer_id in consumers:
            state = self._consumers.get(consumer_id)
            if state is not None:
                state.batches_sent += 1
        self.payloads_published += 1
        _PUBLISHES.inc()
        _PUBLISH_SECONDS.inc(time.monotonic() - started)

    def retain_for_window(self, payload: BatchPayload, batch_index: int) -> bool:
        """Keep the first few batches of an epoch alive for rubberband joiners.

        The latest joiner still admitted (strict "before 2%") has missed at
        most batch ``window - 2``; caching more would pin memory for nothing.
        """
        try:
            window = self.rubberband.window_batches
        except ValueError:
            window = 0
        if self.config.rubberband_fraction > 0 and batch_index + 1 < window:
            self._window_cache[batch_index] = payload
            return True
        return False

    def batch_size_for(self, consumer_id: str) -> Optional[int]:
        state = self._consumers.get(consumer_id)
        return state.batch_size if state is not None else None

    def consumer_batch_sizes(self) -> Dict[str, int]:
        return {
            state.consumer_id: int(state.batch_size)
            for state in self._consumers.values()
            if state.active and state.batch_size
        }

    def _clear_window_cache(self) -> None:
        for payload in self._window_cache.values():
            for name in payload.segment_names:
                self.pool.release_if_present(name)
        self._window_cache.clear()

    # ------------------------------------------------------------------ top-level iteration
    def __iter__(self) -> Iterator[int]:
        epoch_limit = self.config.epochs
        while not self._stopped and (epoch_limit is None or self.epoch < epoch_limit):
            self.runner.begin_epoch(self.epoch)
            self._window_cache.clear()
            epoch_started = time.monotonic()
            try:
                for progress in self.runner.run(self.epoch):
                    yield progress
            except SkipEpoch:
                pass
            _EPOCH_SECONDS.observe(time.monotonic() - epoch_started)
            self._finish_epoch()
        # Iteration complete; callers call join() for cleanup.

    def _finish_epoch(self) -> None:
        finished_epoch = self.epoch
        self._clear_window_cache()
        self._pub.send(
            MessageKind.EPOCH_END,
            body={"epoch": finished_epoch, "batches": self._batches_published_this_epoch},
            topic="broadcast",
        )
        self.epoch += 1
        self.epochs_completed += 1
        self.rubberband.reset_for_new_epoch()
        # Waiting consumers become active at the boundary (Figure 6).
        for state in self._consumers.values():
            if not state.active and state.admitted_epoch <= self.epoch:
                state.active = True
        # Notify listeners which epoch just completed (sharded group sessions
        # record per-member progress; delivery-side epoch alignment lives in
        # the GroupConsumer merge, not here).
        if self.on_epoch_end is not None:
            self.on_epoch_end(finished_epoch)

    # ------------------------------------------------------------------ shutdown
    def stop(self) -> None:
        """Ask the producer to stop after the current batch."""
        self._stopped = True

    def join(self, timeout: float = 10.0) -> None:
        """Drain outstanding acknowledgements and announce shutdown."""
        deadline = time.monotonic() + timeout
        while self.ledger.pending_batches and time.monotonic() < deadline:
            self._process_control(block_timeout=self.config.poll_interval)
            self._sweep_heartbeats()
        if not self._shutdown_sent:
            self._pub.send(MessageKind.SHUTDOWN, body={"epochs": self.epoch}, topic="broadcast")
            self._shutdown_sent = True
        # Whatever is still pending belongs to consumers that vanished; free it.
        for key in list(self.ledger.pending_keys()):
            record = self.ledger.record_for(key)
            if record is None:
                continue
            for consumer_id in list(record.waiting_on):
                for name in record.segment_names:
                    self.pool.release_if_present(name)
                self.ledger.acknowledge(consumer_id, key)
        self._clear_window_cache()
        # Cache holds are distinct from in-flight holds; release them last so
        # both buckets read zero after join() on every exit path.
        if self.cache is not None:
            self.cache.clear()
        self._control.close()
        self._pub.close()
        self.close_endpoint()

    def close_endpoint(self) -> None:
        """Release the bound address so it can be served again (idempotent)."""
        if self._endpoint is not None:
            self._endpoint.release()

    # ------------------------------------------------------------------ introspection
    def metrics(self) -> Dict[str, object]:
        """This producer's state under the canonical registry namespace
        (``repro.producer.*`` / ``repro.pool.*`` / ``repro.cache``).

        Per-instance snapshot: the values are this producer's own counters,
        not the process-wide registry totals (several producers — shard
        members, broker tenants — share one registry but report their own
        rows here).
        """
        cache_stats = (
            self.cache.stats() if self.cache is not None else CacheStats()
        ).as_dict()
        return {
            "repro.producer.epoch": self.epoch,
            "repro.producer.epochs_completed": self.epochs_completed,
            "repro.producer.batches_loaded": self.batches_loaded,
            "repro.producer.publishes": self.payloads_published,
            "repro.producer.pending_batches": self.ledger.pending_batches,
            "repro.producer.consumers": len(self._consumers),
            "repro.pool.bytes_in_flight": self.pool.bytes_in_flight,
            "repro.pool.cached_bytes": self.pool.cached_bytes,
            "repro.pool.peak_bytes": self.pool.peak_bytes,
            "repro.pool.free_bytes": self.pool.free_bytes,
            "repro.pool.segment_reuse_hits": self.pool.segment_reuse_hits,
            "repro.pool.segment_reuse_misses": self.pool.segment_reuse_misses,
            "repro.pool.mmap_total": self.pool.mmap_total,
            "repro.cache": cache_stats,
        }

    def stats(self) -> Dict[str, object]:
        """Uniform statistics dict (the producer half of the pair that
        :meth:`TensorConsumer.stats` completes): load/publish counters, the
        cache's hit/miss/eviction figures (zeroed when no cache is
        configured), and the pool's two memory buckets — ``bytes_in_flight``
        vs ``cached_bytes``.

        .. deprecated:: PR 9
           A thin legacy view over :meth:`metrics` (the key map lives in
           :mod:`repro.obs.naming`); new code should read :meth:`metrics`.
        """
        return naming.to_legacy(self.metrics(), naming.PRODUCER_KEYS, role="producer")

    def status(self) -> Dict[str, object]:
        """A snapshot used by monitoring utilities and tests."""
        return {
            "epoch": self.epoch,
            "consumers": {
                cid: {
                    "active": state.active,
                    "batches_sent": state.batches_sent,
                    "outstanding": self.ledger.outstanding_for(cid),
                }
                for cid, state in self._consumers.items()
            },
            "pending_batches": self.ledger.pending_batches,
            "bytes_in_flight": self.pool.bytes_in_flight,
            "payloads_published": self.payloads_published,
        }

    def __repr__(self) -> str:
        return (
            f"TensorProducer(epoch={self.epoch}, consumers={len(self._consumers)}, "
            f"published={self.payloads_published})"
        )
