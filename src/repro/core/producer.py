"""The TensorSocket producer: one data-loading pipeline serving many trainers.

The producer owns the nested :class:`~repro.data.dataloader.DataLoader`
(step 0 in the paper's Figure 4), stages every prepared batch once in shared
memory (step 2), publishes pointer payloads to all consumers (step 3), and
releases the memory once every consumer has acknowledged the batch (step 6).
Along the way it implements the paper's supporting mechanisms: consumer
registration and heartbeats, flow control through the consumer batch buffer,
rubberbanding for late joiners, flexible batch sizing and batch-order
variation.

The producer is exposed as an iterator over the nested loader, exactly like
the paper's ``producer.py`` example::

    producer = TensorProducer(loader, hub=hub, config=ProducerConfig(epochs=2))
    for _ in producer:      # drives loading, publishing and acknowledgements
        pass
    producer.join()         # drain acks, announce shutdown

With ``ProducerConfig(pipeline_depth=N)`` for ``N > 1``, load + stage run on a
background :class:`~repro.core.pipeline.StagePipeline` bounded to ``N`` staged
batches, so the loop above overlaps loading with publish/ack work instead of
alternating between them.  ``pipeline_depth=1`` (default) is the classic
strictly-sequential loop.
"""

from __future__ import annotations

import dataclasses
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.cache import BatchCache, CachePolicy, CacheStats, CachedEpochSource
from repro.core.ack_ledger import AckLedger
from repro.core.config import ProducerConfig
from repro.core.flexible_batch import FlexibleBatcher, recommend_producer_batch_size
from repro.core.pipeline import StagedItem, StagePipeline
from repro.core.rubberband import JoinDecision, RubberbandPolicy
from repro.messaging import endpoint as endpoints
from repro.messaging.heartbeat import HeartbeatMonitor
from repro.messaging.message import Message, MessageKind
from repro.messaging.sockets import PubSocket, PullSocket
from repro.messaging.transport import InProcHub
from repro.tensor.payload import BatchPayload
from repro.tensor.shared_memory import SharedMemoryPool
from repro.tensor.tensor import Tensor


@dataclass
class ConsumerState:
    """What the producer knows about one registered consumer."""

    consumer_id: str
    batch_size: Optional[int] = None
    buffer_size: int = 2
    active: bool = True
    admitted_epoch: int = 0
    joined_at: float = field(default_factory=time.monotonic)
    batches_sent: int = 0
    #: Registration token from the consumer's HELLO; lets the producer tell a
    #: retry of the same consumer apart from a different consumer trying to
    #: squat on an id that is already registered.
    token: Optional[str] = None


class _SkipEpoch(Exception):
    """Internal signal: abandon the current epoch (every consumer has left)."""


def _staged_names(staged: Mapping[str, Tensor]) -> Tuple[str, ...]:
    """Unique segment names backing a staged batch (for hold accounting)."""
    return tuple(
        dict.fromkeys(
            tensor.segment.name for tensor in staged.values() if tensor.segment is not None
        )
    )


class TensorProducer:
    """A shared data loader server wrapping an ordinary data loader."""

    def __init__(
        self,
        data_loader,
        *,
        address: Optional[str] = None,
        hub: Optional[InProcHub] = None,
        config: Optional[ProducerConfig] = None,
        pool: Optional[SharedMemoryPool] = None,
    ) -> None:
        self.loader = data_loader
        self.config = config or ProducerConfig()
        if address is not None and address != self.config.address:
            self.config = dataclasses.replace(self.config, address=address)
        # URI addresses resolve hub and pool through the transport registry
        # (binding the address so consumers can attach by string); explicit
        # hub=/pool= arguments override the endpoint's resources.
        self._endpoint: Optional[endpoints.Endpoint] = None
        if hub is None and endpoints.is_uri(self.config.address):
            self._endpoint = endpoints.bind(self.config.address)
            if self._endpoint.address != self.config.address:
                # The transport resolved the address (tcp://host:0 picked a
                # real port); surface it so consumers can attach to it.
                self.config = dataclasses.replace(self.config, address=self._endpoint.address)
            hub = self._endpoint.hub
            pool = pool or self._endpoint.pool
        try:
            self.hub = hub or InProcHub()
            self.pool = pool or SharedMemoryPool()
            self.identity = f"producer-{uuid.uuid4().hex[:8]}"

            # The epoch cache (repro.cache): staged batches retained across
            # epochs so repeat epochs republish from shared memory instead of
            # reloading.  None when the policy is "none".
            cache_policy = CachePolicy.parse(self.config.cache_policy)
            self.cache: Optional[BatchCache] = None
            if cache_policy is not CachePolicy.NONE:
                self.cache = BatchCache(
                    self.pool,
                    policy=cache_policy,
                    budget_bytes=self.config.cache_bytes,
                )

            self._pub = PubSocket(self.hub, self.config.data_address, identity=self.identity)
            self._control = PullSocket(self.hub, self.config.control_address, identity=self.identity)
            self._heartbeats = HeartbeatMonitor(detach_timeout=self.config.heartbeat_timeout)
            self.ledger = AckLedger()
            self.rubberband = RubberbandPolicy(self.config.rubberband_fraction)
            try:
                self.rubberband.set_epoch_length(len(data_loader))
            except TypeError:
                pass
        except BaseException:
            # A failure after the bind (e.g. a socket refusing its channel)
            # must not leave the address registered — or, for tcp://, the
            # broker thread running — with no owner to release it.
            self.close_endpoint()
            raise

        self._consumers: Dict[str, ConsumerState] = {}
        self.epoch = 0
        self._batches_published_this_epoch = 0
        self._publish_seq = 0
        self._stopped = False
        self._shutdown_sent = False
        # Batches kept alive (producer hold) for the rubberband window, keyed
        # by their original per-epoch index.
        self._window_cache: Dict[int, BatchPayload] = {}
        self._flexible: Optional[FlexibleBatcher] = None

        # Statistics surfaced by tests and experiments.
        self.batches_loaded = 0
        self.payloads_published = 0
        self.epochs_completed = 0

    # ------------------------------------------------------------------ registration
    @property
    def address(self) -> str:
        """The address this producer serves (a URI when endpoint-resolved)."""
        return self.config.address

    @property
    def owns_address(self) -> bool:
        """Whether this producer bound its address in the transport registry."""
        return self._endpoint is not None and not self._endpoint.released

    @property
    def consumers(self) -> Dict[str, ConsumerState]:
        return dict(self._consumers)

    def active_consumer_ids(self) -> List[str]:
        return [c.consumer_id for c in self._consumers.values() if c.active]

    def _register_consumer(self, body: Mapping) -> None:
        consumer_id = body["consumer_id"]
        token = body.get("token")
        existing = self._consumers.get(consumer_id)
        if existing is not None:
            if existing.token != token:
                # A *different* consumer is trying to register an id that is
                # already live.  Accepting it would corrupt the ack ledger
                # (two parties acknowledging under one key), so reject it on
                # its personal topic; the rightful owner filters the reply
                # out by token.
                self._pub.send(
                    MessageKind.REPLY,
                    body={
                        "consumer_id": consumer_id,
                        "token": token,
                        "error": (
                            f"consumer_id {consumer_id!r} is already registered with "
                            f"this producer; choose a unique consumer_id"
                        ),
                    },
                    topic=f"consumer/{consumer_id}",
                )
                return
            # The same consumer re-sent HELLO (e.g. a registration retry):
            # re-announce its admission without re-running the join decision.
            self._heartbeats.beat(consumer_id)
            self._pub.send(
                MessageKind.REPLY,
                body={
                    "consumer_id": consumer_id,
                    "token": token,
                    "admitted_epoch": existing.admitted_epoch,
                    "decision": "already-registered",
                    "flexible_batching": self.config.flexible_batching,
                },
                topic=f"consumer/{consumer_id}",
            )
            return
        state = ConsumerState(
            consumer_id=consumer_id,
            batch_size=body.get("batch_size"),
            buffer_size=int(body.get("buffer_size", self.config.buffer_size)),
            token=token,
        )
        decision = self.rubberband.decide(consumer_id, self._batches_published_this_epoch) \
            if self.rubberband.batches_per_epoch is not None else (
                JoinDecision.IMMEDIATE if self._batches_published_this_epoch == 0
                else JoinDecision.WAIT_FOR_NEXT_EPOCH
            )

        if decision is JoinDecision.WAIT_FOR_NEXT_EPOCH:
            state.active = False
            state.admitted_epoch = self.epoch + 1
        else:
            state.active = True
            state.admitted_epoch = self.epoch
        self._consumers[consumer_id] = state
        self._heartbeats.beat(consumer_id)

        # Tell the consumer which epoch it starts in so it can ignore batches
        # that predate its admission.
        self._pub.send(
            MessageKind.REPLY,
            body={
                "consumer_id": consumer_id,
                "token": token,
                "admitted_epoch": state.admitted_epoch,
                "decision": str(decision),
                "flexible_batching": self.config.flexible_batching,
            },
            topic=f"consumer/{consumer_id}",
        )

        if decision is JoinDecision.CATCH_UP:
            self._replay_window(state)

    def _replay_window(self, state: ConsumerState) -> None:
        """Send the batches a rubberbanded consumer missed (personal topic).

        A hold is taken only when the consumer is genuinely *added* as a
        waiter for the batch.  If it already owes an ack for this key (e.g. a
        replay raced with a broadcast delivery of the same batch), the message
        is still re-sent — pointers are cheap and the consumer dedupes — but
        retaining again would leak: the consumer's second ack is a duplicate
        in the ledger and never releases the extra hold.
        """
        for index in sorted(self._window_cache):
            payload = self._window_cache[index]
            key = payload.key()
            record = self.ledger.record_for(key)
            if record is None:
                for name in payload.segment_names:
                    self.pool.retain(name)
                self.ledger.publish(
                    key,
                    [state.consumer_id],
                    segment_names=payload.segment_names,
                    nbytes=payload.tensor_nbytes,
                )
            elif state.consumer_id not in record.waiting_on:
                for name in payload.segment_names:
                    self.pool.retain(name)
                self.ledger.add_waiter(key, state.consumer_id)
            self._pub.send(MessageKind.BATCH, body=payload, topic=f"consumer/{state.consumer_id}")
            state.batches_sent += 1
            self.rubberband.record_replayed(state.consumer_id, 0)  # tracked via acks

    def _drop_consumer(self, consumer_id: str, *, reason: str) -> None:
        state = self._consumers.pop(consumer_id, None)
        if state is None:
            return
        # Release the holds of every batch the consumer still owed an ack for.
        for key in list(self.ledger.pending_keys()):
            record = self.ledger.record_for(key)
            if record is not None and consumer_id in record.waiting_on:
                for name in record.segment_names:
                    self.pool.release_if_present(name)
        self.ledger.drop_consumer(consumer_id)
        self.rubberband.abandon(consumer_id)
        self._heartbeats.forget(consumer_id)

    # ------------------------------------------------------------------ control plane
    def _process_control(self, block_timeout: Optional[float] = None) -> None:
        """Drain the control socket: registrations, acks, byes, heartbeats."""
        message = self._control.try_recv()
        if message is None and block_timeout:
            try:
                message = self._control.recv(timeout=block_timeout)
            except Exception:
                message = None
        while message is not None:
            self._handle_control_message(message)
            message = self._control.try_recv()

    def _handle_control_message(self, message: Message) -> None:
        body = message.body or {}
        consumer_id = body.get("consumer_id", message.sender)
        # Only registered consumers count as live peers.  An unconditional
        # beat here would track rejected duplicate-id HELLOs and stray
        # senders forever; _register_consumer beats accepted registrations
        # itself.
        if message.kind is not MessageKind.HELLO and consumer_id in self._consumers:
            self._heartbeats.beat(consumer_id)
        if message.kind is MessageKind.HELLO:
            self._register_consumer(body)
        elif message.kind is MessageKind.ACK:
            self._handle_ack(consumer_id, (int(body["epoch"]), int(body["batch_index"])))
        elif message.kind is MessageKind.BYE:
            # A rejected duplicate also says BYE when it closes; its token
            # does not match the registered consumer's, and dropping the
            # rightful owner on its behalf would corrupt the ack ledger.
            state = self._consumers.get(consumer_id)
            token = body.get("token")
            if state is None or token is None or state.token == token:
                self._drop_consumer(consumer_id, reason="bye")
        elif message.kind is MessageKind.HEARTBEAT:
            pass  # the beat above is all that is needed
        # REQUEST/REPLY traffic is handled by auxiliary tooling, not here.

    def _handle_ack(self, consumer_id: str, key: Tuple[int, int]) -> None:
        record = self.ledger.record_for(key)
        if record is None or consumer_id not in record.waiting_on:
            self.ledger.acknowledge(consumer_id, key)  # counts the duplicate
            return
        for name in record.segment_names:
            self.pool.release_if_present(name)
        self.ledger.acknowledge(consumer_id, key)
        if self.rubberband.catch_up_for(consumer_id) is not None:
            self.rubberband.record_replayed(consumer_id, 1)

    def _sweep_heartbeats(self) -> None:
        for consumer_id in self._heartbeats.sweep():
            self._drop_consumer(consumer_id, reason="heartbeat timeout")

    # ------------------------------------------------------------------ flow control
    def _wait_for_capacity(self) -> None:
        """Block until every active consumer can take another batch.

        Also enforces the paper's pause conditions: no consumers → no loading;
        a rubberbanded consumer catching up → other consumers halt (we simply
        stop publishing until the catch-up finishes).
        """
        deadline = time.monotonic() + self.config.heartbeat_timeout * 4
        while not self._stopped:
            self._process_control()
            self._sweep_heartbeats()
            active = self.active_consumer_ids()
            waiting = [c for c in self._consumers.values() if not c.active]

            if not active:
                if not self.config.wait_for_consumers:
                    return
                if waiting and self._batches_published_this_epoch > 0:
                    # Everyone left mid-epoch and a newcomer is parked for the
                    # next epoch: abandon this epoch so it can start.
                    raise _SkipEpoch()
                self._process_control(block_timeout=self.config.poll_interval)
                deadline = time.monotonic() + self.config.heartbeat_timeout * 4
                continue

            buffer_limit = min(
                [self.config.buffer_size]
                + [state.buffer_size for state in self._consumers.values() if state.active]
            )
            capacity_ok = self.ledger.all_have_capacity(active, buffer_limit)
            if capacity_ok and not self.rubberband.halting:
                return
            if time.monotonic() > deadline:
                # A consumer stopped acknowledging but its heartbeats still
                # arrive (e.g. it crashed inside a training step).  Detach the
                # slowest consumers rather than wedging the shared loader.
                for consumer_id in self.ledger.slowest_consumers(active):
                    self._drop_consumer(consumer_id, reason="ack timeout")
                deadline = time.monotonic() + self.config.heartbeat_timeout * 4
                continue
            self._process_control(block_timeout=self.config.poll_interval)

    # ------------------------------------------------------------------ staging & publishing
    def _stage_batch(self, batch: Mapping[str, Tensor]) -> Dict[str, Tensor]:
        """Copy a loader batch into shared memory on the share device (step 2).

        Runs on the stage worker when ``pipeline_depth > 1``; it only touches
        the pool (thread-safe) and the ``batches_loaded`` counter (written by
        exactly one staging thread).
        """
        staged = {}
        for name, tensor in batch.items():
            tensor = tensor.to(self.config.share_device)
            staged[name] = self.pool.share_tensor(tensor, initial_refcount=1)
        self.batches_loaded += 1
        return staged

    # ------------------------------------------------------------------ pipeline plumbing
    def _pipeline_loader_workers(self) -> Optional[int]:
        """Loader worker threads the staged pipeline may use (None = loader default)."""
        if self.config.pipeline_workers is not None:
            return self.config.pipeline_workers
        if getattr(self.loader, "num_workers", 0):
            return None  # the loader already has its own workers; keep them
        return min(4, self.config.pipeline_depth)

    def _open_loader_iter(self):
        """Start one epoch's iteration over the nested loader.

        With an overlapped pipeline the loader is asked for a prefetching
        iterator whose in-flight budget matches ``pipeline_depth``, so the
        pipeline's bound covers loader-internal prefetch too.
        """
        depth = self.config.pipeline_depth
        if depth > 1 and hasattr(self.loader, "prefetch_iter"):
            return self.loader.prefetch_iter(
                max_in_flight=depth, num_workers=self._pipeline_loader_workers()
            )
        return iter(self.loader)

    def _make_pipeline(self, source, stage_fn, source_close=None) -> StagePipeline:
        return StagePipeline(
            source,
            stage_fn,
            depth=self.config.pipeline_depth,
            release_fn=self._release_staged,
            source_close=source_close,
            name=f"{self.identity}-stage",
        )

    def _release_staged(self, item: StagedItem) -> None:
        """Return the producer holds of a staged item that will never publish."""
        for name in item.segment_names:
            self.pool.release_if_present(name)

    def _publish_payload(
        self,
        payload: BatchPayload,
        consumers: List[str],
        *,
        topic: str = "broadcast",
    ) -> None:
        for name in payload.segment_names:
            self.pool.retain(name, count=len(consumers))
        self.ledger.publish(
            payload.key(),
            consumers,
            segment_names=payload.segment_names,
            nbytes=payload.tensor_nbytes,
            published_at=time.monotonic(),
        )
        self._pub.send(MessageKind.BATCH, body=payload, topic=topic)
        for consumer_id in consumers:
            state = self._consumers.get(consumer_id)
            if state is not None:
                state.batches_sent += 1
        self.payloads_published += 1

    def _release_producer_hold(self, payload: BatchPayload) -> None:
        for name in payload.segment_names:
            self.pool.release_if_present(name)

    def _maybe_cache_for_window(self, payload: BatchPayload, batch_index: int) -> bool:
        """Keep the first few batches of an epoch alive for rubberband joiners.

        The latest joiner still admitted arrives when ``window - 1`` batches
        have been published (strict "before 2%"), having missed at most batch
        ``window - 2`` — so only indexes below ``window - 1`` can ever be
        replayed; caching ``window - 1`` itself would pin a batch of shared
        memory all epoch for nothing.
        """
        try:
            window = self.rubberband.window_batches
        except ValueError:
            window = 0
        if self.config.rubberband_fraction > 0 and batch_index + 1 < window:
            self._window_cache[batch_index] = payload
            return True
        return False

    def _clear_window_cache(self) -> None:
        for payload in self._window_cache.values():
            self._release_producer_hold(payload)
        self._window_cache.clear()

    # ------------------------------------------------------------------ default-mode epoch
    def _run_epoch_default(self) -> Iterator[int]:
        """Publish one epoch from a stream of already-staged payloads.

        Load + stage run inside the :class:`StagePipeline` (inline at
        ``pipeline_depth=1``, on the stage worker otherwise); this loop only
        does capacity waits, publishing and control work.  Every staged item
        that cannot be published (stop, skip-epoch, no consumers) has its
        producer hold released before the loop moves on, and the ``finally``
        drain covers whatever the pipeline still had in flight.

        With an epoch cache enabled, the epoch is planned against a
        :class:`~repro.cache.CachedEpochSource`: cached batch indices are
        republished straight from their retained segments (no loader, no
        stage worker, no copy — just a fresh producer hold and a re-keyed
        payload), only the misses flow through the pipeline, and every
        published miss is offered to the cache post-stage.
        """
        total = len(self.loader) if self._loader_sized() else None
        epoch = self.epoch
        overlapped = self.config.pipeline_depth > 1
        source = (
            CachedEpochSource(self.cache, self.loader, epoch=epoch)
            if self.cache is not None
            else None
        )

        def pack_payload(index, batch) -> BatchPayload:
            return BatchPayload.pack(
                self._stage_batch(batch),
                batch_index=index,
                epoch=epoch,
                is_last_in_epoch=total is not None and index == total - 1,
            )

        def stage(indexed) -> StagedItem:
            index, batch = indexed
            if not overlapped:
                # Depth 1 keeps the classic order — load, wait for capacity,
                # *then* stage: the batch passes through raw and is staged at
                # publish time, so no shared memory is held during waits and
                # skipped batches never touch the pool.
                return StagedItem(index=index, value=batch)
            payload = pack_payload(index, batch)
            return StagedItem(index=index, value=payload, segment_names=payload.segment_names)

        if source is None or source.all_miss:
            # No cache, or nothing cached yet (epoch 0): the classic path —
            # the full loader, with its own prefetch workers, feeds the
            # pipeline directly.
            loader_iter = self._open_loader_iter()
            if source is not None and total is not None:
                # Pin this sampler draw as THE composition future cached
                # epochs serve — hits and reloaded misses alike — so a
                # reshuffling sampler cannot skew per-epoch sample coverage.
                sampled = getattr(loader_iter, "sampled_batches", None)
                if sampled is not None:
                    self.cache.remember_composition(sampled)
            pipeline: Optional[StagePipeline] = self._make_pipeline(
                enumerate(loader_iter), stage, source_close=getattr(loader_iter, "close", None)
            )
            stream: Iterator[StagedItem] = iter(pipeline)
        elif source.full_replay:
            # Every batch is cached: the loader is never opened and no
            # pipeline runs; the epoch is pure republishing.
            pipeline = None
            stream = self._cached_item_stream(source, iter(()))
        else:
            # Partial cache: only the misses are loaded — through the
            # loader's own prefetch workers, from the composition the cache
            # was filled with — and staged; the hit stream interleaves with
            # them in batch-index order.
            misses, miss_close = source.open_misses(
                max_in_flight=self.config.pipeline_depth if overlapped else None,
                num_workers=self._pipeline_loader_workers() if overlapped else 0,
            )
            pipeline = self._make_pipeline(misses, stage, source_close=miss_close)
            stream = self._cached_item_stream(source, iter(pipeline))
        try:
            for item in stream:
                if self._stopped:
                    self._release_staged(item)
                    break
                try:
                    self._wait_for_capacity()
                except _SkipEpoch:
                    self._release_staged(item)
                    raise
                if self._stopped:
                    self._release_staged(item)
                    break
                active = self.active_consumer_ids()
                if not active:
                    # Nobody to serve right now (free-running mode, or the
                    # wait was cut short by stop()): skip this batch and
                    # return its staging hold, if it has one.
                    self._release_staged(item)
                    continue
                if isinstance(item.value, BatchPayload):
                    payload: BatchPayload = item.value
                else:
                    payload = pack_payload(item.index, item.value)
                    item.value = payload
                    item.segment_names = payload.segment_names
                self._publish_payload(payload, active)
                if source is not None and not item.from_cache:
                    # Offer the freshly staged miss to the cache while the
                    # publish holds still pin its segments.
                    source.record(item.index, payload)
                if not self._maybe_cache_for_window(payload, item.index):
                    self._release_producer_hold(payload)
                self._batches_published_this_epoch = item.index + 1
                yield item.index + 1
        finally:
            if pipeline is not None:
                pipeline.close()
            if source is not None:
                source.finish(
                    self._batches_published_this_epoch,
                    complete=total is not None
                    and self._batches_published_this_epoch == total,
                )

    def _cached_item_stream(
        self, source: CachedEpochSource, miss_iter: Iterator[StagedItem]
    ) -> Iterator[StagedItem]:
        """Interleave cache hits with pipeline-staged misses in index order.

        A hit that was evicted between planning and use falls back to a
        synchronous load (raw item, staged at publish time like a depth-1
        miss) so the epoch never loses a batch.
        """
        for index in range(source.total):
            if index in source.plan:
                payload = source.hit(index)
                if payload is None:
                    yield StagedItem(index=index, value=source.load_batch(index))
                else:
                    yield StagedItem(
                        index=index,
                        value=payload,
                        segment_names=payload.segment_names,
                        from_cache=True,
                    )
            else:
                yield next(miss_iter)

    # ------------------------------------------------------------------ flexible-mode epoch
    def _build_flexible_batcher(self) -> FlexibleBatcher:
        sizes = {
            state.consumer_id: int(state.batch_size)
            for state in self._consumers.values()
            if state.active and state.batch_size
        }
        if not sizes:
            raise RuntimeError(
                "flexible batching requires every active consumer to announce a batch size"
            )
        producer_batch = self.config.producer_batch_size or recommend_producer_batch_size(
            list(sizes.values())
        )
        return FlexibleBatcher(
            producer_batch,
            sizes,
            use_offsets=self.config.consumer_offsets,
            shuffle_slices=self.config.shuffle_slices,
            seed=self.config.seed,
        )

    def _run_epoch_flexible(self) -> Iterator[int]:
        # Wait for at least one consumer before fixing producer-batch geometry.
        self._wait_for_capacity()
        self._flexible = self._build_flexible_batcher()

        # Flexible batching re-chunks the loader's sequential stream, so a
        # *partial* cache cannot serve selected producer batches — replay is
        # all-or-nothing.  A fully cached epoch with matching producer-batch
        # geometry replays straight from shared memory; anything less is
        # flushed (stale geometry or an incomplete epoch would pin segments
        # that can never be hits).
        if self.cache is not None:
            replay_len = self.cache.replayable_epoch_length(
                rows=self._flexible.producer_batch_size
            )
            if replay_len is not None:
                yield from self._replay_epoch_flexible(replay_len)
                return
            if len(self.cache):
                self.cache.clear()

        loader_iter = self._open_loader_iter()

        # With pipeline_depth > 1 this generator (and the staging below) runs
        # on the stage worker.  It only touches the batcher's accumulation
        # state (_carry, counters); the main thread touches only the slicing
        # side (add_consumer / carve / has_consumer read-modify
        # consumer_batch_sizes).  The two halves are disjoint, so no lock is
        # needed between them.
        def producer_batches():
            index = 0
            for batch in loader_iter:
                if self._stopped:
                    return
                for producer_batch in self._flexible.add_loader_batch(batch):
                    yield index, producer_batch
                    index += 1

        overlapped = self.config.pipeline_depth > 1

        def stage(indexed) -> StagedItem:
            index, producer_batch = indexed
            if not overlapped:
                # Depth 1: pass the producer batch through raw; staging
                # happens in _emit_staged_batch after the capacity wait and
                # active-consumer check, exactly like the classic loop.
                return StagedItem(index=index, value=producer_batch)
            staged = self._stage_batch(producer_batch)
            return StagedItem(
                index=index, value=staged, segment_names=_staged_names(staged)
            )

        pipeline = self._make_pipeline(
            producer_batches(), stage, source_close=getattr(loader_iter, "close", None)
        )
        producer_batch_index = 0
        completed = False
        try:
            for item in pipeline:
                if self._stopped:
                    self._release_staged(item)
                    break
                self._emit_staged_batch(item)
                producer_batch_index = item.index + 1
                yield producer_batch_index
            else:
                completed = not self._stopped
        finally:
            pipeline.close()
        self._batches_published_this_epoch = producer_batch_index
        if self.cache is not None and completed:
            # Replayable only if every producer batch actually stayed
            # resident (mark_epoch_complete re-verifies the index range).
            self.cache.mark_epoch_complete(producer_batch_index)

    def _replay_epoch_flexible(self, replay_len: int) -> Iterator[int]:
        """Serve one flexible epoch entirely from cached producer batches.

        Each staged producer batch is republished with a fresh producer hold
        (no loader, no stage worker, no copy) and carved into per-consumer
        slices by the regular emit path, which also returns the hold on every
        exit.
        """
        producer_batch_index = 0
        for index in range(replay_len):
            if self._stopped:
                break
            staged = self.cache.republish_staged(index)
            if staged is None:  # pragma: no cover - nothing evicts mid-replay
                raise RuntimeError(
                    f"cached producer batch {index} vanished during a full replay"
                )
            item = StagedItem(
                index=index,
                value=staged,
                segment_names=_staged_names(staged),
                from_cache=True,
            )
            self._emit_staged_batch(item)
            producer_batch_index = index + 1
            yield producer_batch_index
        self._batches_published_this_epoch = producer_batch_index

    def _emit_staged_batch(self, item: StagedItem) -> None:
        """Carve one already-staged producer batch into per-consumer slices.

        The staging hold travels with ``item``; the ``finally`` returns it on
        every exit path (publish, stop, skip-epoch) so an interrupted emit
        cannot leak its producer batch.  At ``pipeline_depth=1`` the item
        arrives raw and is staged here, after the capacity wait and
        active-consumer check (the classic order); early exits then never
        touch the pool.
        """
        index = item.index
        try:
            self._wait_for_capacity()
            active = self.active_consumer_ids()
            if not active or self._stopped:
                return
            # Consumers admitted after the batcher was built get their own
            # slicing plan over the existing producer-batch geometry.
            for consumer_id in active:
                if not self._flexible.has_consumer(consumer_id):
                    state = self._consumers[consumer_id]
                    if state.batch_size:
                        self._flexible.add_consumer(consumer_id, int(state.batch_size))
            if not item.segment_names:  # raw item: stage now
                staged = self._stage_batch(item.value)
                item.value = staged
                item.segment_names = _staged_names(staged)
            staged = item.value
            for consumer_id in active:
                if not self._flexible.has_consumer(consumer_id):
                    continue
                slices = self._flexible.carve(staged, consumer_id, index)
                for slice_batch in slices:
                    self._wait_for_capacity()
                    if consumer_id not in self.active_consumer_ids():
                        break
                    self._publish_seq += 1
                    payload = BatchPayload.pack(
                        slice_batch,
                        batch_index=self._publish_seq,
                        epoch=self.epoch,
                        producer_batch_id=index,
                    )
                    self._publish_payload(payload, [consumer_id], topic=f"consumer/{consumer_id}")
            self._batches_published_this_epoch = index + 1
            if self.cache is not None and not item.from_cache:
                # Retain the whole staged producer batch (pre-carve) so a
                # repeat epoch can re-slice it for whatever consumers are
                # registered then.
                self.cache.record_miss()
                first = next(iter(staged.values()))
                self.cache.put(
                    index,
                    staged,
                    segment_names=item.segment_names,
                    nbytes=sum(t.nbytes for t in staged.values()),
                    rows=first.shape[0] if first.shape else 0,
                )
        finally:
            # The producer's own hold on the staged producer batch.
            self._release_staged(item)

    # ------------------------------------------------------------------ top-level iteration
    def _loader_sized(self) -> bool:
        try:
            len(self.loader)
            return True
        except TypeError:
            return False

    def __iter__(self) -> Iterator[int]:
        epoch_limit = self.config.epochs
        while not self._stopped and (epoch_limit is None or self.epoch < epoch_limit):
            self._batches_published_this_epoch = 0
            # Flexible-mode slice numbering restarts every epoch; without the
            # reset, batch indices drift upward epoch over epoch.
            self._publish_seq = 0
            self._window_cache.clear()
            runner = (
                self._run_epoch_flexible() if self.config.flexible_batching
                else self._run_epoch_default()
            )
            try:
                for progress in runner:
                    yield progress
            except _SkipEpoch:
                pass
            self._finish_epoch()
        # Iteration complete; callers are expected to call join() for cleanup.

    def _finish_epoch(self) -> None:
        self._clear_window_cache()
        self._pub.send(
            MessageKind.EPOCH_END,
            body={"epoch": self.epoch, "batches": self._batches_published_this_epoch},
            topic="broadcast",
        )
        self.epoch += 1
        self.epochs_completed += 1
        self.rubberband.reset_for_new_epoch()
        # Waiting consumers become active at the boundary (Figure 6).
        for state in self._consumers.values():
            if not state.active and state.admitted_epoch <= self.epoch:
                state.active = True

    # ------------------------------------------------------------------ shutdown
    def stop(self) -> None:
        """Ask the producer to stop after the current batch."""
        self._stopped = True

    def join(self, timeout: float = 10.0) -> None:
        """Drain outstanding acknowledgements and announce shutdown."""
        deadline = time.monotonic() + timeout
        while self.ledger.pending_batches and time.monotonic() < deadline:
            self._process_control(block_timeout=self.config.poll_interval)
            self._sweep_heartbeats()
        if not self._shutdown_sent:
            self._pub.send(MessageKind.SHUTDOWN, body={"epochs": self.epoch}, topic="broadcast")
            self._shutdown_sent = True
        # Whatever is still pending belongs to consumers that vanished; free it.
        for key in list(self.ledger.pending_keys()):
            record = self.ledger.record_for(key)
            if record is None:
                continue
            for consumer_id in list(record.waiting_on):
                for name in record.segment_names:
                    self.pool.release_if_present(name)
                self.ledger.acknowledge(consumer_id, key)
        self._clear_window_cache()
        # Cache holds are distinct from in-flight holds; release them last so
        # `cached_bytes` (like `bytes_in_flight`) reads zero after join() on
        # every exit path — normal completion, stop(), skip-epoch, churn.
        if self.cache is not None:
            self.cache.clear()
        self._control.close()
        self._pub.close()
        self.close_endpoint()

    def close_endpoint(self) -> None:
        """Release the bound address so it can be served again (idempotent)."""
        if self._endpoint is not None:
            self._endpoint.release()

    # ------------------------------------------------------------------ introspection
    def stats(self) -> Dict[str, object]:
        """Uniform statistics dict (the producer half of the pair that
        :meth:`TensorConsumer.stats` completes).

        Stable keys, suitable for logging/monitoring pipelines: counters for
        loading and publishing, the cache's hit/miss/eviction figures (zeroed
        when no cache is configured), and the pool's two memory buckets —
        ``bytes_in_flight`` (staged batches consumers have not yet
        acknowledged) vs ``cached_bytes`` (epochs pinned by the cache).
        """
        cache_stats = (
            self.cache.stats() if self.cache is not None else CacheStats()
        ).as_dict()
        return {
            "role": "producer",
            "epoch": self.epoch,
            "epochs_completed": self.epochs_completed,
            "batches_loaded": self.batches_loaded,
            "payloads_published": self.payloads_published,
            "pending_batches": self.ledger.pending_batches,
            "consumers": len(self._consumers),
            "bytes_in_flight": self.pool.bytes_in_flight,
            "cached_bytes": self.pool.cached_bytes,
            "peak_bytes": self.pool.peak_bytes,
            "cache": cache_stats,
        }

    def status(self) -> Dict[str, object]:
        """A snapshot used by monitoring utilities and tests."""
        return {
            "epoch": self.epoch,
            "consumers": {
                cid: {
                    "active": state.active,
                    "batches_sent": state.batches_sent,
                    "outstanding": self.ledger.outstanding_for(cid),
                }
                for cid, state in self._consumers.items()
            },
            "pending_batches": self.ledger.pending_batches,
            "bytes_in_flight": self.pool.bytes_in_flight,
            "payloads_published": self.payloads_published,
        }

    def __repr__(self) -> str:
        return (
            f"TensorProducer(epoch={self.epoch}, consumers={len(self._consumers)}, "
            f"published={self.payloads_published})"
        )
