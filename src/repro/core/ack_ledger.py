"""The producer's acknowledgement ledger.

Figure 4 of the paper, steps 2 and 6: whenever the producer shares a batch it
*stores* a reference to it; when a consumer finishes a batch it notifies the
producer, and the producer *releases* the memory only once every consumer is
done with it.  The :class:`AckLedger` is that bookkeeping, decoupled from the
transport so both the threaded producer and the simulated producer use it.

It also answers the flow-control question "may I publish another batch yet?":
a consumer with ``buffer_size`` un-acknowledged batches must not be sent more
(that is what bounds consumer drift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

BatchKey = Tuple[int, int]  # (epoch, batch_index)


@dataclass
class BatchRecord:
    """One published batch awaiting acknowledgements."""

    key: BatchKey
    waiting_on: Set[str]
    segment_names: Tuple[str, ...] = ()
    nbytes: int = 0
    published_at: float = 0.0

    @property
    def fully_acknowledged(self) -> bool:
        return not self.waiting_on


class AckLedger:
    """Tracks outstanding batches per consumer and releases fully-acked ones."""

    def __init__(self, release_callback: Optional[Callable[[BatchRecord], None]] = None) -> None:
        self._records: Dict[BatchKey, BatchRecord] = {}
        self._outstanding_by_consumer: Dict[str, Set[BatchKey]] = {}
        self._release_callback = release_callback
        self.batches_published = 0
        self.batches_released = 0
        self.acks_received = 0
        self.duplicate_acks = 0

    # -- publishing -----------------------------------------------------------------
    def publish(
        self,
        key: BatchKey,
        consumers: Sequence[str],
        *,
        segment_names: Sequence[str] = (),
        nbytes: int = 0,
        published_at: float = 0.0,
    ) -> BatchRecord:
        """Record that a batch was shared with the given consumers."""
        if key in self._records:
            raise ValueError(f"batch {key} was already published")
        if not consumers:
            raise ValueError("a batch must be published to at least one consumer")
        record = BatchRecord(
            key=key,
            waiting_on=set(consumers),
            segment_names=tuple(segment_names),
            nbytes=int(nbytes),
            published_at=published_at,
        )
        self._records[key] = record
        for consumer in consumers:
            self._outstanding_by_consumer.setdefault(consumer, set()).add(key)
        self.batches_published += 1
        return record

    def add_waiter(self, key: BatchKey, consumer_id: str) -> BatchRecord:
        """Add a consumer to an already-published batch's waiting set.

        Used when a rubberbanded late joiner is replayed a batch that other
        consumers are still working on.  Keeps the per-consumer outstanding
        index consistent with the record's ``waiting_on`` set, which direct
        mutation of the record would not.
        """
        record = self._records.get(key)
        if record is None:
            raise KeyError(f"batch {key} is not pending (published and released?)")
        record.waiting_on.add(consumer_id)
        self._outstanding_by_consumer.setdefault(consumer_id, set()).add(key)
        return record

    # -- acknowledgements -------------------------------------------------------------
    def acknowledge(self, consumer_id: str, key: BatchKey) -> Optional[BatchRecord]:
        """Record an ack; returns the record if this ack fully released the batch."""
        record = self._records.get(key)
        self.acks_received += 1
        if record is None or consumer_id not in record.waiting_on:
            self.duplicate_acks += 1
            return None
        record.waiting_on.discard(consumer_id)
        outstanding = self._outstanding_by_consumer.get(consumer_id)
        if outstanding is not None:
            outstanding.discard(key)
        if record.fully_acknowledged:
            self._release(record)
            return record
        return None

    def drop_consumer(self, consumer_id: str) -> List[BatchRecord]:
        """Remove a consumer (departed or detached) from every pending batch.

        Returns the records that became fully acknowledged as a result — a
        crashed consumer must not pin batch memory forever.
        """
        released: List[BatchRecord] = []
        keys = self._outstanding_by_consumer.pop(consumer_id, set())
        for key in keys:
            record = self._records.get(key)
            if record is None:
                continue
            record.waiting_on.discard(consumer_id)
            if record.fully_acknowledged:
                self._release(record)
                released.append(record)
        return released

    def _release(self, record: BatchRecord) -> None:
        del self._records[record.key]
        self.batches_released += 1
        if self._release_callback is not None:
            self._release_callback(record)

    # -- flow control ------------------------------------------------------------------
    def outstanding_for(self, consumer_id: str) -> int:
        return len(self._outstanding_by_consumer.get(consumer_id, ()))

    def can_publish_to(self, consumer_id: str, buffer_size: int) -> bool:
        """True when the consumer has room for another un-acknowledged batch."""
        return self.outstanding_for(consumer_id) < buffer_size

    def all_have_capacity(self, consumers: Sequence[str], buffer_size: int) -> bool:
        return all(self.can_publish_to(c, buffer_size) for c in consumers)

    def slowest_consumers(self, consumers: Sequence[str]) -> List[str]:
        """Consumers with the most outstanding batches (the ones holding things up)."""
        if not consumers:
            return []
        worst = max(self.outstanding_for(c) for c in consumers)
        return [c for c in consumers if self.outstanding_for(c) == worst]

    # -- introspection --------------------------------------------------------------------
    @property
    def pending_batches(self) -> int:
        return len(self._records)

    @property
    def pending_bytes(self) -> int:
        return sum(record.nbytes for record in self._records.values())

    def pending_keys(self) -> List[BatchKey]:
        return sorted(self._records)

    def record_for(self, key: BatchKey) -> Optional[BatchRecord]:
        return self._records.get(key)

    def __repr__(self) -> str:
        return (
            f"AckLedger(pending={self.pending_batches}, published={self.batches_published}, "
            f"released={self.batches_released})"
        )
