"""The epoch runner: one epoch's load → stage → publish loop, host-agnostic.

Historically the :class:`~repro.core.producer.TensorProducer` welded the
epoch-running machinery (loader iteration, the staged pipeline, cache-aware
interleaving, flexible-batch carving) to the connection machinery (consumer
registration, heartbeats, flow control, the ack ledger).  This module is the
epoch half, extracted behind a narrow interface so other hosts — most
importantly the sharded producer groups in :mod:`repro.core.group`, where N
runners cooperate on one dataset — drive the exact same code path.

An :class:`EpochRunner` owns the loader, the shared-memory staging, the
:class:`~repro.core.pipeline.StagePipeline` and the epoch-cache integration
(:class:`~repro.cache.CachedEpochSource`).  Everything connection-shaped is
delegated to a *host* object implementing :class:`EpochHost` — for the
classic producer that is the producer itself:

* ``wait_for_capacity()`` — block until every active consumer can take a
  batch (may raise :class:`SkipEpoch` to abandon the epoch);
* ``active_consumer_ids()`` — who should receive the next publish;
* ``publish(payload, consumers, topic=...)`` — record the batch in the ack
  ledger, retain its segments per consumer, and send it;
* ``retain_for_window(payload, index)`` — offer the payload to the host's
  rubberband replay window (the host takes over the producer hold when it
  returns True);
* ``stopped`` / ``batch_size_for(consumer_id)`` / ``consumer_batch_sizes()``
  — the flow-control flag and the flexible-batching geometry sources.

At every epoch boundary the runner advances the loader's sampler epoch
(``loader.set_epoch(epoch)`` when the loader supports it) *before* opening the
iteration, so a seeded sampler draws a permutation that is a pure function of
``(seed, epoch)``.  Under sharding this is a correctness requirement: all
shard runners must derive the same base permutation each epoch for their
disjoint shards to cover the dataset exactly once.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterator, List, Mapping, Optional, Protocol, Tuple

from repro.cache import BatchCache, CachedEpochSource
from repro.core.flexible_batch import FlexibleBatcher, recommend_producer_batch_size
from repro.core.pipeline import StagedItem, StagePipeline
from repro.obs import trace as obs_trace
from repro.obs.metrics import counter
from repro.tensor.payload import BatchPayload
from repro.tensor.shared_memory import SharedMemoryPool
from repro.tensor.tensor import Tensor

__all__ = ["EpochHost", "EpochRunner", "SkipEpoch", "staged_segment_names"]

#: Stall-attribution components (cumulative seconds) and volume counters.
_LOAD_SECONDS = counter("repro.producer.stall.load_seconds")
_STAGE_SECONDS = counter("repro.producer.stall.stage_seconds")
_BATCHES_LOADED = counter("repro.producer.batches_loaded")
_CACHE_REPLAYS = counter("repro.producer.cache_replays")


class SkipEpoch(Exception):
    """Signal from the host: abandon the current epoch (e.g. every consumer left)."""


def staged_segment_names(staged: Mapping[str, Tensor]) -> Tuple[str, ...]:
    """Unique segment names backing a staged batch (for hold accounting)."""
    return tuple(
        dict.fromkeys(
            tensor.segment.name for tensor in staged.values() if tensor.segment is not None
        )
    )


class EpochHost(Protocol):
    """What an :class:`EpochRunner` needs from whoever owns the connections."""

    @property
    def stopped(self) -> bool:
        """Whether the host wants the epoch loop to stop after the current batch."""

    def wait_for_capacity(self) -> None:
        """Block until every active consumer can take another batch.

        May raise :class:`SkipEpoch` to abandon the epoch entirely.
        """

    def active_consumer_ids(self) -> List[str]:
        """Consumers the next batch should be published to."""

    def publish(
        self, payload: BatchPayload, consumers: List[str], *, topic: str = "broadcast"
    ) -> None:
        """Retain per-consumer holds, record the batch in the ledger, send it."""

    def retain_for_window(self, payload: BatchPayload, batch_index: int) -> bool:
        """Offer the payload to the host's replay window.

        Returns True when the host keeps the producer hold alive (the runner
        must then not release it).
        """

    def batch_size_for(self, consumer_id: str) -> Optional[int]:
        """The batch size a consumer announced, if any (flexible batching)."""

    def consumer_batch_sizes(self) -> Dict[str, int]:
        """Announced batch sizes of every active consumer (flexible batching)."""


class EpochRunner:
    """Run epochs over a data loader, publishing through an :class:`EpochHost`.

    The runner is the paper's load (step 0/1) → stage (step 2) → publish
    (step 3) loop with all of PR 3's overlap machinery and PR 4's epoch-cache
    integration, but no sockets: the host supplies flow control and delivery.
    One runner serves one loader; a sharded producer group instantiates one
    runner per shard.
    """

    def __init__(
        self,
        data_loader,
        *,
        pool: SharedMemoryPool,
        config,
        host: EpochHost,
        cache: Optional[BatchCache] = None,
        identity: str = "epoch-runner",
    ) -> None:
        self.loader = data_loader
        self.pool = pool
        self.config = config
        self.host = host
        self.cache = cache
        self.identity = identity

        #: Current epoch number (set by :meth:`run`).
        self.epoch = 0
        #: Batches published so far in the current epoch (the host reads this
        #: for rubberband admission and the EPOCH_END announcement).
        self.batches_published_this_epoch = 0
        #: Flexible-mode slice sequence number, reset every epoch.
        self.publish_seq = 0
        #: Total batches staged over the runner's lifetime.
        self.batches_loaded = 0
        #: The flexible batcher of the current epoch, if flexible mode is on.
        self.flexible: Optional[FlexibleBatcher] = None

    # ------------------------------------------------------------------ epoch lifecycle
    def begin_epoch(self, epoch: int) -> None:
        """Reset per-epoch counters (eagerly, before the lazy generator runs).

        Flexible-mode slice numbering restarts every epoch; without the
        reset, batch indices drift upward epoch over epoch.
        """
        self.epoch = epoch
        self.batches_published_this_epoch = 0
        self.publish_seq = 0

    def run(self, epoch: int) -> Iterator[int]:
        """One epoch's publish loop; yields running batch counts for progress."""
        self.epoch = epoch
        self._set_sampler_epoch(epoch)
        if self.config.flexible_batching:
            return self._run_epoch_flexible()
        return self._run_epoch_default()

    def _set_sampler_epoch(self, epoch: int) -> None:
        """Pin the sampler's permutation to this epoch before iterating.

        Makes the epoch's sample order a pure function of ``(seed, epoch)``:
        two runners constructed from equal loaders draw identical
        permutations each epoch — the property shard groups rely on for
        disjoint coverage — while successive epochs still reshuffle.
        """
        set_epoch = getattr(self.loader, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(epoch)

    def loader_sized(self) -> bool:
        try:
            len(self.loader)
            return True
        except TypeError:
            return False

    # ------------------------------------------------------------------ staging
    def _stage_batch(self, batch: Mapping[str, Tensor]) -> Dict[str, Tensor]:
        """Copy a loader batch into shared memory on the share device (step 2).

        Runs on the stage worker when ``pipeline_depth > 1``; it only touches
        the pool (thread-safe) and the ``batches_loaded`` counter (written by
        exactly one staging thread).
        """
        started = time.monotonic()
        converted = {
            name: tensor.to(self.config.share_device) for name, tensor in batch.items()
        }
        # One slab segment per batch: every tensor (data + labels) lands at an
        # aligned offset of a single allocation, so the batch publishes as one
        # handle and consumers attach once instead of once per tensor.
        staged = self.pool.share_batch(converted, initial_refcount=1)
        self.batches_loaded += 1
        _BATCHES_LOADED.inc()
        _STAGE_SECONDS.inc(time.monotonic() - started)
        return staged

    def _timed_source(self, pairs) -> Iterator[Tuple[int, Tuple]]:
        """Time the loader side of an ``(index, batch)`` stream.

        Yields ``(index, (batch, t_sampled, t_loaded))``: the monotonic
        stamps bracketing the loader's work become the ``sampled``/``loaded``
        stages of the batch's lifecycle trace, and the delta accumulates into
        the load component of the producer's stall attribution.  (At
        ``pipeline_depth > 1`` this runs on the stage worker, so load seconds
        measure loader occupancy, which overlaps the publish loop.)
        """
        it = iter(pairs)
        while True:
            t_sampled = time.monotonic()
            try:
                index, batch = next(it)
            except StopIteration:
                return
            t_loaded = time.monotonic()
            _LOAD_SECONDS.inc(t_loaded - t_sampled)
            yield index, (batch, t_sampled, t_loaded)

    def _timed_iter(self, source) -> Iterator:
        """Like :meth:`_timed_source` for a bare batch stream (flexible mode:
        indices are assigned after re-chunking, so only load time is kept)."""
        it = iter(source)
        while True:
            t_sampled = time.monotonic()
            try:
                batch = next(it)
            except StopIteration:
                return
            _LOAD_SECONDS.inc(time.monotonic() - t_sampled)
            yield batch

    # ------------------------------------------------------------------ pipeline plumbing
    def _pipeline_loader_workers(self) -> Optional[int]:
        """Loader worker threads the staged pipeline may use (None = loader default)."""
        if self.config.pipeline_workers is not None:
            return self.config.pipeline_workers
        if getattr(self.loader, "num_workers", 0):
            return None  # the loader already has its own workers; keep them
        return min(4, self.config.pipeline_depth)

    def _open_loader_iter(self):
        """Start one epoch's iteration over the nested loader.

        With an overlapped pipeline the loader is asked for a prefetching
        iterator whose in-flight budget matches ``pipeline_depth``, so the
        pipeline's bound covers loader-internal prefetch too.
        """
        depth = self.config.pipeline_depth
        if depth > 1 and hasattr(self.loader, "prefetch_iter"):
            return self.loader.prefetch_iter(
                max_in_flight=depth, num_workers=self._pipeline_loader_workers()
            )
        return iter(self.loader)

    def _make_pipeline(self, source, stage_fn, source_close=None) -> StagePipeline:
        return StagePipeline(
            source,
            stage_fn,
            depth=self.config.pipeline_depth,
            release_fn=self.release_staged,
            source_close=source_close,
            name=f"repro-{self.identity}-stage",
        )

    def release_staged(self, item: StagedItem) -> None:
        """Return the producer holds of a staged item that will never publish."""
        for name in item.segment_names:
            self.pool.release_if_present(name)

    def _release_producer_hold(self, payload: BatchPayload) -> None:
        for name in payload.segment_names:
            self.pool.release_if_present(name)

    # ------------------------------------------------------------------ default-mode epoch
    def _run_epoch_default(self) -> Iterator[int]:
        """Publish one epoch from a stream of already-staged payloads.

        Load + stage run inside the :class:`StagePipeline` (inline at
        ``pipeline_depth=1``, on the stage worker otherwise); this loop only
        does capacity waits, publishing and control work.  Every staged item
        that cannot be published (stop, skip-epoch, no consumers) has its
        producer hold released before the loop moves on, and the ``finally``
        drain covers whatever the pipeline still had in flight.

        With an epoch cache enabled, the epoch is planned against a
        :class:`~repro.cache.CachedEpochSource`: cached batch indices are
        republished straight from their retained segments (no loader, no
        stage worker, no copy — just a fresh producer hold and a re-keyed
        payload), only the misses flow through the pipeline, and every
        published miss is offered to the cache post-stage.
        """
        host = self.host
        total = len(self.loader) if self.loader_sized() else None
        epoch = self.epoch
        overlapped = self.config.pipeline_depth > 1
        source = (
            CachedEpochSource(self.cache, self.loader, epoch=epoch)
            if self.cache is not None
            else None
        )

        def pack_payload(index, loaded) -> BatchPayload:
            # ``loaded`` is a (batch, t_sampled, t_loaded) triple from
            # _timed_source; the stamps seed the batch's lifecycle trace,
            # which travels in the payload metadata (inproc and tcp alike).
            batch, t_sampled, t_loaded = loaded
            staged = self._stage_batch(batch)
            trace = {"sampled": t_sampled, "loaded": t_loaded, "staged": time.monotonic()}
            return BatchPayload.pack(
                staged,
                batch_index=index,
                epoch=epoch,
                is_last_in_epoch=total is not None and index == total - 1,
                metadata={"trace": trace, "trace_origin": obs_trace.origin()},
            )

        def stage(indexed) -> StagedItem:
            index, loaded = indexed
            if not overlapped:
                # Depth 1 keeps the classic order — load, wait for capacity,
                # *then* stage: the batch passes through raw and is staged at
                # publish time, so no shared memory is held during waits and
                # skipped batches never touch the pool.
                return StagedItem(index=index, value=loaded)
            payload = pack_payload(index, loaded)
            return StagedItem(index=index, value=payload, segment_names=payload.segment_names)

        if source is None or source.all_miss:
            # No cache, or nothing cached yet (epoch 0): the classic path —
            # the full loader, with its own prefetch workers, feeds the
            # pipeline directly.
            loader_iter = self._open_loader_iter()
            if source is not None and total is not None:
                # Pin this sampler draw as THE composition future cached
                # epochs serve — hits and reloaded misses alike — so a
                # reshuffling sampler cannot skew per-epoch sample coverage.
                sampled = getattr(loader_iter, "sampled_batches", None)
                if sampled is not None:
                    self.cache.remember_composition(sampled)
            pipeline: Optional[StagePipeline] = self._make_pipeline(
                self._timed_source(enumerate(loader_iter)),
                stage,
                source_close=getattr(loader_iter, "close", None),
            )
            stream: Iterator[StagedItem] = iter(pipeline)
        elif source.full_replay:
            # Every batch is cached: the loader is never opened and no
            # pipeline runs; the epoch is pure republishing.
            pipeline = None
            stream = self._cached_item_stream(source, iter(()))
        else:
            # Partial cache: only the misses are loaded — through the
            # loader's own prefetch workers, from the composition the cache
            # was filled with — and staged; the hit stream interleaves with
            # them in batch-index order.
            misses, miss_close = source.open_misses(
                max_in_flight=self.config.pipeline_depth if overlapped else None,
                num_workers=self._pipeline_loader_workers() if overlapped else 0,
            )
            pipeline = self._make_pipeline(
                self._timed_source(misses), stage, source_close=miss_close
            )
            stream = self._cached_item_stream(source, iter(pipeline))
        try:
            for item in stream:
                if host.stopped:
                    self.release_staged(item)
                    break
                try:
                    host.wait_for_capacity()
                except SkipEpoch:
                    self.release_staged(item)
                    raise
                if host.stopped:
                    self.release_staged(item)
                    break
                active = host.active_consumer_ids()
                if not active:
                    # Nobody to serve right now (free-running mode, or the
                    # wait was cut short by stop()): skip this batch and
                    # return its staging hold, if it has one.
                    self.release_staged(item)
                    continue
                if isinstance(item.value, BatchPayload):
                    payload: BatchPayload = item.value
                else:
                    payload = pack_payload(item.index, item.value)
                    item.value = payload
                    item.segment_names = payload.segment_names
                host.publish(payload, active)
                if source is not None and not item.from_cache:
                    # Offer the freshly staged miss to the cache while the
                    # publish holds still pin its segments.
                    source.record(item.index, payload)
                if not host.retain_for_window(payload, item.index):
                    self._release_producer_hold(payload)
                self.batches_published_this_epoch = item.index + 1
                yield item.index + 1
        finally:
            if pipeline is not None:
                pipeline.close()
            if source is not None:
                source.finish(
                    self.batches_published_this_epoch,
                    complete=total is not None
                    and self.batches_published_this_epoch == total,
                )

    def _cached_item_stream(
        self, source: CachedEpochSource, miss_iter: Iterator[StagedItem]
    ) -> Iterator[StagedItem]:
        """Interleave cache hits with pipeline-staged misses in index order.

        A hit that was evicted between planning and use falls back to a
        synchronous load (raw item, staged at publish time like a depth-1
        miss) so the epoch never loses a batch.
        """
        for index in range(source.total):
            if index in source.plan:
                hit_at = time.monotonic()
                payload = source.hit(index)
                if payload is None:
                    t_sampled = time.monotonic()
                    batch = source.load_batch(index)
                    t_loaded = time.monotonic()
                    _LOAD_SECONDS.inc(t_loaded - t_sampled)
                    yield StagedItem(index=index, value=(batch, t_sampled, t_loaded))
                else:
                    # The cached entry's metadata dict is shared across
                    # replays; give the republished payload a fresh trace (a
                    # hit samples/loads/stages in one step) instead of
                    # mutating the shared dict.
                    _CACHE_REPLAYS.inc()
                    payload = dataclasses.replace(
                        payload,
                        metadata={
                            "trace": {
                                "sampled": hit_at,
                                "loaded": hit_at,
                                "staged": hit_at,
                            },
                            "trace_origin": obs_trace.origin(),
                        },
                    )
                    yield StagedItem(
                        index=index,
                        value=payload,
                        segment_names=payload.segment_names,
                        from_cache=True,
                    )
            else:
                yield next(miss_iter)

    # ------------------------------------------------------------------ flexible-mode epoch
    def _build_flexible_batcher(self) -> FlexibleBatcher:
        sizes = self.host.consumer_batch_sizes()
        if not sizes:
            raise RuntimeError(
                "flexible batching requires every active consumer to announce a batch size"
            )
        producer_batch = self.config.producer_batch_size or recommend_producer_batch_size(
            list(sizes.values())
        )
        return FlexibleBatcher(
            producer_batch,
            sizes,
            use_offsets=self.config.consumer_offsets,
            shuffle_slices=self.config.shuffle_slices,
            seed=self.config.seed,
        )

    def _run_epoch_flexible(self) -> Iterator[int]:
        host = self.host
        # Wait for at least one consumer before fixing producer-batch geometry.
        host.wait_for_capacity()
        self.flexible = self._build_flexible_batcher()

        # Flexible batching re-chunks the loader's sequential stream, so a
        # *partial* cache cannot serve selected producer batches — replay is
        # all-or-nothing.  A fully cached epoch with matching producer-batch
        # geometry replays straight from shared memory; anything less is
        # flushed (stale geometry or an incomplete epoch would pin segments
        # that can never be hits).
        if self.cache is not None:
            replay_len = self.cache.replayable_epoch_length(
                rows=self.flexible.producer_batch_size
            )
            if replay_len is not None:
                yield from self._replay_epoch_flexible(replay_len)
                return
            if len(self.cache):
                self.cache.clear()

        loader_iter = self._open_loader_iter()

        # With pipeline_depth > 1 this generator (and the staging below) runs
        # on the stage worker.  It only touches the batcher's accumulation
        # state (_carry, counters); the main thread touches only the slicing
        # side (add_consumer / carve / has_consumer read-modify
        # consumer_batch_sizes).  The two halves are disjoint, so no lock is
        # needed between them.
        def producer_batches():
            index = 0
            for batch in self._timed_iter(loader_iter):
                if host.stopped:
                    return
                for producer_batch in self.flexible.add_loader_batch(batch):
                    yield index, producer_batch
                    index += 1

        overlapped = self.config.pipeline_depth > 1

        def stage(indexed) -> StagedItem:
            index, producer_batch = indexed
            if not overlapped:
                # Depth 1: pass the producer batch through raw; staging
                # happens in _emit_staged_batch after the capacity wait and
                # active-consumer check, exactly like the classic loop.
                return StagedItem(index=index, value=producer_batch)
            staged = self._stage_batch(producer_batch)
            return StagedItem(
                index=index, value=staged, segment_names=staged_segment_names(staged)
            )

        pipeline = self._make_pipeline(
            producer_batches(), stage, source_close=getattr(loader_iter, "close", None)
        )
        producer_batch_index = 0
        completed = False
        try:
            for item in pipeline:
                if host.stopped:
                    self.release_staged(item)
                    break
                self._emit_staged_batch(item)
                producer_batch_index = item.index + 1
                yield producer_batch_index
            else:
                completed = not host.stopped
        finally:
            pipeline.close()
        self.batches_published_this_epoch = producer_batch_index
        if self.cache is not None and completed:
            # Replayable only if every producer batch actually stayed
            # resident (mark_epoch_complete re-verifies the index range).
            self.cache.mark_epoch_complete(producer_batch_index)

    def _replay_epoch_flexible(self, replay_len: int) -> Iterator[int]:
        """Serve one flexible epoch entirely from cached producer batches.

        Each staged producer batch is republished with a fresh producer hold
        (no loader, no stage worker, no copy) and carved into per-consumer
        slices by the regular emit path, which also returns the hold on every
        exit.
        """
        producer_batch_index = 0
        for index in range(replay_len):
            if self.host.stopped:
                break
            staged = self.cache.republish_staged(index)
            if staged is None:  # pragma: no cover - nothing evicts mid-replay
                raise RuntimeError(
                    f"cached producer batch {index} vanished during a full replay"
                )
            _CACHE_REPLAYS.inc()
            item = StagedItem(
                index=index,
                value=staged,
                segment_names=staged_segment_names(staged),
                from_cache=True,
            )
            self._emit_staged_batch(item)
            producer_batch_index = index + 1
            yield producer_batch_index
        self.batches_published_this_epoch = producer_batch_index

    def _emit_staged_batch(self, item: StagedItem) -> None:
        """Carve one already-staged producer batch into per-consumer slices.

        The staging hold travels with ``item``; the ``finally`` returns it on
        every exit path (publish, stop, skip-epoch) so an interrupted emit
        cannot leak its producer batch.  At ``pipeline_depth=1`` the item
        arrives raw and is staged here, after the capacity wait and
        active-consumer check (the classic order); early exits then never
        touch the pool.
        """
        host = self.host
        index = item.index
        try:
            host.wait_for_capacity()
            active = host.active_consumer_ids()
            if not active or host.stopped:
                return
            # Consumers admitted after the batcher was built get their own
            # slicing plan over the existing producer-batch geometry.
            for consumer_id in active:
                if not self.flexible.has_consumer(consumer_id):
                    batch_size = host.batch_size_for(consumer_id)
                    if batch_size:
                        self.flexible.add_consumer(consumer_id, int(batch_size))
            if not item.segment_names:  # raw item: stage now
                staged = self._stage_batch(item.value)
                item.value = staged
                item.segment_names = staged_segment_names(staged)
            staged = item.value
            staged_at = time.monotonic()
            for consumer_id in active:
                if not self.flexible.has_consumer(consumer_id):
                    continue
                slices = self.flexible.carve(staged, consumer_id, index)
                for slice_batch in slices:
                    host.wait_for_capacity()
                    if consumer_id not in host.active_consumer_ids():
                        break
                    self.publish_seq += 1
                    # Flexible slices are re-chunked from the loader stream,
                    # so per-slice sampled/loaded stamps do not exist; their
                    # lifecycle trace starts at the staging step.
                    payload = BatchPayload.pack(
                        slice_batch,
                        batch_index=self.publish_seq,
                        epoch=self.epoch,
                        producer_batch_id=index,
                        metadata={
                            "trace": {"staged": staged_at},
                            "trace_origin": obs_trace.origin(),
                        },
                    )
                    host.publish(payload, [consumer_id], topic=f"consumer/{consumer_id}")
            self.batches_published_this_epoch = index + 1
            if self.cache is not None and not item.from_cache:
                # Retain the whole staged producer batch (pre-carve) so a
                # repeat epoch can re-slice it for whatever consumers are
                # registered then.
                self.cache.record_miss()
                first = next(iter(staged.values()))
                self.cache.put(
                    index,
                    staged,
                    segment_names=item.segment_names,
                    nbytes=sum(t.nbytes for t in staged.values()),
                    rows=first.shape[0] if first.shape else 0,
                )
        finally:
            # The producer's own hold on the staged producer batch.
            self.release_staged(item)

    def __repr__(self) -> str:
        return (
            f"EpochRunner({self.identity!r}, epoch={self.epoch}, "
            f"loaded={self.batches_loaded})"
        )
