"""The consumer-side batch buffer.

Paper Section 3.2.5: "Instead of actively requesting the next batch on
iteration, consumers can hold up to N batches (i.e., pointers to the tensors
of batches) in their buffer.  This allows for the producer to actively
pre-fetch data, and for the consumers to drift at most N batches apart."

The buffer holds *payloads* (pointer packets), not tensor bytes, so its memory
footprint is negligible; the GPU memory cost of buffering is accounted on the
producer side where the staged batches live.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.tensor.payload import BatchPayload


class BatchBuffer:
    """A bounded FIFO of batch payloads held by one consumer."""

    def __init__(self, capacity: int = 2) -> None:
        if capacity < 1:
            raise ValueError("batch buffer capacity must be at least 1")
        self.capacity = int(capacity)
        self._buffer: Deque[BatchPayload] = deque()
        self.total_enqueued = 0
        self.total_dequeued = 0
        self.high_water_mark = 0

    # -- producer side (fill) -------------------------------------------------------
    @property
    def has_room(self) -> bool:
        return len(self._buffer) < self.capacity

    def put(self, payload: BatchPayload) -> None:
        """Add a payload; raises if the buffer is full (flow control should prevent it)."""
        if not self.has_room:
            raise OverflowError(
                f"batch buffer is full (capacity={self.capacity}); the producer "
                "should not have published this batch yet"
            )
        self._buffer.append(payload)
        self.total_enqueued += 1
        self.high_water_mark = max(self.high_water_mark, len(self._buffer))

    def put_many(self, payloads: Iterable[BatchPayload]) -> int:
        count = 0
        for payload in payloads:
            self.put(payload)
            count += 1
        return count

    # -- consumer side (drain) ---------------------------------------------------------
    def get(self) -> Optional[BatchPayload]:
        """Pop the oldest payload, or ``None`` when the buffer is empty."""
        if not self._buffer:
            return None
        payload = self._buffer.popleft()
        self.total_dequeued += 1
        return payload

    def peek(self) -> Optional[BatchPayload]:
        return self._buffer[0] if self._buffer else None

    def clear(self) -> List[BatchPayload]:
        """Drop everything (used on shutdown); returns what was dropped."""
        dropped = list(self._buffer)
        self._buffer.clear()
        return dropped

    # -- introspection --------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def is_empty(self) -> bool:
        return not self._buffer

    @property
    def drift(self) -> int:
        """How many batches this consumer currently lags the producer by."""
        return len(self._buffer)

    def __repr__(self) -> str:
        return f"BatchBuffer(size={len(self._buffer)}/{self.capacity})"
