"""Convenience wrapper hosting a producer thread and handing out consumers.

The paper deploys the producer as a long-lived server process (Section 3.3.1).
In-process users — the examples, tests and notebooks — usually want the same
thing without managing threads by hand: :class:`SharedLoaderSession` runs the
producer loop on a background thread, exposes a factory for connected
consumers, and tears everything down cleanly.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.core.config import ConsumerConfig, ProducerConfig
from repro.core.consumer import TensorConsumer
from repro.core.producer import TensorProducer
from repro.messaging.transport import InProcHub
from repro.tensor.shared_memory import SharedMemoryPool


class SharedLoaderSession:
    """Run a :class:`TensorProducer` on a background thread and create consumers."""

    def __init__(
        self,
        data_loader,
        *,
        producer_config: Optional[ProducerConfig] = None,
        hub: Optional[InProcHub] = None,
        pool: Optional[SharedMemoryPool] = None,
    ) -> None:
        self.hub = hub or InProcHub()
        self.pool = pool or SharedMemoryPool()
        self.producer = TensorProducer(
            data_loader,
            hub=self.hub,
            config=producer_config or ProducerConfig(),
            pool=self.pool,
        )
        self._thread: Optional[threading.Thread] = None
        self._consumers: List[TensorConsumer] = []
        self._producer_error: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> "SharedLoaderSession":
        """Start the producer loop on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("session already started")
        self._thread = threading.Thread(target=self._run_producer, daemon=True, name="producer")
        self._thread.start()
        return self

    def _run_producer(self) -> None:
        try:
            for _ in self.producer:
                pass
            self.producer.join()
        except BaseException as exc:  # pragma: no cover - surfaced via raise_producer_error
            self._producer_error = exc

    def consumer(self, config: Optional[ConsumerConfig] = None) -> TensorConsumer:
        """Create a consumer connected to this session's producer."""
        consumer = TensorConsumer(hub=self.hub, pool=self.pool, config=config)
        self._consumers.append(consumer)
        return consumer

    def raise_producer_error(self) -> None:
        """Re-raise any exception the producer thread died with."""
        if self._producer_error is not None:
            raise self._producer_error

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the producer, close consumers and release shared memory."""
        self.producer.stop()
        for consumer in self._consumers:
            consumer.close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self.pool.shutdown()
        self.raise_producer_error()

    def __enter__(self) -> "SharedLoaderSession":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def is_running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()
