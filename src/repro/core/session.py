"""Run a producer as an addressable, long-lived service inside this process.

The paper deploys the producer as a long-lived server that trainers reach by
address (Section 3.3.1).  :class:`SharedLoaderSession` is that server: it
binds the session's URI address through the transport registry
(:mod:`repro.messaging.endpoint`), runs the producer loop on a background
thread, and registers itself in a process-wide directory so that consumers in
*other* threads can attach with nothing but the address string::

    session = repro.serve(loader, address="inproc://cifar")   # producer side

    consumer = repro.attach("inproc://cifar")                  # any thread
    for batch in consumer:
        ...

Serving a ``tcp://`` address makes the same session reachable from other OS
processes: the transport runs a broker thread behind the address and stages
batches in posix shared memory, so ``repro.attach(session.address)`` works
from a ``multiprocessing.Process`` (or any separate script) unchanged.

Explicit ``hub=`` / ``pool=`` arguments (and non-URI addresses) keep working
as before for callers that prefer to wire objects together by hand; in that
mode the session is simply not discoverable by address.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Dict, List, Optional

from repro.core.config import ConsumerConfig, ProducerConfig
from repro.core.consumer import TensorConsumer
from repro.core.manifest import SessionManifest
from repro.core.producer import TensorProducer
from repro.messaging.transport import InProcHub
from repro.tensor.shared_memory import SharedMemoryPool

# Directory of live sessions keyed by URI address, so repro.attach() can hand
# out consumers without the caller holding the session object.  Sharded
# sessions (repro.core.group.ShardedLoaderSession) register here too; every
# entry answers .consumer(config) / .shutdown() / .stats().
_SESSIONS_LOCK = threading.Lock()
_SESSIONS: Dict[str, object] = {}  #: guarded by _SESSIONS_LOCK


def register_session(address: str, session) -> None:
    """Put a live session in the process-wide directory (group sessions too)."""
    with _SESSIONS_LOCK:
        _SESSIONS[address] = session


def unregister_session(address: str, session) -> None:
    """Remove a session from the directory if it still owns the entry."""
    with _SESSIONS_LOCK:
        if _SESSIONS.get(address) is session:
            del _SESSIONS[address]


def live_sessions() -> Dict[str, object]:
    """A snapshot of the directory (brokers use it for prefix resolution)."""
    with _SESSIONS_LOCK:
        return dict(_SESSIONS)


class DescribeService:
    """Answer ``{address}/group`` describe requests with a session manifest.

    Cross-process consumers cannot reach the in-process session directory, so
    every serving session (plain and sharded) binds a tiny REQ/REP responder
    next to its data channels.  ``repro.attach`` asks it how the address is
    shaped — ``{"shards": 1}`` for a plain session, the member manifest for a
    sharded one — and builds the matching consumer.
    """

    def __init__(self, hub, address: str, manifest: Dict[str, object]) -> None:
        from repro.messaging.sockets import RepSocket

        self._rep = RepSocket(hub, f"{address}/group", identity=f"describe-{address}")
        self._manifest = dict(manifest)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, daemon=True, name="repro-session-describe"
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                request = self._rep.recv(timeout=0.2)
            except Exception:
                continue
            try:
                self._rep.reply(request, dict(self._manifest))
            except Exception:
                pass  # requester vanished; keep serving others

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._rep.close()


class SharedLoaderSession:
    """Run a :class:`TensorProducer` on a background thread and create consumers."""

    def __init__(
        self,
        data_loader,
        *,
        address: Optional[str] = None,
        producer_config: Optional[ProducerConfig] = None,
        hub: Optional[InProcHub] = None,
        pool: Optional[SharedMemoryPool] = None,
        embedded: bool = False,
        dataset: Optional[str] = None,
    ) -> None:
        if embedded and (hub is None or address is None):
            raise ValueError(
                "an embedded session rides a shared transport: pass both hub= "
                "and address= (the broker owns the bind)"
            )
        self.producer = TensorProducer(
            data_loader,
            address=address,
            hub=hub,
            config=producer_config or ProducerConfig(),
            pool=pool,
        )
        self.hub = self.producer.hub
        self.pool = self.producer.pool
        self.address = self.producer.address
        self.dataset = dataset
        self._embedded = embedded
        self._thread: Optional[threading.Thread] = None
        self._consumers: List[TensorConsumer] = []
        self._producer_error: Optional[BaseException] = None
        self._shutdown = False
        self._owner_pid = os.getpid()
        self._describe: Optional[DescribeService] = None
        self._metrics_service = None
        if self.producer.owns_address or embedded:
            # The producer's endpoint bind guarantees the address was free, so
            # this cannot clobber another live session.  Sessions wired from
            # an explicit hub= never bound the address and stay out of the
            # directory even when their config names a URI — unless they are
            # embedded into a broker's transport, whose mount path guarantees
            # uniqueness under the broker's base address instead.
            register_session(self.address, self)
            # Remote attachers (who cannot see the directory) ask this
            # responder how the address is shaped; one shard = plain consumer.
            try:
                self._describe = DescribeService(
                    self.hub, self.address, self.manifest().to_dict()
                )
            except Exception:
                self._describe = None  # a hub without bind support; discovery off
            # The observability channel: snapshot/prometheus on
            # {address}/metrics (see repro.obs.service).
            try:
                from repro.obs.service import MetricsService

                self._metrics_service = MetricsService(
                    self.hub, self.address, stats_fn=self.stats
                )
            except Exception:
                self._metrics_service = None

    def manifest(self) -> SessionManifest:
        """This session's shape in the unified describe/catalog schema."""
        return SessionManifest(
            address=self.address,
            kind="dataset" if self.dataset is not None else "session",
            shards=1,
            dataset=self.dataset,
        )

    # -- discovery ---------------------------------------------------------------------
    @classmethod
    def at(cls, address: str) -> Optional["SharedLoaderSession"]:
        """The live session serving ``address`` in this process, if any."""
        with _SESSIONS_LOCK:
            session = _SESSIONS.get(address)
        if session is not None and session._owner_pid != os.getpid():
            # A fork()ed child inherits the parent's directory, but not its
            # producer thread: the entry is stale here.  Attaching must fall
            # through to a real transport connect (e.g. tcp:// back to the
            # parent's broker) instead of a dead in-process hub.
            return None
        return session

    # -- lifecycle ---------------------------------------------------------------------
    def start(self) -> "SharedLoaderSession":
        """Start the producer loop on a daemon thread."""
        if self._shutdown:
            raise RuntimeError(
                f"session at {self.address!r} has been shut down; "
                f"create a new session to serve again"
            )
        if self._thread is not None:
            raise RuntimeError("session already started")
        self._thread = threading.Thread(
            target=self._run_producer, daemon=True, name="repro-producer"
        )
        self._thread.start()
        return self

    def _run_producer(self) -> None:
        try:
            for _ in self.producer:
                pass
            self.producer.join()
        except BaseException as exc:  # pragma: no cover - surfaced via raise_producer_error
            self._producer_error = exc

    def consumer(self, config: Optional[ConsumerConfig] = None) -> TensorConsumer:
        """Create a consumer connected to this session's producer."""
        if self._shutdown:
            raise RuntimeError(
                f"session at {self.address!r} has been shut down; its producer is "
                f"stopped and cannot serve new consumers"
            )
        config = config or ConsumerConfig()
        if config.address != self.address:
            # Consumers created through the session always speak to this
            # session's channels, whatever their config said.
            config = dataclasses.replace(config, address=self.address)
        consumer = TensorConsumer(hub=self.hub, pool=self.pool, config=config)
        self._consumers.append(consumer)
        return consumer

    # Alias matching the module-level repro.attach() vocabulary.
    attach = consumer

    def stats(self) -> Dict[str, object]:
        """One snapshot of the whole session: producer, cache, consumers.

        The producer entry carries the epoch-cache counters
        (``stats()["producer"]["cache"]`` — hits, misses, evictions,
        cached_bytes) alongside the pool's two memory buckets, so a
        monitoring loop needs exactly one call.
        """
        return {
            "address": self.address,
            "running": self.is_running,
            "producer": self.producer.stats(),
            "consumers": [consumer.stats() for consumer in self._consumers],
        }

    @property
    def cache_stats(self) -> Dict[str, object]:
        """Shortcut to the producer's epoch-cache counters."""
        return self.producer.stats()["cache"]

    def raise_producer_error(self) -> None:
        """Re-raise any exception the producer thread died with."""
        if self._producer_error is not None:
            raise self._producer_error

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the producer, close consumers and release shared memory.

        Exception-safe: every teardown step runs even if an earlier one
        raises (a consumer ``close()`` failing must not leak the pool or the
        address registration).  The first consumer-close error — and any error
        the producer thread died with — is re-raised at the end.
        """
        if self._shutdown:
            return
        self._shutdown = True
        close_error: Optional[BaseException] = None
        try:
            self.producer.stop()
            for consumer in self._consumers:
                try:
                    consumer.close()
                except BaseException as exc:
                    if close_error is None:
                        close_error = exc
            if self._thread is not None:
                self._thread.join(timeout=timeout)
        finally:
            unregister_session(self.address, self)
            if self._describe is not None:
                self._describe.stop()
            if self._metrics_service is not None:
                self._metrics_service.stop()
            try:
                if not self._embedded:
                    # An embedded session's pool is the broker's shared pool
                    # (scoped to this tenant): its bytes drain through normal
                    # releases above, and other tenants' segments live on.
                    self.pool.shutdown()
            finally:
                # Normally released by the producer thread's join(); covers
                # producers that errored out before reaching it.
                self.producer.close_endpoint()
        self.raise_producer_error()
        if close_error is not None:
            raise close_error

    def __enter__(self) -> "SharedLoaderSession":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def is_running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __repr__(self) -> str:
        state = "shutdown" if self._shutdown else ("running" if self.is_running else "idle")
        return (
            f"SharedLoaderSession(address={self.address!r}, state={state}, "
            f"consumers={len(self._consumers)})"
        )
