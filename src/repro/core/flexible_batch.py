"""Flexible batch sizing: producer batches, per-consumer slices, repetition.

Paper Section 3.2.6 and Figure 5.  Under flexible batching the producer
collates the nested loader's output into large *producer batches* (a
contiguous block of rows) and every consumer receives row-slices of its own
requested batch size.  Consumers therefore traverse the data at the same rate
even though their batch sizes differ.  When a consumer's batch size does not
divide the producer batch size, the last slice is completed by wrapping around
to the start of the producer batch, repeating a few rows; the repetition per
producer batch is bounded by ``max(consumer batch sizes) - 1`` and the paper
recommends producer batches at least twice the largest consumer batch so the
repeated share never exceeds 50%.

Section 3.2.7's batch-order variation is implemented here too: per-consumer
*offsets* rotate where carving starts, and *shuffling* permutes the order in
which a consumer visits its slices of a producer batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.tensor.tensor import Tensor, cat


@dataclass(frozen=True)
class SliceSpec:
    """One consumer batch carved from a producer batch.

    The slice is a circular range of ``length`` rows starting at ``start``;
    ``primary`` covers rows ``[start, primary_stop)`` and, if the range wraps
    past the end of the producer batch, ``wrapped`` covers the remaining rows
    taken from the beginning.
    """

    start: int
    length: int
    producer_batch_size: int

    def __post_init__(self) -> None:
        if not (0 <= self.start < self.producer_batch_size):
            raise ValueError("slice start must lie inside the producer batch")
        if not (0 < self.length <= self.producer_batch_size):
            raise ValueError("slice length must be positive and fit the producer batch")

    @property
    def primary(self) -> Tuple[int, int]:
        return (self.start, min(self.start + self.length, self.producer_batch_size))

    @property
    def wrapped(self) -> Optional[Tuple[int, int]]:
        overflow = self.start + self.length - self.producer_batch_size
        if overflow <= 0:
            return None
        return (0, overflow)

    @property
    def is_contiguous(self) -> bool:
        return self.wrapped is None

    def row_indices(self) -> np.ndarray:
        """The producer-batch row indices this slice covers, in order."""
        return (np.arange(self.start, self.start + self.length) % self.producer_batch_size)


@dataclass
class ConsumerSlicePlan:
    """How one consumer traverses one producer batch."""

    consumer_id: str
    batch_size: int
    producer_batch_size: int
    slices: List[SliceSpec] = field(default_factory=list)

    @property
    def rows_served(self) -> int:
        return sum(s.length for s in self.slices)

    @property
    def repeated_rows(self) -> int:
        """Rows served beyond the unique producer-batch rows."""
        return self.rows_served - self.producer_batch_size

    @property
    def repeated_share(self) -> float:
        return self.repeated_rows / self.producer_batch_size

    def covered_rows(self) -> np.ndarray:
        """Unique producer-batch rows covered by the plan (should be all of them)."""
        if not self.slices:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([s.row_indices() for s in self.slices]))


def plan_slices(
    producer_batch_size: int,
    consumer_batch_size: int,
    *,
    consumer_id: str = "consumer",
    offset: int = 0,
    shuffle_seed: Optional[int] = None,
) -> ConsumerSlicePlan:
    """Plan how a consumer with ``consumer_batch_size`` traverses a producer batch.

    The number of slices is ``ceil(P / b)`` so every producer-batch row is
    served at least once; the final slice wraps to fill itself, repeating at
    most ``b - 1`` rows.
    """
    if producer_batch_size < 1:
        raise ValueError("producer_batch_size must be positive")
    if consumer_batch_size < 1:
        raise ValueError("consumer_batch_size must be positive")
    if consumer_batch_size > producer_batch_size:
        raise ValueError(
            f"consumer batch size {consumer_batch_size} exceeds producer batch size "
            f"{producer_batch_size}; increase producer_batch_size"
        )
    offset = int(offset) % producer_batch_size
    n_slices = math.ceil(producer_batch_size / consumer_batch_size)
    slices = [
        SliceSpec(
            start=(offset + i * consumer_batch_size) % producer_batch_size,
            length=consumer_batch_size,
            producer_batch_size=producer_batch_size,
        )
        for i in range(n_slices)
    ]
    if shuffle_seed is not None:
        order = np.random.default_rng(shuffle_seed).permutation(len(slices))
        slices = [slices[i] for i in order]
    return ConsumerSlicePlan(
        consumer_id=consumer_id,
        batch_size=consumer_batch_size,
        producer_batch_size=producer_batch_size,
        slices=slices,
    )


def recommend_producer_batch_size(consumer_batch_sizes: Sequence[int]) -> int:
    """The paper's guidance: at least twice the largest consumer batch.

    We additionally round up to the least common multiple when it is small, so
    that the common case of power-of-two batch sizes incurs zero repetition.
    """
    if not consumer_batch_sizes:
        raise ValueError("need at least one consumer batch size")
    sizes = [int(b) for b in consumer_batch_sizes]
    if any(b < 1 for b in sizes):
        raise ValueError("batch sizes must be positive")
    largest = max(sizes)
    baseline = 2 * largest
    lcm = sizes[0]
    for size in sizes[1:]:
        lcm = math.lcm(lcm, size)
        if lcm > 8 * largest:
            return baseline
    return max(baseline, lcm)


class FlexibleBatcher:
    """Builds producer batches and carves per-consumer slices from them.

    The batcher accumulates the nested loader's batches (whatever their size)
    into a contiguous producer batch of ``producer_batch_size`` rows, carrying
    any remainder over to the next producer batch so no loader rows are lost.
    """

    def __init__(
        self,
        producer_batch_size: int,
        consumer_batch_sizes: Mapping[str, int],
        *,
        use_offsets: bool = False,
        shuffle_slices: bool = False,
        seed: int = 0,
    ) -> None:
        if producer_batch_size < 1:
            raise ValueError("producer_batch_size must be positive")
        if not consumer_batch_sizes:
            raise ValueError("at least one consumer batch size is required")
        largest = max(consumer_batch_sizes.values())
        if largest > producer_batch_size:
            raise ValueError(
                f"producer batch size {producer_batch_size} is smaller than the largest "
                f"consumer batch size {largest}"
            )
        self.producer_batch_size = int(producer_batch_size)
        self.consumer_batch_sizes = dict(consumer_batch_sizes)
        self.use_offsets = bool(use_offsets)
        self.shuffle_slices = bool(shuffle_slices)
        self.seed = int(seed)
        self._carry: Optional[Dict[str, Tensor]] = None
        self._producer_batches_built = 0
        self.total_rows_consumed = 0

    # -- accumulation ------------------------------------------------------------------
    def add_loader_batch(self, batch: Mapping[str, Tensor]) -> List[Dict[str, Tensor]]:
        """Feed one nested-loader batch; returns zero or more full producer batches."""
        if self._carry is None:
            merged = dict(batch)
        else:
            merged = {key: cat([self._carry[key], batch[key]]) for key in self._carry}
        self._carry = merged
        self.total_rows_consumed += _rows(batch)

        ready: List[Dict[str, Tensor]] = []
        while self._carry is not None and _rows(self._carry) >= self.producer_batch_size:
            full = {
                key: tensor.slice_rows(0, self.producer_batch_size)
                for key, tensor in self._carry.items()
            }
            remaining_rows = _rows(self._carry) - self.producer_batch_size
            if remaining_rows > 0:
                self._carry = {
                    key: tensor.slice_rows(self.producer_batch_size, _rows(self._carry))
                    for key, tensor in self._carry.items()
                }
            else:
                self._carry = None
            ready.append(full)
            self._producer_batches_built += 1
        return ready

    def flush(self) -> Optional[Dict[str, Tensor]]:
        """Return any partial producer batch left at the end of an epoch."""
        carry, self._carry = self._carry, None
        return carry

    @property
    def pending_rows(self) -> int:
        return _rows(self._carry) if self._carry is not None else 0

    @property
    def producer_batches_built(self) -> int:
        return self._producer_batches_built

    def add_consumer(self, consumer_id: str, batch_size: int) -> None:
        """Register a consumer that joined after the batcher was built.

        The producer-batch geometry stays fixed; the newcomer simply gets its
        own slicing plan, so it can be admitted mid-epoch without disturbing
        the existing consumers.
        """
        batch_size = int(batch_size)
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if batch_size > self.producer_batch_size:
            raise ValueError(
                f"consumer batch size {batch_size} exceeds producer batch size "
                f"{self.producer_batch_size}"
            )
        self.consumer_batch_sizes[consumer_id] = batch_size

    def remove_consumer(self, consumer_id: str) -> None:
        """Forget a departed consumer's slicing plan."""
        self.consumer_batch_sizes.pop(consumer_id, None)

    def has_consumer(self, consumer_id: str) -> bool:
        return consumer_id in self.consumer_batch_sizes

    # -- carving -------------------------------------------------------------------------
    def offset_for(self, consumer_id: str) -> int:
        if not self.use_offsets:
            return 0
        ordered = sorted(self.consumer_batch_sizes)
        position = ordered.index(consumer_id)
        if len(ordered) <= 1:
            return 0
        return (position * self.producer_batch_size) // len(ordered)

    def plan_for(self, consumer_id: str, producer_batch_index: int = 0) -> ConsumerSlicePlan:
        try:
            batch_size = self.consumer_batch_sizes[consumer_id]
        except KeyError as exc:
            raise KeyError(f"unknown consumer {consumer_id!r}") from exc
        shuffle_seed = None
        if self.shuffle_slices:
            shuffle_seed = hash((self.seed, consumer_id, producer_batch_index)) & 0x7FFFFFFF
        return plan_slices(
            self.producer_batch_size,
            batch_size,
            consumer_id=consumer_id,
            offset=self.offset_for(consumer_id),
            shuffle_seed=shuffle_seed,
        )

    def carve(
        self,
        producer_batch: Mapping[str, Tensor],
        consumer_id: str,
        producer_batch_index: int = 0,
    ) -> List[Dict[str, Tensor]]:
        """Materialize the consumer's batches for one producer batch.

        Contiguous slices are zero-copy views of the producer batch; wrapped
        slices concatenate two views (copying only the wrapped rows).
        """
        rows = _rows(producer_batch)
        if rows != self.producer_batch_size:
            raise ValueError(
                f"producer batch has {rows} rows, expected {self.producer_batch_size}"
            )
        plan = self.plan_for(consumer_id, producer_batch_index)
        batches: List[Dict[str, Tensor]] = []
        for spec in plan.slices:
            start, stop = spec.primary
            batch = {key: tensor.slice_rows(start, stop) for key, tensor in producer_batch.items()}
            if spec.wrapped is not None:
                wrap_start, wrap_stop = spec.wrapped
                batch = {
                    key: cat([batch[key], tensor.slice_rows(wrap_start, wrap_stop)])
                    for key, tensor in producer_batch.items()
                }
            batches.append(batch)
        return batches

    # -- analysis ------------------------------------------------------------------------
    def repetition_report(self) -> Dict[str, float]:
        """Per-consumer repeated-row share per producer batch (Figure 5 analysis)."""
        report = {}
        for consumer_id in self.consumer_batch_sizes:
            plan = self.plan_for(consumer_id)
            report[consumer_id] = plan.repeated_share
        return report

    def max_repeated_share(self) -> float:
        """Worst-case repeated share across consumers; < 50% per the paper's guidance
        whenever the producer batch is at least twice the largest consumer batch."""
        report = self.repetition_report()
        return max(report.values()) if report else 0.0


def _rows(batch: Mapping[str, Tensor]) -> int:
    first = next(iter(batch.values()))
    return first.shape[0]
