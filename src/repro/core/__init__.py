"""TensorSocket core: the shared data loader (producer, consumers, policies).

This is the paper's primary contribution.  A single
:class:`~repro.core.producer.TensorProducer` owns the data-loading pipeline
and serves any number of :class:`~repro.core.consumer.TensorConsumer`
training processes with zero-copy batch handles.  The policy pieces the
protocol is built from are exposed separately because the simulated
experiments and the baselines reuse them:

* :class:`~repro.core.ack_ledger.AckLedger` — which consumer still owes an
  acknowledgement for which batch, and when a batch's memory can be released.
* :class:`~repro.core.batch_buffer.BatchBuffer` — the consumer-side bounded
  buffer that lets consumers drift at most N batches apart.
* :class:`~repro.core.flexible_batch.FlexibleBatcher` — producer-batch
  collation, per-consumer slicing, offsets, shuffling and repetition
  accounting (paper Section 3.2.6/3.2.7 and Figure 5).
* :class:`~repro.core.rubberband.RubberbandPolicy` — the join window at the
  start of an epoch (Section 3.2.5).
* :class:`~repro.core.producer.TensorProducer` /
  :class:`~repro.core.consumer.TensorConsumer` — the runnable, threaded /
  multi-process implementation used by the examples and integration tests.
* :class:`~repro.core.session.SharedLoaderSession` — the addressable
  long-lived server: hosts a producer thread at a URI address and hands out
  connected consumers (directly or via :func:`repro.attach`).

Producers, consumers and sessions are constructed either from an ``address``
URI alone (resolved through :mod:`repro.messaging.endpoint`) or from explicit
``hub=`` / ``pool=`` objects; the two styles interoperate.
"""

from repro.core.ack_ledger import AckLedger, BatchRecord
from repro.core.batch_buffer import BatchBuffer
from repro.core.config import ConsumerConfig, ProducerConfig
from repro.core.consumer import TensorConsumer
from repro.core.epoch_runner import EpochRunner, SkipEpoch
from repro.core.flexible_batch import ConsumerSlicePlan, FlexibleBatcher, SliceSpec, plan_slices
from repro.core.group import GroupConsumer, ShardedLoaderSession
from repro.core.manifest import MANIFEST_SCHEMA_VERSION, SessionManifest
from repro.core.pipeline import StagedItem, StagePipeline
from repro.core.producer import TensorProducer
from repro.core.rubberband import JoinDecision, RubberbandPolicy
from repro.core.session import SharedLoaderSession

__all__ = [
    "ProducerConfig",
    "ConsumerConfig",
    "AckLedger",
    "BatchRecord",
    "BatchBuffer",
    "EpochRunner",
    "SkipEpoch",
    "FlexibleBatcher",
    "ConsumerSlicePlan",
    "SliceSpec",
    "plan_slices",
    "RubberbandPolicy",
    "JoinDecision",
    "StagePipeline",
    "StagedItem",
    "TensorProducer",
    "TensorConsumer",
    "SharedLoaderSession",
    "ShardedLoaderSession",
    "GroupConsumer",
    "SessionManifest",
    "MANIFEST_SCHEMA_VERSION",
]
