"""A multi-tenant dataset broker: one data plane, many datasets.

``repro.serve`` binds one address per dataset: every loader gets its own hub
(for ``tcp://`` a whole broker thread and listening port) and its own
shared-memory pool.  That is the right shape for one team and one dataset,
but a shared data-loading *service* — the deployment the paper argues for —
hosts many datasets for many training jobs, and per-dataset ports and pools
stop scaling: ports must be handed out, memory budgets fragment, and an idle
dataset keeps its transport alive forever.

:class:`DatasetBroker` binds **one** address and mounts any number of named
datasets behind it::

    broker = repro.broker(address="tcp://0.0.0.0:5555")
    broker.publish("imagenet", imagenet_loader, quota_bytes=2 << 30)
    broker.publish("audio", audio_loader, shards=2)

    # any process, by address alone:
    for batch in repro.attach("tcp://host:5555/imagenet"):
        ...

Every mount is an ordinary :class:`~repro.core.session.SharedLoaderSession`
(or :class:`~repro.core.group.ShardedLoaderSession`) *embedded* into the
broker's transport: its channels hang off the mount path
(``{address}/{name}/data``...), and its producers allocate from a
quota-scoped :class:`~repro.tensor.shared_memory.TenantPool` view of the
broker's one shared-memory pool, so a hungry tenant is rejected at its quota
instead of starving the others.

Attachers resolve names through the **catalog channel** at
``{address}/catalog`` — a generalized describe service answering ``list`` /
``describe`` / ``subscribe`` with :class:`~repro.core.manifest.SessionManifest`
bodies.  ``subscribe`` also marks the dataset active (for idle eviction) and
spins up lazily registered datasets on first use.
"""

from __future__ import annotations

import dataclasses
import os
import re
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.core.config import ConsumerConfig, ProducerConfig
from repro.core.group import ShardedLoaderSession
from repro.core.manifest import SessionManifest
from repro.core.session import (
    SharedLoaderSession,
    register_session,
    unregister_session,
)
from repro.messaging import endpoint as endpoints
from repro.messaging.errors import AddressError, AddressNotServedError
from repro.obs.metrics import counter

#: Where ``repro.broker()`` puts the plane when the caller does not name one.
DEFAULT_BROKER_ADDRESS = "inproc://dataset-broker"

#: Channel suffixes the transport itself uses; a dataset may not shadow them.
RESERVED_DATASET_NAMES = frozenset(
    {"data", "control", "group", "catalog", "metrics", "reply"}
)

_MOUNTS = counter("repro.broker.mounts")
_EVICTIONS = counter("repro.broker.evictions")
_CATALOG_REQUESTS = counter("repro.broker.catalog_requests")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _validate_dataset_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"invalid dataset name {name!r}: use letters, digits, '.', '_' or '-' "
            f"(the name becomes a path segment of the broker address)"
        )
    if name in RESERVED_DATASET_NAMES or name.startswith("shard"):
        raise ValueError(
            f"dataset name {name!r} is reserved: it would shadow a transport "
            f"channel ({', '.join(sorted(RESERVED_DATASET_NAMES))}, shard*)"
        )
    return name


class _Mount:
    """One dataset's record inside the broker: loader, session, accounting."""

    def __init__(
        self,
        name: str,
        *,
        address: str,
        loader=None,
        loader_factory: Optional[Callable[[], object]] = None,
        config: ProducerConfig,
        shards: int,
        shard_mode: str,
        quota_bytes: Optional[int],
    ) -> None:
        self.name = name
        self.address = address
        self.loader = loader
        self.loader_factory = loader_factory
        self.config = config
        self.shards = shards
        self.shard_mode = shard_mode
        self.quota_bytes = quota_bytes
        self.session = None  # SharedLoaderSession | ShardedLoaderSession | None
        self.state = "registered"  # registered -> mounted -> registered (evicted)
        self.last_active = time.monotonic()
        self.evictions = 0
        self.error: Optional[BaseException] = None

    @property
    def mounted(self) -> bool:
        return self.session is not None


class CatalogService:
    """Answer ``{address}/catalog`` requests: the broker's discovery channel.

    A generalization of the per-session describe responder: instead of one
    manifest, it serves the whole mount table.  Operations (the request is a
    dict with an ``op`` key):

    * ``{"op": "list"}`` → ``{"ok": True, "datasets": [row, ...]}``
    * ``{"op": "describe", "dataset": name}`` → ``{"ok": True, "manifest": {...}}``
    * ``{"op": "subscribe", "dataset": name}`` → same reply as ``describe``,
      but also marks the dataset active and mounts it if it was registered
      lazily — this is what ``repro.attach("tcp://host:port/name")`` sends.

    Errors come back as ``{"ok": False, "error": "..."}`` rather than
    crashing the channel, so a typo'd dataset name fails fast client-side.
    """

    def __init__(self, broker: "DatasetBroker") -> None:
        from repro.messaging.sockets import RepSocket

        self._broker = broker
        self._rep = RepSocket(
            broker.hub, f"{broker.address}/catalog", identity="broker-catalog"
        )
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, daemon=True, name="repro-broker-catalog"
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                request = self._rep.recv(timeout=0.2)
            except Exception:
                continue
            payload = (
                request.body.get("payload") if isinstance(request.body, dict) else None
            )
            try:
                reply = self._handle(payload)
            except Exception as exc:  # a handler bug must not kill the channel
                reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                self._rep.reply(request, reply)
            except Exception:
                pass  # requester vanished; keep serving others

    def _handle(self, payload) -> Dict[str, object]:
        _CATALOG_REQUESTS.inc()
        if not isinstance(payload, dict):
            return {"ok": False, "error": "catalog requests are dicts with an 'op' key"}
        op = payload.get("op")
        if op == "list":
            return {"ok": True, "datasets": self._broker.list_datasets()}
        if op in ("describe", "subscribe"):
            name = payload.get("dataset")
            if not isinstance(name, str):
                return {"ok": False, "error": f"op {op!r} needs a 'dataset' name"}
            try:
                manifest = self._broker.describe(name, touch=(op == "subscribe"))
            except KeyError:
                known = ", ".join(sorted(self._broker.dataset_names())) or "none"
                return {
                    "ok": False,
                    "error": f"unknown dataset {name!r} (mounted: {known})",
                }
            return {"ok": True, "manifest": manifest.to_dict()}
        return {"ok": False, "error": f"unknown catalog op {op!r}"}

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._rep.close()


class DatasetBroker:
    """Host many named datasets behind one address, hub and memory pool.

    Parameters
    ----------
    address:
        The plane's base address (``tcp://host:port`` or ``inproc://name``).
        Datasets mount at ``{address}/{name}``.
    idle_ttl:
        Seconds a mounted dataset may sit with zero consumers before the
        janitor drains it (its producers stop, its memory drains back to the
        pool, its catalog entry flips to ``registered``).  A later attach
        mounts it again.  ``None`` (default) never evicts.
    sweep_interval:
        How often the janitor checks for idle datasets.
    default_quota_bytes:
        Quota applied to datasets published without an explicit
        ``quota_bytes``; ``None`` leaves them unlimited.
    """

    def __init__(
        self,
        address: Optional[str] = None,
        *,
        idle_ttl: Optional[float] = None,
        sweep_interval: float = 1.0,
        default_quota_bytes: Optional[int] = None,
    ) -> None:
        if idle_ttl is not None and idle_ttl <= 0:
            raise ValueError("idle_ttl must be positive when given")
        if sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")
        address = address or DEFAULT_BROKER_ADDRESS
        base, dataset = endpoints.split_dataset_address(address)
        if dataset is not None:
            raise AddressError(
                f"a broker binds the bare plane address, not a dataset path; "
                f"use {base!r} and publish {dataset!r} onto it"
            )
        self._endpoint = endpoints.bind(address)
        self.address = self._endpoint.address
        self.hub = self._endpoint.hub
        self.pool = self._endpoint.pool
        self.idle_ttl = idle_ttl
        self.sweep_interval = sweep_interval
        self.default_quota_bytes = default_quota_bytes
        self._lock = threading.RLock()
        self._mounts: Dict[str, _Mount] = {}  #: guarded by _lock
        self._shutdown = False  #: guarded by _lock
        # Read by SharedLoaderSession.at(): a fork()ed child must not resolve
        # names through this parent-process broker object.
        self._owner_pid = os.getpid()
        self._catalog: Optional[CatalogService] = None
        self._metrics_service = None
        self._janitor: Optional[threading.Thread] = None
        self._janitor_stop = threading.Event()
        try:
            register_session(self.address, self)
            self._catalog = CatalogService(self)
            # The plane-wide observability channel on {address}/metrics (see
            # repro.obs.service): one snapshot covers every mounted dataset.
            try:
                from repro.obs.service import MetricsService

                self._metrics_service = MetricsService(
                    self.hub, self.address, stats_fn=self.stats
                )
            except Exception:
                self._metrics_service = None
            if idle_ttl is not None:
                self._janitor = threading.Thread(
                    target=self._sweep_idle, daemon=True, name="repro-broker-janitor"
                )
                self._janitor.start()
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------------ publishing
    def publish(
        self,
        name: str,
        data_loader=None,
        *,
        loader_factory: Optional[Callable[[], object]] = None,
        quota_bytes: Optional[int] = None,
        shards: int = 1,
        shard_mode: str = "strided",
        cache: Optional[str] = None,
        producer_config: Optional[ProducerConfig] = None,
        **config_kwargs,
    ) -> _Mount:
        """Mount ``data_loader`` as dataset ``name`` on this plane.

        Mirrors :func:`repro.serve`'s surface (``shards=``, ``cache=``,
        producer-config kwargs) with two broker twists: ``quota_bytes`` caps
        the dataset's live shared-memory footprint (allocations past it raise
        :class:`~repro.tensor.errors.QuotaExceededError` in its producer),
        and passing ``loader_factory=`` instead of a loader registers the
        dataset **lazily** — it appears in the catalog immediately but costs
        nothing until the first attach mounts it.

        Unlike ``serve`` the default ``epochs`` is ``None``: a mounted
        dataset is a long-lived service, not a one-epoch run.
        """
        _validate_dataset_name(name)
        if (data_loader is None) == (loader_factory is None):
            raise ValueError("pass exactly one of data_loader or loader_factory=")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if cache is not None:
            if "cache_policy" in config_kwargs:
                raise TypeError("pass either cache= or cache_policy=, not both")
            config_kwargs["cache_policy"] = cache
        if producer_config is not None and config_kwargs:
            raise TypeError(
                "pass either producer_config= or ProducerConfig kwargs, not both"
            )
        mount_address = f"{self.address}/{name}"
        if producer_config is None:
            config_kwargs.setdefault("epochs", None)
            config = ProducerConfig(address=mount_address, **config_kwargs)
        else:
            config = dataclasses.replace(producer_config, address=mount_address)
        if quota_bytes is None:
            quota_bytes = self.default_quota_bytes
        with self._lock:
            self._ensure_open()
            if name in self._mounts:
                raise AddressError(
                    f"dataset {name!r} is already published on {self.address!r}; "
                    f"unpublish it first to replace the loader"
                )
            mount = _Mount(
                name,
                address=mount_address,
                loader=data_loader,
                loader_factory=loader_factory,
                config=config,
                shards=shards,
                shard_mode=shard_mode,
                quota_bytes=quota_bytes,
            )
            self.pool.set_tenant_quota(name, quota_bytes)
            self._mounts[name] = mount
            if data_loader is not None:
                # Factory-registered datasets stay lazy; concrete loaders
                # mount (and start producing) right away, like serve().
                self._mount_locked(mount)
        return mount

    def _mount_locked(self, mount: _Mount) -> None:
        loader = mount.loader
        if loader is None:
            # Re-invoked per mount so an evicted dataset comes back fresh
            # (the factory may rebuild samplers, reopen files, ...).
            loader = mount.loader_factory()
        tenant_pool = self.pool.tenant_view(mount.name, mount.quota_bytes)
        if mount.shards > 1:
            session = ShardedLoaderSession(
                loader,
                address=mount.address,
                shards=mount.shards,
                producer_config=mount.config,
                shard_mode=mount.shard_mode,
                hub=self.hub,
                pool=tenant_pool,
                embedded=True,
                dataset=mount.name,
            )
        else:
            session = SharedLoaderSession(
                loader,
                address=mount.address,
                producer_config=mount.config,
                hub=self.hub,
                pool=tenant_pool,
                embedded=True,
                dataset=mount.name,
            )
        session.start()
        mount.session = session
        mount.state = "mounted"
        mount.error = None
        mount.last_active = time.monotonic()
        _MOUNTS.inc()

    # ------------------------------------------------------------------ resolution
    def dataset_names(self) -> List[str]:
        with self._lock:
            return sorted(self._mounts)

    def list_datasets(self) -> List[Dict[str, object]]:
        """Catalog rows: one summary dict per published dataset."""
        with self._lock:
            return [
                {
                    "name": name,
                    "address": mount.address,
                    "state": mount.state,
                    "shards": mount.shards,
                    "quota_bytes": self.pool.tenant_quota(name),
                    "bytes_used": self.pool.tenant_bytes(name),
                }
                for name, mount in sorted(self._mounts.items())
            ]

    def describe(self, name: str, *, touch: bool = False) -> SessionManifest:
        """The manifest for ``name``; ``touch=True`` also counts as activity
        and mounts a lazily registered (or evicted) dataset."""
        with self._lock:
            mount = self._mounts.get(name)
            if mount is None:
                raise KeyError(name)
            if touch:
                self._ensure_open()
                if not mount.mounted:
                    self._mount_locked(mount)
                mount.last_active = time.monotonic()
            if mount.mounted:
                manifest = mount.session.manifest()
            else:
                manifest = SessionManifest(
                    address=mount.address,
                    kind="dataset",
                    shards=mount.shards,
                    shard_mode=mount.shard_mode if mount.shards > 1 else None,
                    dataset=mount.name,
                )
            return dataclasses.replace(manifest, state=mount.state)

    def attach_dataset(self, name: str, config: Optional[ConsumerConfig] = None):
        """An attached consumer for dataset ``name`` (the in-process path).

        ``repro.attach("inproc://plane/audio")`` lands here when the broker
        lives in the calling process; cross-process attaches go through the
        catalog channel instead.  Mounts lazily registered datasets.
        """
        with self._lock:
            self._ensure_open()
            mount = self._mounts.get(name)
            if mount is None:
                known = ", ".join(self.dataset_names()) or "none"
                raise AddressNotServedError(
                    f"no dataset {name!r} on broker {self.address!r} "
                    f"(published: {known})"
                )
            if not mount.mounted:
                self._mount_locked(mount)
            mount.last_active = time.monotonic()
            session = mount.session
        return session.consumer(config or ConsumerConfig())

    # Directory contract: the broker registers at its base address, and a
    # bare attach there cannot pick a dataset for the caller.
    def consumer(self, config: Optional[ConsumerConfig] = None):
        known = ", ".join(self.dataset_names()) or "none"
        raise AddressError(
            f"{self.address!r} is a broker plane, not a dataset; attach to "
            f"{self.address}/<name> (published: {known})"
        )

    attach = consumer

    def session(self, name: str):
        """The live session behind ``name`` (``None`` while unmounted)."""
        with self._lock:
            mount = self._mounts.get(name)
            if mount is None:
                raise KeyError(name)
            return mount.session

    def raise_dataset_error(self, name: str) -> None:
        """Re-raise the error ``name``'s producers died with, if any."""
        with self._lock:
            mount = self._mounts.get(name)
            if mount is None:
                raise KeyError(name)
            session, error = mount.session, mount.error
        if session is not None:
            session.raise_producer_error()
        if error is not None:
            raise error

    # ------------------------------------------------------------------ lifecycle
    def _consumer_count(self, session) -> int:
        producers = getattr(session, "members", None) or [session.producer]
        return sum(len(producer.active_consumer_ids()) for producer in producers)

    def _sweep_idle(self) -> None:
        while not self._janitor_stop.wait(self.sweep_interval):
            now = time.monotonic()
            with self._lock:
                idle = []
                for mount in self._mounts.values():
                    if not mount.mounted:
                        continue
                    if self._consumer_count(mount.session) > 0:
                        mount.last_active = now
                    elif now - mount.last_active >= self.idle_ttl:
                        idle.append(mount.name)
            for name in idle:
                try:
                    self.evict(name)
                except KeyError:
                    pass  # unpublished while we weren't holding the lock

    def evict(self, name: str, timeout: float = 10.0) -> int:
        """Drain dataset ``name`` back to ``registered``; returns leaked bytes.

        Its producers stop, consumers close, and its shared-memory charge
        drains back to the pool (the return value is whatever was still
        charged afterwards — 0 in a clean eviction).  The mount record stays:
        the next attach mounts the dataset again.
        """
        with self._lock:
            mount = self._mounts.get(name)
            if mount is None:
                raise KeyError(name)
            session = mount.session
            if session is not None:
                mount.state = "evicting"
        if session is not None:
            try:
                session.shutdown(timeout=timeout)
            except BaseException as exc:
                # An embedded shutdown never touches the shared pool; a raise
                # here is the producer's own death (e.g. over quota), worth
                # keeping for raise_dataset_error but not worth crashing the
                # janitor over.
                mount.error = exc
            # Only flip to registered once the drain is complete, so an
            # attacher that sees "registered" never reaches the dying
            # session through the directory.
            with self._lock:
                if mount.session is session:
                    mount.session = None
                    mount.state = "registered"
                    mount.evictions += 1
                    _EVICTIONS.inc()
        return self.pool.tenant_bytes(name)

    def unpublish(self, name: str, timeout: float = 10.0) -> None:
        """Evict ``name`` and drop it from the catalog and quota table."""
        self.evict(name, timeout=timeout)
        with self._lock:
            self._mounts.pop(name, None)
        self.pool.drop_tenant(name)

    def stats(self) -> Dict[str, object]:
        """Per-dataset accounting plus the shared pool's buckets.

        Each dataset row carries its live shared-memory charge
        (``bytes_used``) against its ``quota_bytes``; after an eviction or
        :meth:`shutdown` the rows drain to zero — a non-zero residue means a
        consumer is still holding payload references.
        """
        with self._lock:
            rows = {}
            for name, mount in self._mounts.items():
                rows[name] = {
                    "address": mount.address,
                    "state": mount.state,
                    "shards": mount.shards,
                    "quota_bytes": self.pool.tenant_quota(name),
                    "bytes_used": self.pool.tenant_bytes(name),
                    "consumers": (
                        self._consumer_count(mount.session) if mount.mounted else 0
                    ),
                    "evictions": mount.evictions,
                    "error": repr(mount.error) if mount.error is not None else None,
                }
            return {
                "address": self.address,
                "datasets": rows,
                "pool": {
                    "bytes_in_flight": self.pool.bytes_in_flight,
                    "cached_bytes": self.pool.cached_bytes,
                    "peak_bytes": self.pool.peak_bytes,
                    # Slab free lists are shared across tenants and charged to
                    # none of them: a dataset's quota bounds its *live* bytes,
                    # and segments it frees become warm capacity any tenant may
                    # recycle.  Drains to zero on shutdown with the rest.
                    "free_bytes": self.pool.free_bytes,
                },
            }

    def _ensure_open(self) -> None:
        # _lock is reentrant, so callers that already hold it can still ask.
        with self._lock:
            shut = self._shutdown
        if shut:
            raise RuntimeError(
                f"broker at {self.address!r} has been shut down; "
                f"create a new broker to serve again"
            )

    def shutdown(self, timeout: float = 10.0) -> None:
        """Drain every dataset, stop the catalog, release transport and pool."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            names = sorted(self._mounts)
        self._janitor_stop.set()
        if self._janitor is not None:
            self._janitor.join(timeout=self.sweep_interval + 2.0)
        for name in names:
            try:
                self.evict(name, timeout=timeout)
            except KeyError:
                pass
        if self._catalog is not None:
            self._catalog.stop()
        if self._metrics_service is not None:
            self._metrics_service.stop()
        unregister_session(self.address, self)
        try:
            self.pool.shutdown()
        finally:
            self._endpoint.release()

    def __enter__(self) -> "DatasetBroker":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        with self._lock:
            mounted = sum(1 for mount in self._mounts.values() if mount.mounted)
            total = len(self._mounts)
            state = "shutdown" if self._shutdown else "open"
        return (
            f"DatasetBroker(address={self.address!r}, datasets={total}, "
            f"mounted={mounted}, state={state})"
        )
