"""Run a dataset broker from the command line.

Serve synthetic datasets (handy for demos and cross-process experiments)::

    python -m repro.broker --address tcp://127.0.0.1:5555 \
        --synthetic imagenet:64:8 --synthetic audio:32:4

    # elsewhere:
    python -c "import repro; print(next(iter(repro.attach('tcp://127.0.0.1:5555/imagenet'))))"

Or run the built-in end-to-end smoke test (used by CI)::

    python -m repro.broker --self-test

``--self-test`` exercises the whole tentpole path in one process: a tcp://
plane, eager + sharded + lazily mounted datasets, catalog list/describe,
attach-by-name through the catalog channel, a quota rejection, an explicit
eviction, and the drain-to-zero accounting check at shutdown.
``REPRO_BENCH_TINY=1`` shrinks the dataset sizes further.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.broker.service import DatasetBroker
from repro.core.config import ConsumerConfig
from repro.core.group import GroupConsumer, attach_address
from repro.data import DataLoader
from repro.data.dataset import Dataset
from repro.tensor.errors import QuotaExceededError

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"


class _IndexDataset(Dataset):
    """Items carry their own index so the self-test can audit coverage."""

    def __init__(self, n: int, width: int = 4) -> None:
        self.n = n
        self.width = width

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int):
        return {
            "index": np.array([index], dtype=np.int64),
            "x": np.full((self.width,), float(index), dtype=np.float32),
        }


def _loader(items: int, batch_size: int) -> DataLoader:
    return DataLoader(_IndexDataset(items), batch_size=batch_size)


def _parse_synthetic(spec: str):
    """``name[:items[:batch]]`` → (name, items, batch)."""
    parts = spec.split(":")
    if len(parts) > 3 or not parts[0]:
        raise argparse.ArgumentTypeError(
            f"bad --synthetic spec {spec!r}; expected name[:items[:batch]]"
        )
    name = parts[0]
    items = int(parts[1]) if len(parts) > 1 else 64
    batch = int(parts[2]) if len(parts) > 2 else 8
    return name, items, batch


def _catalog_request(address: str, body):
    """One request on a broker's catalog channel over a fresh connection."""
    from repro.messaging import endpoint as endpoints
    from repro.messaging.sockets import ReqSocket

    endpoint = endpoints.connect(address)
    try:
        req = ReqSocket(endpoint.hub, f"{address}/catalog")
        try:
            return req.request(body, timeout=5.0)
        finally:
            req.close()
    finally:
        endpoint.release()


def _drain(consumer, limit: int) -> int:
    seen = 0
    with consumer:
        for _batch in consumer:
            seen += 1
            if seen >= limit:
                break
    return seen


def self_test() -> int:
    items, batch = (8, 2) if TINY else (24, 4)

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}" + (f": {detail}" if detail else ""))
        if not ok:
            raise SystemExit(f"broker self-test failed at: {label} {detail}")

    print(f"broker self-test (items={items}, batch={batch})")
    broker = DatasetBroker("tcp://127.0.0.1:0", idle_ttl=None)
    try:
        broker.publish("alpha", _loader(items, batch), quota_bytes=64 << 20)
        broker.publish("beta", _loader(items, batch), shards=2)
        broker.publish("lazy", loader_factory=lambda: _loader(items, batch))

        reply = _catalog_request(broker.address, {"op": "list"})
        names = sorted(row["name"] for row in reply.get("datasets", []))
        check("catalog list", reply.get("ok") is True and names == ["alpha", "beta", "lazy"],
              f"got {names}")

        reply = _catalog_request(
            broker.address, {"op": "describe", "dataset": "beta"}
        )
        manifest = reply.get("manifest", {})
        check(
            "catalog describe beta",
            reply.get("ok") is True
            and manifest.get("shards") == 2
            and manifest.get("dataset") == "beta",
        )

        consumer = attach_address(
            f"{broker.address}/alpha", ConsumerConfig(max_epochs=1, receive_timeout=20)
        )
        check("attach alpha by name", _drain(consumer, limit=items) >= items // batch)

        consumer = attach_address(
            f"{broker.address}/beta", ConsumerConfig(max_epochs=1, receive_timeout=20)
        )
        check("attach beta resolves sharded", isinstance(consumer, GroupConsumer))
        check("consume beta", _drain(consumer, limit=items) >= items // batch)

        check("lazy still unmounted is fine",
              broker.stats()["datasets"]["lazy"]["state"] in ("registered", "mounted"))
        consumer = attach_address(
            f"{broker.address}/lazy", ConsumerConfig(max_epochs=1, receive_timeout=20)
        )
        check("lazy mounts on first attach", _drain(consumer, limit=2) >= 1)
        check("lazy now mounted", broker.stats()["datasets"]["lazy"]["state"] == "mounted")

        broker.publish("overquota", _loader(items, batch), quota_bytes=1)
        # Staging only happens with a registered consumer; attaching (without
        # iterating) is enough to make the first allocation hit the quota.
        blocked = attach_address(
            f"{broker.address}/overquota", ConsumerConfig(receive_timeout=20)
        )
        rejected = False
        try:
            for _ in range(200):
                try:
                    broker.raise_dataset_error("overquota")
                except QuotaExceededError:
                    rejected = True
                    break
                except Exception:
                    break
                time.sleep(0.05)
        finally:
            blocked.close()
        check("quota rejection", rejected)

        leftover = broker.evict("alpha")
        check("evict alpha drains to zero", leftover == 0, f"leftover={leftover}")
        check("alpha back to registered",
              broker.stats()["datasets"]["alpha"]["state"] == "registered")
    finally:
        broker.shutdown()
    rows = broker.stats()["datasets"]
    residue = {name: row["bytes_used"] for name, row in rows.items() if row["bytes_used"]}
    check("all datasets drained at shutdown", not residue, repr(residue))
    print("broker self-test: ok")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.broker",
        description="Serve many named datasets behind one address.",
    )
    parser.add_argument(
        "--address",
        default="tcp://127.0.0.1:0",
        help="plane address to bind (default: %(default)s; port 0 auto-assigns)",
    )
    parser.add_argument(
        "--synthetic",
        action="append",
        type=_parse_synthetic,
        default=[],
        metavar="NAME[:ITEMS[:BATCH]]",
        help="mount a synthetic index dataset under NAME (repeatable)",
    )
    parser.add_argument(
        "--quota-mb", type=int, default=None,
        help="default per-dataset shared-memory quota in MiB",
    )
    parser.add_argument(
        "--idle-ttl", type=float, default=None,
        help="evict datasets idle for this many seconds",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the end-to-end broker smoke test and exit",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.synthetic:
        parser.error("nothing to serve: pass --synthetic NAME[:ITEMS[:BATCH]] or --self-test")
    quota = args.quota_mb * (1 << 20) if args.quota_mb else None
    broker = DatasetBroker(
        args.address, idle_ttl=args.idle_ttl, default_quota_bytes=quota
    )
    try:
        for name, items, batch in args.synthetic:
            broker.publish(name, _loader(items, batch))
            print(f"mounted {broker.address}/{name} ({items} items, batch {batch})")
        print(f"broker serving at {broker.address} — Ctrl-C to stop")
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        broker.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
