"""Multi-tenant dataset broker: many named datasets behind one address.

See :mod:`repro.broker.service` for the full story.  Note the top-level
package also exposes ``repro.broker(...)`` as a *function* (the ergonomic
constructor in :mod:`repro.api`); ``from repro.broker import DatasetBroker``
and ``python -m repro.broker`` resolve to this package either way.
"""

from repro.broker.service import (
    DEFAULT_BROKER_ADDRESS,
    RESERVED_DATASET_NAMES,
    CatalogService,
    DatasetBroker,
)

__all__ = [
    "DatasetBroker",
    "CatalogService",
    "DEFAULT_BROKER_ADDRESS",
    "RESERVED_DATASET_NAMES",
]
