"""``reprolint`` command line interface.

Exit codes: 0 — clean (or everything baselined); 1 — unbaselined findings or
parse errors; 2 — usage errors (bad paths, missing baseline file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import load_baseline, partition, write_baseline
from repro.analysis.driver import CHECKS, analyze_paths

#: Picked up automatically when present in the working directory.
DEFAULT_BASELINE = "reprolint.baseline"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Concurrency-invariant static analysis for this repository.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline file of accepted finding ids "
        f"(default: {DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="list the available checks and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_checks:
        for rule in sorted(CHECKS):
            print(f"{rule}  {CHECKS[rule]}")
        return 0

    checks = None
    if args.select:
        checks = [code.strip() for code in args.select.split(",") if code.strip()]
        unknown = [code for code in checks if code not in CHECKS]
        if unknown:
            print(f"reprolint: unknown check(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    try:
        result = analyze_paths(args.paths, checks=checks)
    except FileNotFoundError as exc:
        print(f"reprolint: no such file or directory: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline_path: Optional[Path] = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    elif Path(DEFAULT_BASELINE).is_file():
        baseline_path = Path(DEFAULT_BASELINE)

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        write_baseline(target, result.findings)
        print(f"reprolint: wrote {len(result.findings)} finding(s) to {target}")
        return 0

    baseline_ids = set()
    if baseline_path is not None:
        if not baseline_path.is_file():
            print(f"reprolint: baseline not found: {baseline_path}", file=sys.stderr)
            return 2
        baseline_ids = load_baseline(baseline_path)

    new, baselined, stale = partition(result.findings, baseline_ids)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 1,
                    "files": result.files,
                    "findings": [finding.to_dict() for finding in new],
                    "baselined": [finding.finding_id for finding in baselined],
                    "stale_baseline": sorted(stale),
                    "suppressed": result.suppressed,
                    "errors": result.errors,
                },
                indent=2,
            )
        )
    else:
        for error in result.errors:
            print(f"error: {error}")
        for finding in new:
            print(finding.render())
        bits = [
            f"{result.files} file(s)",
            f"{len(new)} finding(s)",
        ]
        if baselined:
            bits.append(f"{len(baselined)} baselined")
        if result.suppressed:
            bits.append(f"{result.suppressed} suppressed by pragma")
        if stale:
            bits.append(f"{len(stale)} stale baseline entr(y/ies)")
        print("reprolint: " + ", ".join(bits))
        for stale_id in sorted(stale):
            print(f"reprolint: stale baseline entry (fixed? remove it): {stale_id}")

    return 1 if (new or result.errors) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
