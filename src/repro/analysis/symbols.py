"""Lightweight symbol table over one module's AST.

The checkers need three kinds of facts that plain ``ast`` walks do not give
them directly:

* **what an attribute is** — ``self._lock = threading.Lock()`` tags ``_lock``
  as a lock; ``self._mailbox = queue.Queue(...)`` tags a queue; annotations
  like ``Optional[threading.Thread]`` tag threads.  Blocking-call
  classification (RL002/RL006) keys off these kinds.
* **what guards an attribute** — ``#: guarded by _lock`` comments, either
  trailing the assignment or on the line above it.  Comments are invisible to
  ``ast``, so these are recovered from the raw source lines and joined to the
  assignment nodes by line number (RL001).
* **which code is reactor-affine** — ``@reactor_only`` decorations, including
  on closures nested inside methods (RL006).

Everything here is derived in a single pass per module and shared by all
checkers; nothing imports the code under analysis.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Constructors whose result gets a concurrency "kind" tag.
_CONSTRUCTOR_KINDS: Dict[Tuple[str, str], str] = {
    ("threading", "Lock"): "lock",
    ("threading", "RLock"): "rlock",
    ("threading", "Condition"): "condition",
    ("threading", "Event"): "event",
    ("threading", "Semaphore"): "semaphore",
    ("threading", "BoundedSemaphore"): "semaphore",
    ("threading", "Thread"): "thread",
    ("multiprocessing", "Lock"): "lock",
    ("multiprocessing", "RLock"): "rlock",
    ("multiprocessing", "Event"): "event",
    ("queue", "Queue"): "queue",
    ("queue", "LifoQueue"): "queue",
    ("queue", "PriorityQueue"): "queue",
    ("queue", "SimpleQueue"): "queue",
    ("socket", "socket"): "socket",
    ("socket", "create_connection"): "socket",
    ("selectors", "DefaultSelector"): "selector",
    ("selectors", "SelectSelector"): "selector",
    ("selectors", "PollSelector"): "selector",
    ("selectors", "EpollSelector"): "selector",
    # Registry instruments: not mutexes and not "concurrent state" (never
    # added to LOCK_KINDS / CONCURRENT_KINDS) — tagged so RL006 can verify
    # that reactor-affine code only calls their non-blocking recording
    # methods, never the lock-taking aggregation side.
    ("repro.obs.metrics", "counter"): "metric",
    ("repro.obs.metrics", "gauge"): "metric",
    ("repro.obs.metrics", "histogram"): "metric",
    ("repro.obs.metrics", "Counter"): "metric",
    ("repro.obs.metrics", "Gauge"): "metric",
    ("repro.obs.metrics", "Histogram"): "metric",
}

#: Kinds that count as mutexes for held-region tracking.
LOCK_KINDS = frozenset({"lock", "rlock", "condition"})

#: Kinds that make a class "concurrent" for RL007 scoping purposes.
CONCURRENT_KINDS = frozenset(
    {"lock", "rlock", "condition", "event", "queue", "thread", "socket", "selector"}
)

_GUARDED_BY_RE = re.compile(r"#:\s*guarded\s+by\s+([A-Za-z_]\w*)")
_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s*]+)")


def _dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` -> ("a", "b", "c"); None for anything not a dotted name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _annotation_identifiers(node: ast.AST) -> Iterator[Tuple[str, ...]]:
    """Yield every dotted name mentioned inside a type annotation.

    Handles ``threading.Thread``, ``Optional[threading.Thread]``, string
    annotations like ``"SharedMemoryPool"`` and subscripted generics.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            parts = _dotted_parts(sub)
            if parts:
                yield parts


@dataclass
class FunctionInfo:
    """One function or method (including nested closures)."""

    node: FunctionNode
    qualname: str  #: e.g. ``SharedMemoryPool.release`` or ``f.<locals>.g``
    class_name: Optional[str]  #: owning class, if a method
    reactor_only: bool = False  #: carries the ``@reactor_only`` decorator
    #: local variable name -> concurrency kind, from simple assignments like
    #: ``t = threading.Thread(...)``.
    local_kinds: Dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    #: instance attribute -> concurrency kind ("lock", "queue", ...)
    attr_kinds: Dict[str, str] = field(default_factory=dict)
    #: instance attribute -> class name it holds (``self._pool = Pool(...)``)
    attr_classes: Dict[str, str] = field(default_factory=dict)
    #: instance attribute -> lock attribute guarding it (from ``#: guarded by``)
    guarded_by: Dict[str, str] = field(default_factory=dict)
    #: method name -> node (top-level methods only, not closures)
    methods: Dict[str, FunctionNode] = field(default_factory=dict)

    def lock_attrs(self) -> Set[str]:
        return {a for a, k in self.attr_kinds.items() if k in LOCK_KINDS}

    def is_concurrent(self) -> bool:
        if self.guarded_by:
            return True
        return any(k in CONCURRENT_KINDS for k in self.attr_kinds.values())


@dataclass
class ModuleInfo:
    path: str  #: posix relpath used in findings
    source: str
    tree: ast.Module
    lines: List[str]
    #: line number -> suppressed rule codes ("*" suppresses all)
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    #: module-global name -> concurrency kind (``_REGISTRY_LOCK = Lock()``)
    global_kinds: Dict[str, str] = field(default_factory=dict)
    #: module-global name -> the module-level lock guarding it
    global_guarded: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)
    #: imported alias -> canonical module name ("thr" -> "threading")
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: from-imported alias -> (module, original name)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    # -- call/attribute classification -------------------------------------
    def resolve_call_target(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        """Resolve a call's callee to a ``(module, name)`` pair if possible."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = self.import_aliases.get(func.value.id, func.value.id)
            return (base, func.attr)
        if isinstance(func, ast.Name):
            if func.id in self.from_imports:
                return self.from_imports[func.id]
        return None

    def constructor_kind(self, node: ast.AST) -> Optional[str]:
        """Kind produced by an expression, if it is a known constructor call."""
        if not isinstance(node, ast.Call):
            return None
        target = self.resolve_call_target(node.func)
        if target is None:
            return None
        return _CONSTRUCTOR_KINDS.get(target)

    def constructor_class(self, node: ast.AST) -> Optional[str]:
        """Class name produced by ``SomeClass(...)`` (unqualified or dotted)."""
        if not isinstance(node, ast.Call):
            return None
        parts = _dotted_parts(node.func)
        if parts and parts[-1][:1].isupper():
            return parts[-1]
        return None

    def annotation_kind(self, node: ast.AST) -> Optional[str]:
        for parts in _annotation_identifiers(node):
            if len(parts) >= 2 and _CONSTRUCTOR_KINDS.get((parts[-2], parts[-1])):
                return _CONSTRUCTOR_KINDS[(parts[-2], parts[-1])]
            if len(parts) == 1 and parts[0] in self.from_imports:
                target = self.from_imports[parts[0]]
                if target in _CONSTRUCTOR_KINDS:
                    return _CONSTRUCTOR_KINDS[target]
        return None

    def annotation_class(self, node: ast.AST) -> Optional[str]:
        for parts in _annotation_identifiers(node):
            if parts[-1][:1].isupper() and parts[-1] not in {
                "Optional",
                "Dict",
                "List",
                "Tuple",
                "Set",
                "Mapping",
                "Sequence",
                "Union",
                "Any",
                "Callable",
                "Iterator",
                "Iterable",
                "Type",
                "None",
            }:
                return parts[-1]
        return None

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.pragmas.get(line)
        if not rules:
            return False
        return "*" in rules or rule in rules


def _is_reactor_only(node: FunctionNode) -> bool:
    for dec in node.decorator_list:
        parts = _dotted_parts(dec)
        if parts and parts[-1] == "reactor_only":
            return True
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.x`` -> ``"x"``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ModuleScanner(ast.NodeVisitor):
    """Single pass filling a :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo):
        self.info = info
        self._class_stack: List[ClassInfo] = []
        self._qual_stack: List[str] = []

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.import_aliases[alias.asname or alias.name] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self.info.from_imports[alias.asname or alias.name] = (
                    node.module,
                    alias.name,
                )

    # -- module globals ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._class_stack and not self._qual_stack:
            kind = self.info.constructor_kind(node.value)
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if kind:
                    self.info.global_kinds[target.id] = kind
                guard = self._guarded_by_comment(node.lineno)
                if guard:
                    self.info.global_guarded[target.id] = guard
        self._record_self_assignment(node, node.value, annotation=None)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_self_assignment(node, node.value, annotation=node.annotation)
        self.generic_visit(node)

    def _record_self_assignment(
        self,
        stmt: ast.stmt,
        value: Optional[ast.AST],
        annotation: Optional[ast.AST],
    ) -> None:
        if not self._class_stack or not self._qual_stack:
            return
        cls = self._class_stack[-1]
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]  # type: ignore[attr-defined]
        )
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            kind = None
            if value is not None:
                kind = self.info.constructor_kind(value)
            if kind is None and annotation is not None:
                kind = self.info.annotation_kind(annotation)
            if kind and attr not in cls.attr_kinds:
                cls.attr_kinds[attr] = kind
            held_class = None
            if value is not None:
                held_class = self.info.constructor_class(value)
            if held_class is None and annotation is not None:
                held_class = self.info.annotation_class(annotation)
            if held_class and attr not in cls.attr_classes:
                cls.attr_classes[attr] = held_class
            self._record_guarded_by(cls, attr, stmt.lineno)

    def _guarded_by_comment(self, lineno: int) -> Optional[str]:
        """``#: guarded by <lock>`` trailing ``lineno`` or on the line above."""
        lines = self.info.lines
        for candidate in (lineno, lineno - 1):
            if not 1 <= candidate <= len(lines):
                continue
            text = lines[candidate - 1]
            if candidate == lineno - 1 and not text.lstrip().startswith("#"):
                continue
            match = _GUARDED_BY_RE.search(text)
            if match:
                return match.group(1)
        return None

    def _record_guarded_by(self, cls: ClassInfo, attr: str, lineno: int) -> None:
        guard = self._guarded_by_comment(lineno)
        if guard:
            cls.guarded_by[attr] = guard

    # -- classes and functions ---------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(name=node.name, module=self.info, node=node)
        self.info.classes[node.name] = cls
        self._class_stack.append(cls)
        self._qual_stack.append(node.name)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = item
        self.generic_visit(node)
        self._qual_stack.pop()
        self._class_stack.pop()

    def _visit_function(self, node: FunctionNode) -> None:
        owning_class = self._class_stack[-1].name if self._class_stack else None
        in_function = bool(self._qual_stack) and not (
            self._class_stack and self._qual_stack[-1] == self._class_stack[-1].name
        )
        if in_function:
            qualname = f"{self._qual_stack[-1]}.<locals>.{node.name}"
        elif owning_class:
            qualname = f"{owning_class}.{node.name}"
        else:
            qualname = node.name
        fn = FunctionInfo(
            node=node,
            qualname=qualname,
            class_name=owning_class,
            reactor_only=_is_reactor_only(node),
        )
        self._collect_local_kinds(fn)
        self.info.functions.append(fn)
        # Propagate annotated __init__ params into attr_classes/attr_kinds:
        # ``def __init__(self, pool: SharedMemoryPool)`` + ``self._pool = pool``.
        if owning_class and node.name == "__init__":
            self._propagate_param_annotations(node, self._class_stack[-1])
        self._qual_stack.append(qualname)
        self.generic_visit(node)
        self._qual_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _collect_local_kinds(self, fn: FunctionInfo) -> None:
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    kind = self.info.constructor_kind(stmt.value)
                    if kind:
                        fn.local_kinds[target.id] = kind

    def _propagate_param_annotations(self, node: FunctionNode, cls: ClassInfo) -> None:
        param_classes: Dict[str, str] = {}
        param_kinds: Dict[str, str] = {}
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if arg.annotation is None:
                continue
            name = self.info.annotation_class(arg.annotation)
            if name:
                param_classes[arg.arg] = name
            kind = self.info.annotation_kind(arg.annotation)
            if kind:
                param_kinds[arg.arg] = kind
        if not param_classes and not param_kinds:
            return
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
                source = stmt.value.id
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if source in param_classes and attr not in cls.attr_classes:
                        cls.attr_classes[attr] = param_classes[source]
                    if source in param_kinds and attr not in cls.attr_kinds:
                        cls.attr_kinds[attr] = param_kinds[source]


def _scan_pragmas(info: ModuleInfo) -> None:
    for lineno, text in enumerate(info.lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            info.pragmas[lineno] = rules


def own_walk(root: FunctionNode) -> Iterator[ast.AST]:
    """Like ``ast.walk`` but does not descend into nested function bodies.

    Closures get their own :class:`FunctionInfo` and are checked separately;
    walking them from the enclosing function would double-report findings.
    """
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            ):
                continue
            stack.append(child)


def build_module(path: str, source: str) -> ModuleInfo:
    """Parse one module and derive its symbol table."""
    tree = ast.parse(source, filename=path)
    info = ModuleInfo(
        path=path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    _scan_pragmas(info)
    _ModuleScanner(info).visit(tree)
    return info
