"""Finding model and stable finding identifiers.

A finding's identity must survive unrelated edits to the file it lives in —
otherwise the committed baseline churns on every refactor.  The fingerprint
therefore hashes *what* was flagged (rule, file, enclosing qualname, the
normalized source line) and deliberately excludes the line number.  Two
identical violations in the same function are disambiguated by an occurrence
counter assigned in source order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List


def normalize_source(line: str) -> str:
    """Collapse whitespace so reformatting does not change a fingerprint."""
    return " ".join(line.split())


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str  #: e.g. ``"RL001"``
    path: str  #: posix-style path relative to the scan root
    line: int  #: 1-based line number (display only; not part of the id)
    qualname: str  #: enclosing ``Class.method`` / function / ``<module>``
    message: str  #: human-readable description of the violation
    source: str = ""  #: the offending source line, stripped
    occurrence: int = 0  #: disambiguates identical findings in one scope

    @property
    def fingerprint(self) -> str:
        """12 hex chars identifying this finding independent of line number."""
        payload = "|".join(
            (
                self.rule,
                self.path,
                self.qualname,
                normalize_source(self.source),
                str(self.occurrence),
            )
        )
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]

    @property
    def finding_id(self) -> str:
        """The stable id recorded in baselines, e.g. ``RL005:a/b.py:C.m:3f2b...``."""
        return f"{self.rule}:{self.path}:{self.qualname}:{self.fingerprint}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} {self.message}"
            f"  [{self.finding_id}]"
        )

    def to_dict(self) -> dict:
        return {
            "id": self.finding_id,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "qualname": self.qualname,
            "message": self.message,
            "source": self.source,
        }


def assign_occurrences(findings: List[Finding]) -> List[Finding]:
    """Number otherwise-identical findings in source order.

    Input findings all carry ``occurrence=0``; the returned list carries the
    per-(rule, path, qualname, normalized-source) index so fingerprints of
    duplicate sites stay distinct *and* stable under unrelated edits.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
    counters: Dict[tuple, int] = {}
    out: List[Finding] = []
    for finding in ordered:
        key = (
            finding.rule,
            finding.path,
            finding.qualname,
            normalize_source(finding.source),
        )
        index = counters.get(key, 0)
        counters[key] = index + 1
        if index:
            finding = Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                qualname=finding.qualname,
                message=finding.message,
                source=finding.source,
                occurrence=index,
            )
        out.append(finding)
    return out
