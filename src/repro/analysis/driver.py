"""Analysis driver: file discovery, per-module checks, cross-module RL003.

The per-module checks run against each file's symbol table in isolation; the
RL003 lock-order check runs once over *all* modules because its acquisition
graph is interprocedural (``BatchCache`` acquiring the shm pool's lock is an
edge between two modules).  Pragma suppression and occurrence numbering are
applied here so every entry point (CLI, tests, library use) sees identical
findings.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.findings import Finding, assign_occurrences
from repro.analysis.graph import check_lock_order
from repro.analysis.hygiene import (
    check_hold_pairing,
    check_reactor_affinity,
    check_thread_hygiene,
)
from repro.analysis.locks import (
    check_blocking_under_lock,
    check_check_then_act,
    check_guarded_attributes,
)
from repro.analysis.symbols import ModuleInfo, build_module

#: rule code -> (summary, per-module checker or None for cross-module checks)
CHECKS: Dict[str, str] = {
    "RL001": "guarded attribute accessed without its lock",
    "RL002": "blocking call while a lock is held",
    "RL003": "lock-order cycle (potential deadlock)",
    "RL004": "refcounted hold not released on a finally path",
    "RL005": "thread without name=/daemon= hygiene kwargs",
    "RL006": "reactor-affinity violation (blocking or selector escape)",
    "RL007": "check-then-act on a shared container outside a lock",
}

_MODULE_CHECKERS: Dict[str, Callable[[ModuleInfo], List[Finding]]] = {
    "RL001": check_guarded_attributes,
    "RL002": check_blocking_under_lock,
    "RL004": check_hold_pairing,
    "RL005": check_thread_hygiene,
    "RL006": check_reactor_affinity,
    "RL007": check_check_then_act,
}


@dataclass
class AnalysisResult:
    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    errors: List[str] = field(default_factory=list)


def _discover(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
    return files


def _display_path(path: str) -> str:
    relative = os.path.relpath(path)
    if relative.startswith(".."):
        relative = path
    return relative.replace(os.sep, "/")


def _run_checks(
    modules: List[ModuleInfo],
    checks: Optional[Sequence[str]],
) -> AnalysisResult:
    enabled = set(checks) if checks is not None else set(CHECKS)
    result = AnalysisResult(files=len(modules))
    raw: List[Finding] = []
    for module in modules:
        for rule, checker in _MODULE_CHECKERS.items():
            if rule in enabled:
                raw.extend(checker(module))
    if "RL003" in enabled:
        raw.extend(check_lock_order(modules))
    by_path = {module.path: module for module in modules}
    kept: List[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.suppressed(finding.line, finding.rule):
            result.suppressed += 1
            continue
        kept.append(finding)
    result.findings = assign_occurrences(kept)
    return result


def analyze_paths(
    paths: Sequence[str], checks: Optional[Sequence[str]] = None
) -> AnalysisResult:
    """Analyze files and directories; returns findings with stable ids."""
    modules: List[ModuleInfo] = []
    errors: List[str] = []
    for file_path in _discover(paths):
        display = _display_path(file_path)
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            modules.append(build_module(display, source))
        except (SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{display}: {exc}")
    result = _run_checks(modules, checks)
    result.errors = errors
    return result


def analyze_source(
    source: str,
    path: str = "<string>",
    checks: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Analyze a single in-memory module (the unit-test entry point)."""
    module = build_module(path, source)
    return _run_checks([module], checks).findings
