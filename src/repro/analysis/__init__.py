"""repro-lint: a concurrency-invariant static analyzer for this repository.

The reproduction is a heavily concurrent shared-memory data plane: refcounted
segment holds, a selector-driven consumer reactor, and dozens of lock sites.
The invariants the code lives by — "guarded by ``_lock``", "reactor thread
only", "caller holds the lock" — used to exist only as comments.  This package
turns them into machine-checked rules over the stdlib ``ast``:

========  ====================================================================
Check     Invariant
========  ====================================================================
RL001     attributes annotated ``#: guarded by _lock`` are only touched inside
          a ``with self._lock:`` block (or from ``*_locked`` helpers)
RL002     no blocking call (``time.sleep``, ``Thread.join``, blocking
          ``Queue.get/put``, socket I/O, ``Event.wait``) while a lock is held;
          a ``Condition`` waiting on its own lock is exempt
RL003     the interprocedural lock-acquisition graph is cycle-free
RL004     ``retain*``/``release*`` and ``attach``/``close`` holds released in
          the same function are released on a ``finally`` path
RL005     every ``threading.Thread(...)`` passes ``name="repro-..."`` and an
          explicit ``daemon=``
RL006     ``@reactor_only`` code never blocks or dials sockets, and selector
          state is only touched from ``@reactor_only`` code
RL007     no ``if key in container:`` followed by a mutation of the same
          container outside a lock (check-then-act / TOCTOU)
========  ====================================================================

Run it with ``python -m repro.analysis src`` or the ``reprolint`` console
script.  Findings can be suppressed inline (``# reprolint: disable=RL00x``)
or recorded in a committed baseline file (``--baseline``); unbaselined
findings exit nonzero.
"""

from repro.analysis.driver import AnalysisResult, analyze_paths, analyze_source
from repro.analysis.findings import Finding

__all__ = [
    "AnalysisResult",
    "Finding",
    "analyze_paths",
    "analyze_source",
]
