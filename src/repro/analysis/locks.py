"""RL001 guarded-attribute, RL002 blocking-under-lock, RL007 check-then-act.

These three checks share the held-lock region machinery from
:mod:`repro.analysis.regions`: RL001 demands a lock *is* held where a guarded
attribute is touched, RL002 demands nothing blocking happens *while* one is
held, and RL007 demands membership-test-then-mutate sequences happen *under*
one.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.regions import (
    LockToken,
    receiver_kind,
    resolve_lock,
    walk_held,
)
from repro.analysis.symbols import FunctionInfo, ModuleInfo

#: Methods exempt from RL001: construction/destruction run single-threaded,
#: and the ``*_locked`` suffix is this codebase's "caller holds the lock"
#: convention (the call sites are checked instead).
_RL001_EXEMPT_NAMES = {"__init__", "__del__", "__post_init__"}

#: Container-mutating method names for RL007.
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "update",
}


def _source_line(module: ModuleInfo, lineno: int) -> str:
    if 1 <= lineno <= len(module.lines):
        return module.lines[lineno - 1].strip()
    return ""


def _finding(
    rule: str, module: ModuleInfo, node: ast.AST, qualname: str, message: str
) -> Finding:
    return Finding(
        rule=rule,
        path=module.path,
        line=node.lineno,
        qualname=qualname,
        message=message,
        source=_source_line(module, node.lineno),
    )


def _lock_names(held: Tuple[LockToken, ...]) -> str:
    names = []
    for token in held:
        scope, owner, name, _kind = token
        label = f"{owner}.{name}" if scope == "attr" else name
        if label not in names:
            names.append(label)
    return ", ".join(names)


# ---------------------------------------------------------------------------
# RL001 — guarded attributes touched without their lock
# ---------------------------------------------------------------------------


def check_guarded_attributes(module: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for fn in module.functions:
        name = fn.node.name
        if name in _RL001_EXEMPT_NAMES or name.endswith("_locked"):
            continue
        if module.global_guarded:
            for node, held in walk_held(fn, module):
                if not isinstance(node, ast.Name):
                    continue
                guard = module.global_guarded.get(node.id)
                if guard is None:
                    continue
                guard_kind = module.global_kinds.get(guard, "lock")
                token = ("global", module.path, guard, guard_kind)
                if token in held:
                    continue
                findings.append(
                    _finding(
                        "RL001",
                        module,
                        node,
                        fn.qualname,
                        f"module global '{node.id}' is declared guarded by "
                        f"'{guard}' but is accessed without holding it",
                    )
                )
        if fn.class_name is None:
            continue
        cls = module.classes.get(fn.class_name)
        if cls is None or not cls.guarded_by:
            continue
        for node, held in walk_held(fn, module):
            if not isinstance(node, ast.Attribute):
                continue
            if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
                continue
            guard = cls.guarded_by.get(node.attr)
            if guard is None:
                continue
            guard_kind = cls.attr_kinds.get(guard, "lock")
            token = ("attr", fn.class_name, guard, guard_kind)
            if token in held:
                continue
            findings.append(
                _finding(
                    "RL001",
                    module,
                    node,
                    fn.qualname,
                    f"attribute 'self.{node.attr}' is declared guarded by "
                    f"'{guard}' but is accessed without holding it",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RL002 — blocking calls while a lock is held
# ---------------------------------------------------------------------------

_SOCKET_BLOCKERS = {"recv", "recv_into", "recvfrom", "send", "sendall", "accept", "connect"}


def _queue_call_is_blocking(call: ast.Call) -> bool:
    """``q.get()`` / ``q.put(x)`` block unless ``block=False`` is passed."""
    for kw in call.keywords:
        if kw.arg == "block" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return True


def classify_blocking_call(
    call: ast.Call, fn: FunctionInfo, module: ModuleInfo
) -> Optional[Tuple[str, Optional[str]]]:
    """Return ``(description, receiver_kind)`` if the call can block.

    ``receiver_kind`` lets RL002 apply the condition-on-own-lock exemption
    and RL006 allow ``self._selector.select`` in the reactor loop.
    """
    target = module.resolve_call_target(call.func)
    if target == ("time", "sleep"):
        return ("time.sleep()", None)
    if target == ("select", "select"):
        return ("select.select()", None)
    if target == ("socket", "create_connection"):
        return ("socket.create_connection()", "socket")
    if not isinstance(call.func, ast.Attribute):
        return None
    method = call.func.attr
    kind = receiver_kind(call.func.value, fn, module)
    if kind == "queue" and method in {"get", "put"}:
        if _queue_call_is_blocking(call):
            return (f"Queue.{method}() without block=False", kind)
        return None
    if kind == "socket" and method in _SOCKET_BLOCKERS:
        return (f"socket.{method}()", kind)
    if kind == "thread" and method == "join":
        return ("Thread.join()", kind)
    if kind == "event" and method == "wait":
        return ("Event.wait()", kind)
    if kind == "condition" and method in {"wait", "wait_for"}:
        return (f"Condition.{method}()", kind)
    if kind == "selector" and method == "select":
        return ("selector.select()", kind)
    return None


def check_blocking_under_lock(module: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for fn in module.functions:
        for node, held in walk_held(fn, module):
            if not isinstance(node, ast.Call) or not held:
                continue
            classified = classify_blocking_call(node, fn, module)
            if classified is None:
                continue
            description, kind = classified
            if kind == "condition":
                # Waiting on a Condition releases *its own* lock; that is the
                # whole point of a condition variable.  It only deadlocks if
                # some *other* lock is also held across the wait.
                token = resolve_lock(node.func.value, fn, module)  # type: ignore[union-attr]
                others = set(held) - ({token} if token else set())
                if token is not None and token in held and not others:
                    continue
            if kind == "selector":
                # The selector's own select() is the event loop's wait; RL002
                # still flags it if a lock is held around it, which is correct.
                pass
            findings.append(
                _finding(
                    "RL002",
                    module,
                    node,
                    fn.qualname,
                    f"blocking call {description} while holding "
                    f"{_lock_names(held)}",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RL007 — check-then-act on shared containers outside a lock
# ---------------------------------------------------------------------------


def _container_key(expr: ast.AST) -> Optional[str]:
    """Identity of a container expression: ``self.x`` or a bare name."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _module_global_containers(module: ModuleInfo) -> Set[str]:
    """Module-level mutable containers (dict/list/set literals or calls)."""
    names: Set[str] = set()
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            is_container = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in {"dict", "list", "set", "defaultdict", "OrderedDict", "deque"}
            )
            if is_container:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _mutations_of(body: List[ast.stmt], key: str) -> List[ast.AST]:
    """Nodes inside ``body`` that mutate the container identified by ``key``."""
    hits: List[ast.AST] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if _container_key(node.value) == key:
                    hits.append(node)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if (
                    node.func.attr in _MUTATORS
                    and _container_key(node.func.value) == key
                ):
                    hits.append(node)
    return hits


def check_check_then_act(module: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    global_containers = _module_global_containers(module)
    module_has_global_lock = any(
        kind in {"lock", "rlock", "condition"} for kind in module.global_kinds.values()
    )
    for fn in module.functions:
        if fn.node.name in {"__init__", "__del__"}:
            continue
        cls = module.classes.get(fn.class_name) if fn.class_name else None
        for node, held in walk_held(fn, module):
            if not isinstance(node, ast.If) or held:
                continue
            test = node.test
            if not (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], (ast.In, ast.NotIn))
                and len(test.comparators) == 1
            ):
                continue
            container = test.comparators[0]
            key = _container_key(container)
            if key is None:
                continue
            if key.startswith("self."):
                attr = key[len("self.") :]
                if cls is None or not cls.is_concurrent():
                    continue
                if attr in cls.guarded_by:
                    continue  # RL001 owns guarded attributes
            else:
                # Bare names: only module globals in modules that bother to
                # define a module-level lock are considered shared state.
                if key not in global_containers or not module_has_global_lock:
                    continue
            mutations = _mutations_of(node.body, key)
            if not mutations:
                continue
            findings.append(
                _finding(
                    "RL007",
                    module,
                    node,
                    fn.qualname,
                    f"check-then-act on '{key}': membership test and mutation "
                    f"(line {mutations[0].lineno}) are not atomic without a lock",
                )
            )
    return findings
