"""RL003 — interprocedural lock-order cycle detection.

Builds an acquisition-order graph whose nodes are lock tokens (see
:mod:`repro.analysis.regions`) and whose edges ``A -> B`` mean "somewhere, B
is acquired while A is held".  Acquisition may be indirect: while holding A, a
function may call a method that (transitively) acquires B.  Callees are
resolved through the symbol table — ``self.m()`` to the same class,
``self._pool.m()`` through attribute class tags (``self._pool =
SharedMemoryPool(...)`` or an annotated ``__init__`` parameter), annotated
locals/parameters, and bare names to same-module functions.

Any strongly connected component in the graph is a potential deadlock and is
reported once.  A self-edge on a *reentrant* lock (``threading.RLock``) is
legal and skipped; a self-edge on a plain ``Lock`` is an immediate deadlock
and is reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.regions import LockToken, acquisition_sites, walk_held
from repro.analysis.symbols import FunctionInfo, ModuleInfo

#: A function key: ("method", ClassName, name) or ("function", module_path, name).
FuncKey = Tuple[str, str, str]


@dataclass
class _Edge:
    src: LockToken
    dst: LockToken
    path: str
    line: int
    via: str  #: qualname of the function where the edge was observed


@dataclass
class _FunctionFacts:
    fn: FunctionInfo
    module: ModuleInfo
    key: FuncKey
    #: locks acquired directly in this function
    direct: Set[LockToken] = field(default_factory=set)
    #: (held-at-call, callee key, lineno) for resolvable calls
    calls: List[Tuple[Tuple[LockToken, ...], FuncKey, int]] = field(
        default_factory=list
    )
    #: (held-before, token, lineno) for direct acquisitions
    acquires: List[Tuple[Tuple[LockToken, ...], LockToken, int]] = field(
        default_factory=list
    )


def _function_key(fn: FunctionInfo, module: ModuleInfo) -> FuncKey:
    if fn.class_name and "." not in fn.qualname.replace(
        f"{fn.class_name}.", "", 1
    ):
        return ("method", fn.class_name, fn.node.name)
    if fn.class_name:
        return ("method", fn.class_name, fn.qualname)
    return ("function", module.path, fn.qualname)


def _param_classes(fn: FunctionInfo, module: ModuleInfo) -> Dict[str, str]:
    """Parameter / local name -> class name, from annotations and constructor
    assignments, for callee resolution."""
    out: Dict[str, str] = {}
    args = fn.node.args
    for arg in list(args.args) + list(args.kwonlyargs) + list(args.posonlyargs):
        if arg.annotation is not None:
            name = module.annotation_class(arg.annotation)
            if name:
                out[arg.arg] = name
    for stmt in ast.walk(fn.node):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                name = module.constructor_class(stmt.value)
                if name:
                    out[target.id] = name
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = module.annotation_class(stmt.annotation)
            if name:
                out[stmt.target.id] = name
    return out


def _resolve_callee(
    call: ast.Call,
    fn: FunctionInfo,
    module: ModuleInfo,
    class_registry: Dict[str, ModuleInfo],
    local_classes: Dict[str, str],
) -> Optional[FuncKey]:
    func = call.func
    if isinstance(func, ast.Attribute):
        base = func.value
        # self.method(...)
        if isinstance(base, ast.Name) and base.id == "self" and fn.class_name:
            return ("method", fn.class_name, func.attr)
        # self.attr.method(...) through attribute class tags
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and fn.class_name
        ):
            cls = module.classes.get(fn.class_name)
            if cls is not None:
                owner = cls.attr_classes.get(base.attr)
                if owner and owner in class_registry:
                    return ("method", owner, func.attr)
        # name.method(...) through annotated params / constructor locals
        if isinstance(base, ast.Name):
            owner = local_classes.get(base.id)
            if owner and owner in class_registry:
                return ("method", owner, func.attr)
            # ClassName.classmethod(...) — e.g. SharedSegment.attach(...)
            if base.id in class_registry:
                return ("method", base.id, func.attr)
        return None
    if isinstance(func, ast.Name):
        return ("function", module.path, func.id)
    return None


def _collect_facts(modules: List[ModuleInfo]) -> Tuple[
    Dict[FuncKey, _FunctionFacts], Dict[str, ModuleInfo]
]:
    class_registry: Dict[str, ModuleInfo] = {}
    for module in modules:
        for name in module.classes:
            class_registry.setdefault(name, module)
    facts: Dict[FuncKey, _FunctionFacts] = {}
    for module in modules:
        for fn in module.functions:
            key = _function_key(fn, module)
            fact = _FunctionFacts(fn=fn, module=module, key=key)
            local_classes = _param_classes(fn, module)
            for _node, token, held in acquisition_sites(fn, module):
                fact.direct.add(token)
                fact.acquires.append((held, token, _node.lineno))
            for node, held in walk_held(fn, module):
                if not isinstance(node, ast.Call):
                    continue
                callee = _resolve_callee(
                    node, fn, module, class_registry, local_classes
                )
                if callee is not None:
                    fact.calls.append((held, callee, node.lineno))
            facts.setdefault(key, fact)
    return facts, class_registry


def _transitive_summaries(
    facts: Dict[FuncKey, _FunctionFacts]
) -> Dict[FuncKey, Set[LockToken]]:
    summary: Dict[FuncKey, Set[LockToken]] = {
        key: set(fact.direct) for key, fact in facts.items()
    }
    changed = True
    while changed:
        changed = False
        for key, fact in facts.items():
            current = summary[key]
            before = len(current)
            for _held, callee, _line in fact.calls:
                callee_summary = summary.get(callee)
                if callee_summary:
                    current |= callee_summary
            if len(current) != before:
                changed = True
    return summary


def _build_edges(
    facts: Dict[FuncKey, _FunctionFacts],
    summary: Dict[FuncKey, Set[LockToken]],
) -> List[_Edge]:
    edges: List[_Edge] = []
    seen: Set[Tuple[LockToken, LockToken]] = set()

    def add(src: LockToken, dst: LockToken, module: ModuleInfo, line: int, via: str):
        if src == dst:
            # Re-acquiring a reentrant lock is legal; re-acquiring a plain
            # Lock from the same thread deadlocks immediately.
            if src[3] != "lock":
                return
        if (src, dst) in seen:
            return
        seen.add((src, dst))
        edges.append(_Edge(src=src, dst=dst, path=module.path, line=line, via=via))

    for fact in facts.values():
        for held, token, line in fact.acquires:
            for src in held:
                add(src, token, fact.module, line, fact.fn.qualname)
        for held, callee, line in fact.calls:
            if not held:
                continue
            for dst in summary.get(callee, ()):  # transitive acquisitions
                for src in held:
                    add(src, dst, fact.module, line, fact.fn.qualname)
    return edges


def _token_label(token: LockToken) -> str:
    scope, owner, name, _kind = token
    if scope == "attr":
        return f"{owner}.{name}"
    if scope == "global":
        return f"{owner}:{name}"
    return name


def _strongly_connected(
    nodes: Set[LockToken], adjacency: Dict[LockToken, Set[LockToken]]
) -> List[List[LockToken]]:
    """Iterative Tarjan SCC."""
    index: Dict[LockToken, int] = {}
    lowlink: Dict[LockToken, int] = {}
    on_stack: Set[LockToken] = set()
    stack: List[LockToken] = []
    counter = [0]
    components: List[List[LockToken]] = []

    for root in sorted(nodes):
        if root in index:
            continue
        work: List[Tuple[LockToken, List[LockToken], int]] = [
            (root, sorted(adjacency.get(root, ())), 0)
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children, child_index = work.pop()
            advanced = False
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, children, position + 1))
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(adjacency.get(child, ())), 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: List[LockToken] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def check_lock_order(modules: List[ModuleInfo]) -> List[Finding]:
    facts, _registry = _collect_facts(modules)
    summary = _transitive_summaries(facts)
    edges = _build_edges(facts, summary)
    adjacency: Dict[LockToken, Set[LockToken]] = {}
    nodes: Set[LockToken] = set()
    for edge in edges:
        nodes.add(edge.src)
        nodes.add(edge.dst)
        adjacency.setdefault(edge.src, set()).add(edge.dst)

    findings: List[Finding] = []
    for component in _strongly_connected(nodes, adjacency):
        members = set(component)
        cyclic = len(component) > 1 or (
            component[0] in adjacency.get(component[0], set())
        )
        if not cyclic:
            continue
        cycle_edges = [e for e in edges if e.src in members and e.dst in members]
        cycle_edges.sort(key=lambda e: (e.path, e.line))
        anchor = cycle_edges[0]
        labels = " -> ".join(_token_label(t) for t in sorted(members))
        detail = "; ".join(
            f"{_token_label(e.src)} held while acquiring {_token_label(e.dst)} "
            f"in {e.via} ({e.path}:{e.line})"
            for e in cycle_edges[:4]
        )
        module = next(m for m in modules if m.path == anchor.path)
        source = ""
        if 1 <= anchor.line <= len(module.lines):
            source = module.lines[anchor.line - 1].strip()
        findings.append(
            Finding(
                rule="RL003",
                path=anchor.path,
                line=anchor.line,
                qualname=anchor.via,
                message=f"lock-order cycle among {{{labels}}}: {detail}",
                source=source,
            )
        )
    return findings
