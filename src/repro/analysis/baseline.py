"""Baseline files: committed lists of accepted finding ids.

The baseline is a plain text file, one finding id per line, with ``#``
comments allowed (and encouraged — every baselined finding should say *why*
it is accepted).  Ids are the stable fingerprinted ids from
:mod:`repro.analysis.findings`, so unrelated edits do not churn the file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.analysis.findings import Finding

_HEADER = """\
# reprolint baseline — accepted findings, one id per line.
# Regenerate with:  reprolint --write-baseline <paths>
# Every entry should carry a comment explaining why it is accepted.
"""


def load_baseline(path: Path) -> Set[str]:
    ids: Set[str] = set()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            ids.add(line)
    return ids


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    lines = [_HEADER]
    for finding in sorted(findings, key=lambda f: f.finding_id):
        lines.append(f"# {finding.path}:{finding.line}: {finding.message}")
        lines.append(finding.finding_id)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def partition(
    findings: List[Finding], baseline_ids: Set[str]
) -> Tuple[List[Finding], List[Finding], Set[str]]:
    """Split findings into (new, baselined) and report stale baseline ids."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    seen: Set[str] = set()
    for finding in findings:
        if finding.finding_id in baseline_ids:
            baselined.append(finding)
            seen.add(finding.finding_id)
        else:
            new.append(finding)
    stale = baseline_ids - seen
    return new, baselined, stale
