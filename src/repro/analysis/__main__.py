"""``python -m repro.analysis`` — run reprolint."""

import sys

from repro.analysis.cli import main

sys.exit(main())
