"""Held-lock region tracking over a function body.

Several checks need to know, at every AST node, *which locks are held* — the
stack of enclosing ``with self._lock:`` blocks.  :func:`walk_held` yields
``(node, held)`` pairs where ``held`` is the tuple of lock tokens acquired by
enclosing ``with`` statements, resolved through the module symbol table.

A lock token is a tuple identifying the lock across functions:

* ``("attr", ClassName, attr, kind)`` — ``self._lock`` style instance locks
* ``("global", module_path, name, kind)`` — module-level locks
* ``("local", qualname, name, kind)`` — function-local locks

``kind`` is ``"lock"``, ``"rlock"`` or ``"condition"`` and rides along so the
checks can special-case reentrant locks and condition variables.

Nested function definitions are *not* descended into: a closure's body runs
at some later time, possibly on another thread, so locks held at its
definition site say nothing about locks held when it executes.  Closures are
analyzed separately as their own functions (with an empty initial held set).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.symbols import (
    LOCK_KINDS,
    FunctionInfo,
    ModuleInfo,
)

LockToken = Tuple[str, str, str, str]


def resolve_lock(
    expr: ast.AST, fn: FunctionInfo, module: ModuleInfo
) -> Optional[LockToken]:
    """Map a ``with`` context expression to a lock token, if it is a lock."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and fn.class_name
    ):
        cls = module.classes.get(fn.class_name)
        if cls is not None:
            kind = cls.attr_kinds.get(expr.attr)
            if kind in LOCK_KINDS:
                return ("attr", fn.class_name, expr.attr, kind)
        return None
    if isinstance(expr, ast.Name):
        kind = fn.local_kinds.get(expr.id)
        if kind in LOCK_KINDS:
            return ("local", fn.qualname, expr.id, kind)
        kind = module.global_kinds.get(expr.id)
        if kind in LOCK_KINDS:
            return ("global", module.path, expr.id, kind)
    return None


def receiver_kind(
    expr: ast.AST, fn: FunctionInfo, module: ModuleInfo
) -> Optional[str]:
    """Concurrency kind of a method call's receiver expression, if known."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and fn.class_name
    ):
        cls = module.classes.get(fn.class_name)
        if cls is not None:
            return cls.attr_kinds.get(expr.attr)
        return None
    if isinstance(expr, ast.Name):
        kind = fn.local_kinds.get(expr.id)
        if kind:
            return kind
        return module.global_kinds.get(expr.id)
    return None


def walk_held(
    fn: FunctionInfo, module: ModuleInfo
) -> Iterator[Tuple[ast.AST, Tuple[LockToken, ...]]]:
    """Yield every node of ``fn`` with the tuple of locks held at that node."""
    held: List[LockToken] = []

    def _walk(node: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[LockToken, ...]]]:
        yield node, tuple(held)
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not fn.node
        ):
            return  # closure body runs later; held set does not apply
        if isinstance(node, ast.With):
            acquired = 0
            for item in node.items:
                yield from _walk(item.context_expr)
                if item.optional_vars is not None:
                    yield from _walk(item.optional_vars)
                token = resolve_lock(item.context_expr, fn, module)
                if token is not None:
                    held.append(token)
                    acquired += 1
            for stmt in node.body:
                yield from _walk(stmt)
            for _ in range(acquired):
                held.pop()
            return
        for child in ast.iter_child_nodes(node):
            yield from _walk(child)

    yield from _walk(fn.node)


def acquisition_sites(
    fn: FunctionInfo, module: ModuleInfo
) -> Iterator[Tuple[ast.With, LockToken, Tuple[LockToken, ...]]]:
    """Yield ``(with_node, acquired_token, held_before)`` for every lock
    acquisition in ``fn`` (used by the RL003 lock-order graph)."""
    held: List[LockToken] = []

    def _walk(node: ast.AST) -> Iterator:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not fn.node
        ):
            return
        if isinstance(node, ast.With):
            acquired = 0
            for item in node.items:
                token = resolve_lock(item.context_expr, fn, module)
                if token is not None:
                    yield node, token, tuple(held)
                    held.append(token)
                    acquired += 1
            for stmt in node.body:
                yield from _walk(stmt)
            for _ in range(acquired):
                held.pop()
            return
        for child in ast.iter_child_nodes(node):
            yield from _walk(child)

    yield from _walk(fn.node)
