"""RL004 hold-pairing, RL005 thread-hygiene, RL006 reactor-affinity.

RL004 — refcounted holds (``retain``/``release``, ``retain_cached``/
``release_cached``) and shm attachments (``attach``/``close``) that are
*acquired and released in the same function* must release on a ``finally``
path.  Two shapes are deliberately allowed:

* acquire-only functions — ownership transfers to another component (the
  producer retains, the ack path releases later);
* release-only-in-``except`` — the compensation pattern (keep the hold on
  success, give it back if publishing failed).

What is flagged is the in-between shape: a release on the straight-line path
with nothing covering the exception exits.

RL005 — every ``threading.Thread(...)`` must pass ``name="repro-..."`` and an
explicit ``daemon=``; this is the static twin of the runtime leaked-thread
fixture in ``tests/conftest.py``.

RL006 — functions marked ``@reactor_only`` (and ``_on_readable``-style
callbacks) run on the reactor thread and must never block or dial sockets,
and selector state may only be touched from such functions.  Metric
instruments (``repro.obs.metrics`` counters/gauges/histograms) are allowed
on the reactor thread *only* through their per-thread-cell recording methods
(``inc``/``add``/``set``/``observe``); the aggregation side (``value``,
``snapshot``, ``percentile``, ...) merges cells under the instrument lock
and is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.locks import classify_blocking_call
from repro.analysis.regions import receiver_kind
from repro.analysis.symbols import FunctionInfo, ModuleInfo, own_walk

# ---------------------------------------------------------------------------
# RL004 — hold pairing
# ---------------------------------------------------------------------------

#: acquire method name -> the release method names that balance it.
_HOLD_PAIRS: Dict[str, Tuple[str, ...]] = {
    "retain": ("release", "release_if_present"),
    "retain_cached": ("release_cached",),
    "attach": ("close", "detach"),
}
_ALL_RELEASES = {name for names in _HOLD_PAIRS.values() for name in names}


def _source_line(module: ModuleInfo, lineno: int) -> str:
    if 1 <= lineno <= len(module.lines):
        return module.lines[lineno - 1].strip()
    return ""


def _finding(
    rule: str, module: ModuleInfo, node: ast.AST, qualname: str, message: str
) -> Finding:
    return Finding(
        rule=rule,
        path=module.path,
        line=node.lineno,
        qualname=qualname,
        message=message,
        source=_source_line(module, node.lineno),
    )


def _call_positions(fn: FunctionInfo) -> Dict[int, str]:
    """Map each node id in ``fn`` to its structural position:
    ``"finally"``, ``"except"`` or ``"normal"``."""
    positions: Dict[int, str] = {}

    def mark(node: ast.AST, position: str) -> None:
        for sub in ast.walk(node):
            positions[id(sub)] = position

    def walk(node: ast.AST, position: str) -> None:
        if isinstance(node, ast.Try):
            for stmt in node.body + node.orelse:
                walk(stmt, position)
            for handler in node.handlers:
                mark(handler, "except")
            for stmt in node.finalbody:
                mark(stmt, "finally")
            return
        positions[id(node)] = position
        for child in ast.iter_child_nodes(node):
            walk(child, position)

    walk(fn.node, "normal")
    return positions


def check_hold_pairing(module: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for fn in module.functions:
        acquires: List[Tuple[str, ast.Call]] = []
        releases: List[Tuple[str, ast.Call]] = []
        context_managed: Set[int] = set()
        for node in own_walk(fn.node):
            if isinstance(node, ast.With):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        context_managed.add(id(item.context_expr))
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                name = node.func.attr
                if name in _HOLD_PAIRS:
                    acquires.append((name, node))
                if name in _ALL_RELEASES:
                    releases.append((name, node))
        if not acquires or not releases:
            continue
        positions = _call_positions(fn)
        for acquire_name, acquire_node in acquires:
            if id(acquire_node) in context_managed:
                continue  # with pool.attach(...) — the with block releases
            matching = [
                (name, node)
                for name, node in releases
                if name in _HOLD_PAIRS[acquire_name]
            ]
            if not matching:
                continue  # acquire-only: ownership transferred elsewhere
            release_positions = {
                positions.get(id(node), "normal") for _name, node in matching
            }
            if "finally" in release_positions:
                continue
            if release_positions <= {"except"}:
                continue  # compensation pattern: release only on failure
            findings.append(
                _finding(
                    "RL004",
                    module,
                    acquire_node,
                    fn.qualname,
                    f"'{acquire_name}' is balanced by "
                    f"'{matching[0][0]}' (line {matching[0][1].lineno}) on the "
                    "normal path only; move the release into try/finally so "
                    "exception exits do not leak the hold",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# RL005 — thread hygiene
# ---------------------------------------------------------------------------


def _thread_name_ok(value: ast.AST) -> bool:
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value.startswith("repro-")
    if isinstance(value, ast.JoinedStr) and value.values:
        first = value.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value.startswith("repro-")
        return False  # f-string starting with a placeholder: no fixed prefix
    # Computed names (variables, str.format) are accepted as-is; the check
    # targets the common literal case.
    return True


def check_thread_hygiene(module: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for fn in module.functions:
        for node in own_walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if module.constructor_kind(node) != "thread":
                continue
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            problems: List[str] = []
            if "name" not in kwargs:
                problems.append('missing name= (use name="repro-...")')
            elif not _thread_name_ok(kwargs["name"]):
                problems.append('thread name should start with "repro-"')
            if "daemon" not in kwargs:
                problems.append("missing explicit daemon=")
            if problems:
                findings.append(
                    _finding(
                        "RL005",
                        module,
                        node,
                        fn.qualname,
                        "threading.Thread(...) " + "; ".join(problems),
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# RL006 — reactor affinity
# ---------------------------------------------------------------------------

#: Callback names treated as reactor-affine even without the decorator.
_REACTOR_CALLBACK_NAMES = {"_on_readable"}

#: The only methods of a kind-"metric" receiver that are lock-free on the
#: hot path (per-thread accumulation cells); everything else on an
#: instrument — value(), snapshot(), percentile(), reset(), attach() —
#: takes the instrument lock to merge cells and has no place on the
#: reactor thread.
_METRIC_NONBLOCKING = frozenset({"inc", "add", "set", "observe"})


def _is_reactor_fn(fn: FunctionInfo) -> bool:
    return fn.reactor_only or fn.node.name in _REACTOR_CALLBACK_NAMES


def _selector_attrs(module: ModuleInfo, class_name: Optional[str]) -> Set[str]:
    if class_name is None:
        return set()
    cls = module.classes.get(class_name)
    if cls is None:
        return set()
    return {attr for attr, kind in cls.attr_kinds.items() if kind == "selector"}


def check_reactor_affinity(module: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    for fn in module.functions:
        if _is_reactor_fn(fn):
            for node in own_walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Attribute):
                    kind = receiver_kind(node.func.value, fn, module)
                    if kind == "metric" and node.func.attr not in _METRIC_NONBLOCKING:
                        findings.append(
                            _finding(
                                "RL006",
                                module,
                                node,
                                fn.qualname,
                                f"metric aggregation '.{node.func.attr}()' takes "
                                "the instrument lock; only per-thread-cell "
                                "recording (inc/add/set/observe) is non-blocking "
                                "and allowed in @reactor_only code",
                            )
                        )
                        continue
                classified = classify_blocking_call(node, fn, module)
                if classified is None:
                    continue
                description, kind = classified
                if kind == "selector":
                    continue  # the event loop's own wait
                if kind == "socket" and isinstance(node.func, ast.Attribute):
                    # Readiness-driven I/O on the reactor's non-blocking
                    # sockets is the callback's job; *dialing* is not.
                    if node.func.attr not in {"connect", "create_connection"}:
                        continue
                findings.append(
                    _finding(
                        "RL006",
                        module,
                        node,
                        fn.qualname,
                        f"@reactor_only code must not block: {description} "
                        "would stall the event loop for every consumer in "
                        "the process",
                    )
                )
        else:
            selector_attrs = _selector_attrs(module, fn.class_name)
            if not selector_attrs or fn.node.name in {"__init__", "__del__"}:
                continue
            for node in own_walk(fn.node):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in selector_attrs
                ):
                    findings.append(
                        _finding(
                            "RL006",
                            module,
                            node,
                            fn.qualname,
                            f"selector state 'self.{node.attr}' touched outside "
                            "@reactor_only code; selectors are confined to the "
                            "reactor thread",
                        )
                    )
    return findings
