"""The collocation runner: place workloads on a machine, pick a sharing
strategy, simulate, and report the metrics the paper's figures plot.

Every experiment driver in :mod:`repro.experiments` is a thin wrapper around
this runner: it builds the machine from the Table 2 spec, constructs the
workloads for that figure, runs once per sharing strategy, and formats rows.
"""

from __future__ import annotations

import enum
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.coordl import CoorDLLoading
from repro.baselines.joader import JoaderLoading
from repro.hardware.gpu import GpuSharingMode
from repro.hardware.instances import MachineSpec
from repro.hardware.machine import Machine
from repro.simulation.engine import Simulator
from repro.training.loading import ConventionalLoading, TensorSocketLoading, attach_by_address
from repro.training.trainer import TrainerStats, trainer_process
from repro.training.workload import TrainingWorkload


class SharingStrategy(str, enum.Enum):
    """How collocated training processes obtain their data."""

    NONE = "none"                  # conventional per-process loaders
    TENSORSOCKET = "tensorsocket"  # the paper's shared producer
    COORDL = "coordl"              # CoorDL baseline
    JOADER = "joader"              # Joader baseline

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class WorkloadResult:
    """Per-training-process outcome of one run."""

    name: str
    model: str
    gpu_index: int
    batch_size: int
    samples: int
    batches: int
    samples_per_second: float
    tokens_per_second: float = 0.0
    throughput_series: List[Tuple[float, float]] = field(default_factory=list)


@dataclass
class CollocationResult:
    """Everything the experiments read off one simulated run."""

    machine: str
    strategy: SharingStrategy
    sharing_mode: GpuSharingMode
    duration_s: float
    workloads: List[WorkloadResult]
    cpu_utilization_percent: float
    gpu_utilization_percent: Dict[int, float]
    gpu_vram_gb: Dict[int, float]
    gpu_vram_peak_gb: Dict[int, float]
    traffic_mb_s: Dict[str, float]
    loader_workers: Dict[str, int]
    cost_per_hour: Optional[float] = None

    # -- aggregates ----------------------------------------------------------------
    @property
    def aggregate_samples_per_second(self) -> float:
        return sum(w.samples_per_second for w in self.workloads)

    @property
    def per_model_samples_per_second(self) -> float:
        if not self.workloads:
            return 0.0
        return self.aggregate_samples_per_second / len(self.workloads)

    def samples_per_dollar(self) -> Optional[float]:
        """Training samples bought per dollar of instance time (cloud runs)."""
        if self.cost_per_hour is None or self.cost_per_hour <= 0:
            return None
        return self.aggregate_samples_per_second * 3600.0 / self.cost_per_hour

    def result_for(self, name: str) -> WorkloadResult:
        for workload in self.workloads:
            if workload.name == name:
                return workload
        raise KeyError(f"no workload named {name!r} in this result")

    def summary_row(self) -> Dict[str, float]:
        row: Dict[str, float] = {
            "machine": self.machine,
            "strategy": str(self.strategy),
            "aggregate_samples_per_s": round(self.aggregate_samples_per_second, 1),
            "per_model_samples_per_s": round(self.per_model_samples_per_second, 1),
            "cpu_percent": round(self.cpu_utilization_percent, 1),
        }
        for index, value in sorted(self.gpu_utilization_percent.items()):
            row[f"gpu{index}_percent"] = round(value, 1)
        return row


class CollocationRunner:
    """Build, run and measure one collocated-training scenario."""

    def __init__(
        self,
        spec: MachineSpec,
        *,
        strategy: SharingStrategy = SharingStrategy.NONE,
        sharing_mode: GpuSharingMode = GpuSharingMode.MPS,
        duration_s: float = 120.0,
        warmup_s: float = 20.0,
        total_loader_workers: Optional[int] = None,
        producer_gpu: int = 0,
        buffer_size: int = 2,
        flexible_batching: bool = False,
        dataset_bytes: Optional[float] = None,
        address: Optional[str] = None,
    ) -> None:
        if duration_s <= warmup_s:
            raise ValueError("duration_s must exceed warmup_s")
        self.spec = spec
        self.strategy = SharingStrategy(strategy)
        self.sharing_mode = sharing_mode
        self.duration_s = float(duration_s)
        self.warmup_s = float(warmup_s)
        self.total_loader_workers = total_loader_workers
        self.producer_gpu = int(producer_gpu)
        self.buffer_size = int(buffer_size)
        self.flexible_batching = bool(flexible_batching)
        self.dataset_bytes = dataset_bytes
        #: ``sim://`` address the run's pipeline is served at; auto-generated
        #: per run when not given so concurrent runners never collide.
        self.address = address

    # -- worker allocation --------------------------------------------------------------
    def _allocate_workers(self, workloads: Sequence[TrainingWorkload]) -> Dict[str, int]:
        """How many loader workers each training process gets (non-shared), or
        how many the shared producer gets (shared strategies)."""
        total = self.total_loader_workers
        if total is None:
            total = self.spec.vcpus
        if self.strategy is SharingStrategy.NONE:
            # Split the worker budget across the collocated processes, matching
            # the paper's setup (uneven splits round-robin the remainder).
            n = len(workloads)
            base, extra = divmod(total, n)
            allocation = {}
            for index, workload in enumerate(workloads):
                allocation[workload.name] = max(1, base + (1 if index < extra else 0))
            return allocation
        return {"__shared__": max(1, total)}

    # -- pipeline construction -------------------------------------------------------------
    def _build_pipeline(self, sim, machine, allocation: Dict[str, int]):
        if self.strategy is SharingStrategy.NONE:
            return ConventionalLoading(sim, machine)
        workers = allocation["__shared__"]
        if self.strategy is SharingStrategy.TENSORSOCKET:
            return TensorSocketLoading(
                sim,
                machine,
                producer_gpu=self.producer_gpu,
                loader_workers=workers,
                buffer_size=self.buffer_size,
                flexible_batching=self.flexible_batching,
            )
        if self.strategy is SharingStrategy.COORDL:
            return CoorDLLoading(sim, machine, loader_workers=workers)
        if self.strategy is SharingStrategy.JOADER:
            return JoaderLoading(sim, machine, loader_workers=workers)
        raise ValueError(f"unsupported strategy {self.strategy}")

    # -- main entry point ---------------------------------------------------------------------
    def run(self, workloads: Sequence[TrainingWorkload]) -> CollocationResult:
        workloads = list(workloads)
        if not workloads:
            raise ValueError("at least one workload is required")
        for workload in workloads:
            if workload.gpu_index >= self.spec.gpu_count:
                raise ValueError(
                    f"workload {workload.name!r} wants GPU {workload.gpu_index} but "
                    f"{self.spec.name} has only {self.spec.gpu_count}"
                )

        sim = Simulator()
        machine = Machine(sim, self.spec, sharing_mode=self.sharing_mode)
        if self.dataset_bytes is not None:
            independent_readers = (
                len(workloads) if self.strategy is SharingStrategy.NONE else 1
            )
            machine.set_dataset_working_set(self.dataset_bytes * independent_readers)

        allocation = self._allocate_workers(workloads)
        if self.strategy is SharingStrategy.NONE:
            for workload in workloads:
                workload.loader_workers = allocation[workload.name]

        pipeline = self._build_pipeline(sim, machine, allocation)
        # Serve the pipeline at a sim:// endpoint; trainers attach by address,
        # mirroring how the real systems are reached (paper Section 3.3.1).
        address = self.address or (
            f"sim://collocation/{self.strategy}/{uuid.uuid4().hex[:8]}"
        )
        pipeline.serve(address)
        try:
            all_stats: List[Tuple[TrainingWorkload, TrainerStats]] = []
            for workload in workloads:
                source = attach_by_address(address, workload)
                stats = TrainerStats(
                    name=workload.name,
                    batch_size=workload.batch_size,
                    warmup_s=self.warmup_s,
                )
                all_stats.append((workload, stats))
                sim.process(
                    trainer_process(
                        sim,
                        machine,
                        workload,
                        source,
                        stats,
                        duration_s=self.duration_s,
                        aux_offloaded=self.strategy is SharingStrategy.TENSORSOCKET,
                    ),
                    name=f"trainer-{workload.name}",
                )
            pipeline.start(self.duration_s)

            def _end_warmup():
                yield sim.timeout(self.warmup_s)
                machine.reset_utilization()

            sim.process(_end_warmup(), name="warmup-marker")
            sim.run(until=self.duration_s)
        finally:
            pipeline.close()

        return self._collect(machine, workloads, all_stats, allocation)

    # -- result assembly --------------------------------------------------------------------
    def _collect(
        self,
        machine: Machine,
        workloads: Sequence[TrainingWorkload],
        all_stats: Sequence[Tuple[TrainingWorkload, TrainerStats]],
        allocation: Dict[str, int],
    ) -> CollocationResult:
        workload_results = []
        for workload, stats in all_stats:
            rate = stats.samples_per_second()
            workload_results.append(
                WorkloadResult(
                    name=workload.name,
                    model=workload.model.name,
                    gpu_index=workload.gpu_index,
                    batch_size=workload.batch_size,
                    samples=stats.samples,
                    batches=stats.batches,
                    samples_per_second=rate,
                    tokens_per_second=rate * workload.model.tokens_per_sample,
                    throughput_series=stats.throughput_series(),
                )
            )
        gpu_util = {
            index: gpu.utilization_percent(since=self.warmup_s)
            for index, gpu in enumerate(machine.gpus)
        }
        gpu_vram = {index: gpu.vram_in_use_gb for index, gpu in enumerate(machine.gpus)}
        gpu_vram_peak = {index: gpu.vram_peak_gb for index, gpu in enumerate(machine.gpus)}
        return CollocationResult(
            machine=self.spec.name,
            strategy=self.strategy,
            sharing_mode=self.sharing_mode,
            duration_s=self.duration_s,
            workloads=workload_results,
            cpu_utilization_percent=machine.cpu.utilization_percent(since=self.warmup_s),
            gpu_utilization_percent=gpu_util,
            gpu_vram_gb=gpu_vram,
            gpu_vram_peak_gb=gpu_vram_peak,
            traffic_mb_s=machine.traffic_report(),
            loader_workers=dict(allocation),
            cost_per_hour=self.spec.cost_per_hour,
        )
