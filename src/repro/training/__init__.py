"""Training simulation: model cost profiles, trainer actors and collocation.

The paper's evaluation trains real models (ResNet18, RegNetX, MobileNetV3,
CLMR, the DALL-E 2 diffusion prior and Qwen2.5-0.5B) on real GPUs.  Neither is
available here, so this subpackage models a training process as a cost
profile — GPU-seconds and CPU-seconds per sample, bytes moved per sample,
VRAM — calibrated from published throughput numbers and the paper's own
measurements, and runs those processes on the simulated hardware from
:mod:`repro.hardware`.

* :mod:`~repro.training.model_zoo` — the calibrated profiles (Table 1 models).
* :mod:`~repro.training.workload` — a workload = model + GPU + batch size +
  loader workers.
* :mod:`~repro.training.trainer` — the simulated training-loop actor.
* :mod:`~repro.training.loading` — loading pipelines: conventional per-process
  loaders and the TensorSocket shared producer.
* :mod:`~repro.training.collocation` — the collocation runner used by every
  experiment driver: build a machine, place workloads, pick a sharing
  strategy, run, and report throughput / utilization / traffic / cost.
"""

from repro.training.model_zoo import (
    MODEL_ZOO,
    ModelProfile,
    get_model,
    list_models,
)
from repro.training.workload import TrainingWorkload
from repro.training.trainer import TrainerStats
from repro.training.collocation import (
    CollocationResult,
    CollocationRunner,
    SharingStrategy,
    WorkloadResult,
)

__all__ = [
    "ModelProfile",
    "MODEL_ZOO",
    "get_model",
    "list_models",
    "TrainingWorkload",
    "TrainerStats",
    "CollocationRunner",
    "CollocationResult",
    "WorkloadResult",
    "SharingStrategy",
]
