"""Simulated data-loading pipelines: conventional per-process and TensorSocket.

Both pipelines feed :func:`~repro.training.trainer.trainer_process` actors
through a small ``BatchSource`` interface (``get()`` → ticket event,
``done(ticket)`` when the training step finished), so the trainer code is
identical regardless of how loading is organised — exactly the plug-and-play
property the real library has.

* :class:`ConventionalLoading` — the paper's baseline: every training process
  owns its own loader with its own workers; every batch is read from storage,
  preprocessed on the CPU and copied over PCIe *per process*.
* :class:`TensorSocketLoading` — the shared producer: one set of workers reads
  and preprocesses each batch once, stages it on the producer GPU over PCIe
  once, shares it to consumers on other GPUs over NVLink, and releases the
  staged memory when every consumer has finished with it.  Auxiliary GPU work
  attached to data preparation (CLIP for DALL-E 2) runs once on the producer.

The CoorDL and Joader pipelines live in :mod:`repro.baselines` and follow the
same interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.hardware.machine import Machine
from repro.hardware.metrics import GB
from repro.messaging import endpoint as endpoints
from repro.simulation.engine import Simulator
from repro.simulation.resources import Store
from repro.training.workload import TrainingWorkload

# Simulated loading pipelines are reachable by URI like the real systems they
# model (TensorSocket's server, CoorDL's cache, Joader's loader server): the
# ``sim://`` scheme plugs a plain object transport into the same process-wide
# registry the ``inproc://`` producer/consumer path uses.
SIM_SCHEME = "sim"
if not endpoints.default_registry().registered(SIM_SCHEME):
    endpoints.register_transport(SIM_SCHEME, endpoints.LocalObjectTransport(SIM_SCHEME))


def attach_by_address(address: str, workload: TrainingWorkload) -> "BatchSource":
    """Attach a workload to the pipeline served at a ``sim://`` address."""
    pipeline = endpoints.connect(address).resource
    return pipeline.attach(workload)


@dataclass
class BatchTicket:
    """A staged batch handed to one or more trainers."""

    nbytes: int = 0
    refs_remaining: int = 1
    on_release: Optional[Callable[[], None]] = None

    def release_one(self) -> None:
        self.refs_remaining -= 1
        if self.refs_remaining == 0 and self.on_release is not None:
            self.on_release()


class BatchSource:
    """The trainer-facing end of a loading pipeline (one per training process)."""

    def __init__(self, sim: Simulator, capacity: int, name: str) -> None:
        self.store = Store(sim, capacity=capacity, name=name)
        self.batches_delivered = 0

    def get(self):
        """Event yielding the next :class:`BatchTicket`."""
        return self.store.get()

    def put(self, ticket: BatchTicket):
        self.batches_delivered += 1
        return self.store.put(ticket)

    def done(self, ticket: BatchTicket) -> None:
        ticket.release_one()

    @property
    def buffered(self) -> int:
        return len(self.store)


class LoadingPipeline:
    """Base class: owns worker processes and hands out batch sources.

    A pipeline can optionally be *served* at a ``sim://`` URI so that
    trainers attach by address (:func:`attach_by_address`) instead of holding
    the pipeline object — the simulation-side mirror of
    :func:`repro.serve` / :func:`repro.attach`.
    """

    def __init__(
        self, sim: Simulator, machine: Machine, *, address: Optional[str] = None
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.sources: Dict[str, BatchSource] = {}
        self.address: Optional[str] = None
        self._endpoint: Optional[endpoints.Endpoint] = None
        if address is not None:
            self.serve(address)

    def serve(self, address: str) -> "LoadingPipeline":
        """Register this pipeline at ``address`` (releases on :meth:`close`)."""
        if self._endpoint is not None:
            raise RuntimeError(f"pipeline is already served at {self.address!r}")
        self._endpoint = endpoints.bind(address, resource=self)
        self.address = address
        return self

    def close(self) -> None:
        """Release the pipeline's address registration (idempotent)."""
        if self._endpoint is not None:
            self._endpoint.release()
            self._endpoint = None

    def attach(self, workload: TrainingWorkload) -> BatchSource:
        raise NotImplementedError

    def start(self, duration_s: float) -> None:
        raise NotImplementedError


class ConventionalLoading(LoadingPipeline):
    """Per-process loaders: the non-shared baseline.

    Each attached workload gets its own worker processes.  A worker loop is
    one batch end to end: read the encoded samples from storage, spend the
    preprocessing CPU time on one core, copy the prepared batch to the
    workload's GPU over PCIe (the baseline uses GPU prefetching, matching the
    paper's setup), and enqueue it for the trainer.
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        *,
        prefetch_batches: int = 2,
        address: Optional[str] = None,
    ) -> None:
        super().__init__(sim, machine, address=address)
        self.prefetch_batches = int(prefetch_batches)
        self._workloads: List[TrainingWorkload] = []

    def attach(self, workload: TrainingWorkload) -> BatchSource:
        source = BatchSource(
            self.sim,
            capacity=max(self.prefetch_batches, 1),
            name=f"{workload.name}-queue",
        )
        self.sources[workload.name] = source
        self._workloads.append(workload)
        return source

    def start(self, duration_s: float) -> None:
        for workload in self._workloads:
            source = self.sources[workload.name]
            workers = max(1, workload.loader_workers)
            for worker_index in range(workers):
                self.sim.process(
                    self._worker_loop(workload, source, duration_s),
                    name=f"{workload.name}-loader-{worker_index}",
                )

    def _worker_loop(self, workload: TrainingWorkload, source: BatchSource, duration_s: float):
        storage = self.machine.storage
        cpu = self.machine.cpu
        pcie = self.machine.pcie(workload.gpu_index)
        if workload.start_delay_s > 0:
            yield self.sim.timeout(workload.start_delay_s)
        while self.sim.now < duration_s:
            yield from storage.read(workload.stored_bytes_per_batch)
            yield from cpu.run(workload.cpu_seconds_per_batch)
            yield from pcie.transfer(workload.h2d_bytes_per_batch)
            ticket = BatchTicket(nbytes=workload.h2d_bytes_per_batch, refs_remaining=1)
            yield source.put(ticket)


class TensorSocketLoading(LoadingPipeline):
    """The shared producer pipeline.

    One pool of loader workers prepares each batch exactly once and hands it
    to a *stager* that copies it onto the producer GPU, broadcasts it over
    NVLink to any consumer GPUs, performs producer-side auxiliary GPU work
    (Section 3.3.4), and enqueues a pointer ticket into every consumer's
    bounded buffer (capacity = the paper's consumer batch buffer).  The staged
    VRAM is freed once every consumer has finished the batch — the shared
    ticket's refcount is the simulation-side twin of the acknowledgement
    ledger in :mod:`repro.core`.
    """

    #: Control-plane cost of orchestrating one consumer batch (ZeroMQ message
    #: handling, payload packing) — a fraction of a millisecond of CPU.
    CONTROL_CPU_SECONDS_PER_BATCH = 0.15e-3
    #: Extra producer-side CPU per batch when flexible batch sizing is on
    #: (collating producer batches and carving slices; Figure 10 shows the
    #: overhead is small).
    FLEXIBLE_CPU_SECONDS_PER_BATCH = 0.35e-3
    #: Producer-process VRAM overhead: CUDA context plus the default buffer of
    #: staged batches (Tables 3 and 4 observe ~1.3-1.5 GB).
    PRODUCER_VRAM_OVERHEAD_GB = 0.6

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        *,
        producer_gpu: int = 0,
        loader_workers: int = 8,
        buffer_size: int = 2,
        flexible_batching: bool = False,
        stage_on_gpu: bool = True,
        address: Optional[str] = None,
    ) -> None:
        super().__init__(sim, machine, address=address)
        self.producer_gpu = int(producer_gpu)
        self.loader_workers = max(1, int(loader_workers))
        self.buffer_size = max(1, int(buffer_size))
        self.flexible_batching = bool(flexible_batching)
        self.stage_on_gpu = bool(stage_on_gpu)
        self._workloads: List[TrainingWorkload] = []
        self._staging: Optional[Store] = None
        # Traffic / memory accounting of the producer itself.
        self.batches_produced = 0

    def attach(self, workload: TrainingWorkload) -> BatchSource:
        source = BatchSource(self.sim, capacity=self.buffer_size, name=f"{workload.name}-buffer")
        self.sources[workload.name] = source
        self._workloads.append(workload)
        return source

    # -- pipeline processes ------------------------------------------------------------
    def start(self, duration_s: float) -> None:
        if not self._workloads:
            raise RuntimeError("no workloads attached to the shared loader")
        # The producer prepares batches for the heaviest demand stream; all
        # consumers traverse the same data at the same rate.
        self._reference = max(self._workloads, key=lambda w: w.batch_size)
        self._staging = Store(
            self.sim, capacity=max(2, self.loader_workers), name="producer-staging"
        )
        gpu = self.machine.gpu(self.producer_gpu)
        gpu.register_process()
        gpu.allocate(int(self.PRODUCER_VRAM_OVERHEAD_GB * GB))
        for worker_index in range(self.loader_workers):
            self.sim.process(
                self._worker_loop(duration_s), name=f"producer-worker-{worker_index}"
            )
        self.sim.process(self._stager_loop(duration_s), name="producer-stager")

    def _worker_loop(self, duration_s: float):
        """Read + preprocess one batch per iteration (shared across consumers)."""
        storage = self.machine.storage
        cpu = self.machine.cpu
        workload = self._reference
        while self.sim.now < duration_s:
            yield from storage.read(workload.stored_bytes_per_batch)
            yield from cpu.run(workload.cpu_seconds_per_batch)
            yield self._staging.put(workload.h2d_bytes_per_batch)

    def _stager_loop(self, duration_s: float):
        """Move prepared batches to the GPU once and fan pointers out."""
        cpu = self.machine.cpu
        pcie = self.machine.pcie(self.producer_gpu)
        producer_gpu = self.machine.gpu(self.producer_gpu)
        workload = self._reference
        aux_seconds = producer_gpu.scale_work(workload.aux_gpu_seconds_per_batch)
        while self.sim.now < duration_s:
            nbytes = yield self._staging.get()
            # Host-to-device copy happens once, on the producer GPU.
            yield from pcie.transfer(nbytes)
            if self.stage_on_gpu:
                producer_gpu.allocate(nbytes)
            if aux_seconds > 0:
                # Producer-side CLIP (or similar) inference, shared by all consumers.
                yield producer_gpu.compute(aux_seconds)
            # Broadcast to consumers on other GPUs over NVLink.
            destination_gpus = sorted(
                {w.gpu_index for w in self._workloads if w.gpu_index != self.producer_gpu}
            )
            for gpu_index in destination_gpus:
                if self.machine.has_nvlink:
                    yield from self.machine.nvlink(self.producer_gpu, gpu_index).transfer(nbytes)
                else:
                    # Without NVLink the copy goes through host memory: PCIe up + down.
                    yield from pcie.transfer(nbytes)
                    yield from self.machine.pcie(gpu_index).transfer(nbytes)
                self.machine.gpu(gpu_index).allocate(nbytes)

            orchestration = self.CONTROL_CPU_SECONDS_PER_BATCH * len(self._workloads)
            if self.flexible_batching:
                orchestration += self.FLEXIBLE_CPU_SECONDS_PER_BATCH
            yield from cpu.run(orchestration)

            ticket = BatchTicket(
                nbytes=nbytes,
                refs_remaining=len(self._workloads),
                on_release=self._make_release(nbytes, destination_gpus),
            )
            self.batches_produced += 1
            for consumer in self._workloads:
                yield self.sources[consumer.name].put(ticket)

    def _make_release(self, nbytes: int, destination_gpus: List[int]) -> Callable[[], None]:
        def _release() -> None:
            if self.stage_on_gpu:
                self.machine.gpu(self.producer_gpu).free(nbytes)
            for gpu_index in destination_gpus:
                self.machine.gpu(gpu_index).free(nbytes)

        return _release
