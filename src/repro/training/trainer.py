"""The simulated training-loop actor and its statistics.

A trainer repeatedly: obtains the next batch from its batch source (which is
where shared vs. non-shared loading differ), performs the training step on its
GPU, does a little host-side work, and records progress.  The actor is a
generator run as a :class:`~repro.simulation.engine.Process`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.hardware.machine import Machine
from repro.hardware.metrics import GB
from repro.simulation.engine import Simulator
from repro.training.workload import TrainingWorkload


@dataclass
class TrainerStats:
    """Progress counters for one training process."""

    name: str
    batch_size: int
    samples: int = 0
    batches: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    warmup_s: float = 0.0
    warmup_samples: int = 0
    series_times: List[float] = field(default_factory=list)
    series_samples: List[int] = field(default_factory=list)

    def record_batch(self, now: float) -> None:
        self.samples += self.batch_size
        self.batches += 1
        self.finished_at = now
        if now <= self.started_at + self.warmup_s:
            self.warmup_samples = self.samples
        self.series_times.append(now)
        self.series_samples.append(self.samples)

    # -- reporting -----------------------------------------------------------------
    def samples_per_second(self) -> float:
        """Steady-state throughput, excluding the warm-up window."""
        start = self.started_at + self.warmup_s
        elapsed = self.finished_at - start
        if elapsed <= 0:
            return 0.0
        return (self.samples - self.warmup_samples) / elapsed

    def tokens_per_second(self, tokens_per_sample: int) -> float:
        return self.samples_per_second() * tokens_per_sample

    def throughput_series(self, window_s: float = 30.0) -> List[Tuple[float, float]]:
        """(time, samples/s) sampled over trailing windows — Figure 13's series."""
        points: List[Tuple[float, float]] = []
        if not self.series_times:
            return points
        start_index = 0
        for index, now in enumerate(self.series_times):
            while self.series_times[start_index] < now - window_s:
                start_index += 1
            window = now - self.series_times[start_index]
            if window <= 0:
                continue
            delta = self.series_samples[index] - self.series_samples[start_index]
            points.append((now, delta / window))
        return points


def trainer_process(
    sim: Simulator,
    machine: Machine,
    workload: TrainingWorkload,
    batch_source,
    stats: TrainerStats,
    *,
    duration_s: float,
    aux_offloaded: bool = False,
):
    """Generator body of one training process.

    Parameters
    ----------
    batch_source:
        Object with ``get()`` returning an event that yields a batch ticket,
        and ``done(ticket)`` to be called once the training step finished.
    aux_offloaded:
        When True the auxiliary GPU work attached to data preparation (e.g.
        CLIP inference for DALL-E 2) runs in the shared producer instead of in
        this process (paper Section 3.3.4 / Figure 7).
    """
    gpu = machine.gpu(workload.gpu_index)
    pcie = machine.pcie(workload.gpu_index)
    model = workload.model

    if workload.start_delay_s > 0:
        yield sim.timeout(workload.start_delay_s)

    gpu.register_process()
    gpu.allocate(int(model.vram_gb * GB))
    stats.started_at = sim.now

    gpu_seconds = workload.gpu_seconds_per_batch
    if not aux_offloaded:
        gpu_seconds += workload.aux_gpu_seconds_per_batch
    gpu_seconds = gpu.scale_work(gpu_seconds)
    host_seconds = workload.batch_size * model.train_cpu_seconds_per_sample
    background_bytes = workload.batch_size * model.background_pcie_bytes_per_sample

    try:
        while sim.now < duration_s:
            ticket = yield batch_source.get()
            if ticket is None:
                break
            if host_seconds > 0:
                yield from machine.cpu.run(host_seconds)
            yield gpu.compute(gpu_seconds)
            if background_bytes > 0:
                pcie.record_only(background_bytes)
            batch_source.done(ticket)
            stats.record_batch(sim.now)
    finally:
        gpu.free(int(model.vram_gb * GB))
        gpu.unregister_process()
