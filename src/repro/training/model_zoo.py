"""Calibrated cost profiles for the models evaluated in the paper (Table 1).

Each :class:`ModelProfile` captures the quantities that determine whether a
training pipeline is input-bound or GPU-bound — which is all that matters for
reproducing the paper's results:

* ``gpu_seconds_per_sample`` — SM time per training sample on an A100 SXM
  (other GPUs are scaled through ``GpuSpec.relative_compute``),
* ``aux_gpu_seconds_per_sample`` — GPU work that belongs to the *data
  preparation* rather than the trained model (the CLIP inference feeding the
  DALL-E 2 diffusion prior); TensorSocket moves this to the producer,
* ``cpu_seconds_per_sample`` — single-core host preprocessing cost (fetch,
  decode, augment, collate),
* ``stored_bytes_per_sample`` — on-disk size read per sample,
* ``h2d_bytes_per_sample`` — bytes copied host→device per sample after
  preprocessing,
* ``vram_gb`` — steady-state model + activations + optimizer memory at the
  default batch size.

Calibration sources: the throughput ceilings are set so that, on the paper's
machines, each model reproduces the behaviour reported in Section 4 — e.g.
MobileNetV3-Small is far faster on the GPU than 12 vCPUs can feed (so sharing
nearly doubles throughput, Figure 8), MobileNetV3-Large is GPU-bound at
~1.3k samples/s (so sharing mostly frees CPU), CLMR needs ~32 vCPUs to feed a
4-way collocated A10G (Figure 11), the DALL-E prior + CLIP saturate an H100
(Figure 12), and Qwen2.5-0.5B is entirely GPU-bound (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class ModelProfile:
    """Cost model of one training workload."""

    name: str
    family: str
    dataset: str
    gpu_seconds_per_sample: float
    cpu_seconds_per_sample: float
    stored_bytes_per_sample: int
    h2d_bytes_per_sample: int
    vram_gb: float
    default_batch_size: int = 128
    aux_gpu_seconds_per_sample: float = 0.0
    #: Host work per sample done by the training process itself (optimizer
    #: step bookkeeping, Python loop) — charged to the CPU regardless of how
    #: data loading is shared.
    train_cpu_seconds_per_sample: float = 0.0
    #: Extra PCIe traffic per sample not related to input data (gradient
    #: reductions, logging); reproduces the 48 MB/s baseline PCIe of Table 4.
    background_pcie_bytes_per_sample: int = 0
    tokens_per_sample: int = 0
    notes: str = ""

    # -- derived ----------------------------------------------------------------
    def gpu_bound_samples_per_second(self, relative_compute: float = 1.0) -> float:
        """Peak samples/s with the GPU to itself (no input bottleneck)."""
        per_sample = (self.gpu_seconds_per_sample + self.aux_gpu_seconds_per_sample)
        return relative_compute / per_sample

    def cpu_bound_samples_per_second(self, cores: float) -> float:
        """Peak samples/s that ``cores`` data-loading cores can prepare."""
        if self.cpu_seconds_per_sample <= 0:
            return float("inf")
        return cores / self.cpu_seconds_per_sample

    def is_input_bound(self, cores: float, relative_compute: float = 1.0) -> bool:
        return self.cpu_bound_samples_per_second(cores) < self.gpu_bound_samples_per_second(
            relative_compute
        )

    def with_batch_size(self, batch_size: int) -> "ModelProfile":
        return replace(self, default_batch_size=int(batch_size))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# ImageNet image-classification pipeline costs (shared by the TIMM models):
# fetch + JPEG decode + resize + crop + flip + normalize ≈ 6 ms of one core per
# image, ~110 KB read from disk, ~220 KB copied to the GPU (uint8 CHW + labels).
_IMAGENET_CPU = 5.8e-3
_IMAGENET_STORED = 110 * KB
_IMAGENET_H2D = 220 * KB

RESNET18 = ModelProfile(
    name="resnet18",
    family="image_classification",
    dataset="imagenet",
    gpu_seconds_per_sample=1.0 / 2200.0,
    cpu_seconds_per_sample=_IMAGENET_CPU,
    stored_bytes_per_sample=_IMAGENET_STORED,
    h2d_bytes_per_sample=_IMAGENET_H2D,
    vram_gb=7.9,
    default_batch_size=128,
    train_cpu_seconds_per_sample=0.012e-3,
    notes="TIMM resnet18; ~2.2k img/s on A100 with AMP.",
)

REGNETX_002 = ModelProfile(
    name="regnetx_002",
    family="image_classification",
    dataset="imagenet",
    gpu_seconds_per_sample=1.0 / 3400.0,
    cpu_seconds_per_sample=_IMAGENET_CPU,
    stored_bytes_per_sample=_IMAGENET_STORED,
    h2d_bytes_per_sample=_IMAGENET_H2D,
    vram_gb=7.1,
    default_batch_size=128,
    train_cpu_seconds_per_sample=0.012e-3,
    notes="RegNetX 200MF; small model, heavily input-bound on 12 vCPUs/GPU.",
)

REGNETX_004 = ModelProfile(
    name="regnetx_004",
    family="image_classification",
    dataset="imagenet",
    gpu_seconds_per_sample=1.0 / 2650.0,
    cpu_seconds_per_sample=_IMAGENET_CPU,
    stored_bytes_per_sample=_IMAGENET_STORED,
    h2d_bytes_per_sample=_IMAGENET_H2D,
    vram_gb=7.4,
    default_batch_size=128,
    train_cpu_seconds_per_sample=0.012e-3,
    notes="RegNetX 400MF.",
)

MOBILENET_S = ModelProfile(
    name="mobilenet_s",
    family="image_classification",
    dataset="imagenet",
    gpu_seconds_per_sample=1.0 / 3950.0,
    cpu_seconds_per_sample=_IMAGENET_CPU,
    stored_bytes_per_sample=_IMAGENET_STORED,
    h2d_bytes_per_sample=_IMAGENET_H2D,
    vram_gb=6.6,
    default_batch_size=128,
    train_cpu_seconds_per_sample=0.010e-3,
    notes="MobileNetV3-Small 0.75; the most input-bound model in Figure 8.",
)

MOBILENET_L = ModelProfile(
    name="mobilenet_l",
    family="image_classification",
    dataset="imagenet",
    gpu_seconds_per_sample=1.0 / 1300.0,
    cpu_seconds_per_sample=_IMAGENET_CPU,
    stored_bytes_per_sample=_IMAGENET_STORED,
    h2d_bytes_per_sample=_IMAGENET_H2D,
    vram_gb=7.3,
    default_batch_size=128,
    train_cpu_seconds_per_sample=0.010e-3,
    notes="MobileNetV3-Large 1.00; GPU-bound on the A100, Table 3 subject.",
)

CLMR = ModelProfile(
    name="clmr",
    family="audio_classification",
    dataset="librispeech",
    # ~240 samples/s aggregate on one A10G under 4-way MPS collocation
    # (Figure 11's shared plateau of ~60 samples/s per model).
    gpu_seconds_per_sample=0.6 / 245.0,
    # Raw-waveform augmentation chains are expensive: ~32 vCPUs are needed to
    # feed 4 collocated models (Figure 11's non-shared behaviour).
    cpu_seconds_per_sample=115.0e-3,
    stored_bytes_per_sample=650 * KB,
    h2d_bytes_per_sample=236 * KB,
    vram_gb=4.2,
    default_batch_size=48,
    train_cpu_seconds_per_sample=0.05e-3,
    notes="CLMR contrastive audio model on raw LibriSpeech waveforms.",
)

DALLE2_PRIOR = ModelProfile(
    name="dalle2_prior",
    family="image_generation",
    dataset="cc3m",
    # ~585 samples/s for prior + CLIP on the H100 when run alone (Figure 12).
    gpu_seconds_per_sample=2.2 / 585.0 * 0.78,
    aux_gpu_seconds_per_sample=2.2 / 585.0 * 0.22,
    cpu_seconds_per_sample=4.0e-3,
    stored_bytes_per_sample=90 * KB,
    h2d_bytes_per_sample=240 * KB,
    vram_gb=14.0,
    default_batch_size=64,
    train_cpu_seconds_per_sample=0.03e-3,
    notes=(
        "DALL-E 2 diffusion prior trained online: every batch is first embedded by a "
        "frozen CLIP model (aux GPU work) which TensorSocket moves to the producer."
    ),
)

QWEN25_05B = ModelProfile(
    name="qwen25_05b",
    family="llm_finetuning",
    dataset="alpaca",
    # 7.5k tokens/s per A100 at ~270 tokens/sample (Table 4).
    gpu_seconds_per_sample=270.0 / 7500.0,
    cpu_seconds_per_sample=0.8e-3,
    stored_bytes_per_sample=1 * KB,
    h2d_bytes_per_sample=4 * KB,
    vram_gb=6.1,
    default_batch_size=8,
    train_cpu_seconds_per_sample=1.0e-3,
    background_pcie_bytes_per_sample=int(1.7 * MB),
    tokens_per_sample=270,
    notes="Qwen2.5-0.5B TorchTune LoRA-style fine-tune on Alpaca; GPU-bound.",
)


MODEL_ZOO: Dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (
        RESNET18,
        REGNETX_002,
        REGNETX_004,
        MOBILENET_S,
        MOBILENET_L,
        CLMR,
        DALLE2_PRIOR,
        QWEN25_05B,
    )
}

#: Mapping of the names used in the paper's figures to zoo keys.
PAPER_NAMES: Dict[str, str] = {
    "ResNet18": "resnet18",
    "RegNetX 2": "regnetx_002",
    "RegNetX 4": "regnetx_004",
    "MobileNet S": "mobilenet_s",
    "MobileNet L": "mobilenet_l",
    "CLMR": "clmr",
    "DALL-E 2": "dalle2_prior",
    "Qwen2.5 0.5B": "qwen25_05b",
}


def get_model(name: str) -> ModelProfile:
    """Look up a profile by zoo key or by the paper's display name."""
    key = PAPER_NAMES.get(name, name).lower()
    try:
        return MODEL_ZOO[key]
    except KeyError as exc:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)} "
            f"(or paper names {sorted(PAPER_NAMES)})"
        ) from exc


def list_models(family: Optional[str] = None) -> Tuple[str, ...]:
    """Zoo keys, optionally filtered to one family."""
    names = [
        name for name, profile in MODEL_ZOO.items() if family is None or profile.family == family
    ]
    return tuple(sorted(names))
