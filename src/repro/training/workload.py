"""Workload descriptions: what trains where, with which loader resources."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.training.model_zoo import ModelProfile, get_model


@dataclass
class TrainingWorkload:
    """One training process to be placed on a machine.

    Attributes
    ----------
    model:
        The cost profile of the model being trained.
    gpu_index:
        Which GPU of the machine the training process runs on.
    batch_size:
        Per-iteration batch size; defaults to the model profile's default.
    loader_workers:
        Data-loading workers this process owns under *non-shared* loading.
        Under shared loading the producer owns the workers instead.
    name:
        Label used in results (defaults to ``model.name`` plus an index).
    start_delay_s:
        Simulated seconds after the run starts before this process joins —
        used to exercise late joining / rubberbanding scenarios.
    """

    model: ModelProfile
    gpu_index: int = 0
    batch_size: Optional[int] = None
    loader_workers: int = 4
    name: Optional[str] = None
    start_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.model, str):
            self.model = get_model(self.model)
        if self.batch_size is None:
            self.batch_size = self.model.default_batch_size
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.loader_workers < 0:
            raise ValueError("loader_workers must be non-negative")
        if self.gpu_index < 0:
            raise ValueError("gpu_index must be non-negative")
        if self.start_delay_s < 0:
            raise ValueError("start_delay_s must be non-negative")
        if self.name is None:
            self.name = self.model.name

    # -- per-batch costs -----------------------------------------------------------
    @property
    def gpu_seconds_per_batch(self) -> float:
        return self.batch_size * self.model.gpu_seconds_per_sample

    @property
    def aux_gpu_seconds_per_batch(self) -> float:
        return self.batch_size * self.model.aux_gpu_seconds_per_sample

    @property
    def cpu_seconds_per_batch(self) -> float:
        return self.batch_size * self.model.cpu_seconds_per_sample

    @property
    def stored_bytes_per_batch(self) -> int:
        return self.batch_size * self.model.stored_bytes_per_sample

    @property
    def h2d_bytes_per_batch(self) -> int:
        return self.batch_size * self.model.h2d_bytes_per_sample

    def __repr__(self) -> str:
        return (
            f"TrainingWorkload({self.name!r}, gpu={self.gpu_index}, "
            f"batch={self.batch_size}, workers={self.loader_workers})"
        )
