"""Joader: a shared loading server with dependent sampling (Xu et al., NeurIPS'22).

Joader registers every training job with a loading server; dependent sampling
lets jobs share loading work even across overlapping datasets, but (as the
paper details in Sections 2 and 4.7) that flexibility has costs TensorSocket
avoids:

* the intersection computations of dependent sampling run *every iteration*,
  and their cost grows with the number of registered jobs;
* samples are delivered to each job as NumPy arrays over IPC — bytes are
  copied per job, and the job must rebuild tensors and batches itself before
  the host-to-device copy;
* there is no mini-batch support, so the per-sample delivery path is serial
  per job.

The model below reproduces the per-job serial delivery path whose cost is
``DISPATCH_BASE + DISPATCH_PER_JOB × (number of jobs)`` per sample; those two
constants are fitted to the Joader curve of the paper's Figure 15
(983 → 287 samples/s per model from 1x to 8x collocation on the H100 server).
The shared read/decode pipeline itself uses the configured worker pool and is
rarely the binding constraint, matching the paper's analysis that the sampler
overhead, not raw decoding, is what limits Joader.

Like the real Joader loading server (which jobs register with over RPC), the
simulated pipeline can be served at a ``sim://`` URI and attached by address —
pass ``address=`` or call :meth:`~repro.training.loading.LoadingPipeline.serve`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hardware.machine import Machine
from repro.simulation.engine import Simulator
from repro.simulation.resources import Store
from repro.training.loading import BatchSource, BatchTicket, LoadingPipeline
from repro.training.workload import TrainingWorkload


class JoaderLoading(LoadingPipeline):
    """Simulated Joader pipeline (dependent sampling + NumPy-over-IPC delivery)."""

    #: Serial per-sample dispatch cost with a single registered job (seconds):
    #: RPC hand-off, NumPy materialization and Python-side batching.
    DISPATCH_BASE = 0.66e-3
    #: Additional serial per-sample cost for every registered job, from the
    #: per-iteration dependent-sampling intersection computation.
    DISPATCH_PER_JOB = 0.35e-3
    #: The hard-coded Rust pre-processing pipeline is leaner than the Python one.
    PIPELINE_SPEEDUP = 1.4
    #: Joader has no batching support; the training script assembles batches,
    #: so its receive queue is effectively one batch deep.
    DELIVERY_BUFFER = 1

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        *,
        loader_workers: int = 8,
        address: Optional[str] = None,
    ) -> None:
        super().__init__(sim, machine, address=address)
        self.loader_workers = max(1, int(loader_workers))
        self._workloads: List[TrainingWorkload] = []
        self._staging: Optional[Store] = None
        self._dispatch_queues: dict = {}
        self.batches_produced = 0

    def attach(self, workload: TrainingWorkload) -> BatchSource:
        source = BatchSource(
            self.sim, capacity=self.DELIVERY_BUFFER, name=f"{workload.name}-joader"
        )
        self.sources[workload.name] = source
        self._workloads.append(workload)
        return source

    def start(self, duration_s: float) -> None:
        if not self._workloads:
            raise RuntimeError("no workloads attached to Joader")
        self._reference = max(self._workloads, key=lambda w: w.batch_size)
        self._staging = Store(
            self.sim, capacity=max(2, self.loader_workers), name="joader-staging"
        )
        self._dispatch_queues = {
            workload.name: Store(self.sim, capacity=2, name=f"{workload.name}-joader-dispatch")
            for workload in self._workloads
        }
        for worker_index in range(self.loader_workers):
            self.sim.process(self._worker_loop(duration_s), name=f"joader-worker-{worker_index}")
        # The loading is shared: a splitter hands every prepared batch of
        # samples to every registered job's dispatch queue.
        self.sim.process(self._splitter_loop(duration_s), name="joader-splitter")
        # One dispatcher per job: the per-job serial delivery path.
        for workload in self._workloads:
            self.sim.process(
                self._dispatcher_loop(workload, duration_s),
                name=f"joader-dispatch-{workload.name}",
            )

    # -- pipeline processes --------------------------------------------------------------
    def _worker_loop(self, duration_s: float):
        """The shared read + decode service (one batch of samples at a time)."""
        storage = self.machine.storage
        cpu = self.machine.cpu
        workload = self._reference
        pipeline_cost = workload.cpu_seconds_per_batch / self.PIPELINE_SPEEDUP
        while self.sim.now < duration_s:
            yield from storage.read(workload.stored_bytes_per_batch)
            yield from cpu.run(pipeline_cost)
            yield self._staging.put(workload.h2d_bytes_per_batch)

    def _splitter_loop(self, duration_s: float):
        """Fan each prepared sample batch out to every job (shared loading)."""
        while self.sim.now < duration_s:
            nbytes = yield self._staging.get()
            self.batches_produced += 1
            for workload in self._workloads:
                yield self._dispatch_queues[workload.name].put(nbytes)

    def _dispatcher_loop(self, workload: TrainingWorkload, duration_s: float):
        """Per-job serial path: sampling intersections, IPC copy, tensor build, H2D."""
        cpu = self.machine.cpu
        pcie = self.machine.pcie(workload.gpu_index)
        source = self.sources[workload.name]
        queue = self._dispatch_queues[workload.name]
        num_jobs = len(self._workloads)
        per_sample = self.DISPATCH_BASE + self.DISPATCH_PER_JOB * num_jobs
        dispatch_cost = per_sample * workload.batch_size
        while self.sim.now < duration_s:
            nbytes = yield queue.get()
            yield from cpu.run(dispatch_cost)
            yield from pcie.transfer(nbytes)
            ticket = BatchTicket(nbytes=nbytes, refs_remaining=1)
            yield source.put(ticket)
