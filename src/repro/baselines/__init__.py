"""Baselines the paper compares TensorSocket against.

* :class:`~repro.baselines.conventional.ConventionalLoading` — per-process
  PyTorch-style data loaders (the "non-shared" baseline in every figure).
* :class:`~repro.baselines.coordl.CoorDLLoading` — CoorDL [Mohan et al.,
  VLDB'21]: DALI-based coordinated loading that prepares each batch once in
  host memory and distributes it to per-GPU training processes, at the cost of
  per-consumer coordination work and a lock-step schedule (Figure 14).
* :class:`~repro.baselines.joader.JoaderLoading` — Joader [Xu et al.,
  NeurIPS'22]: a shared loading server with dependent sampling, whose
  per-iteration intersection computations and NumPy-over-IPC delivery add a
  per-job serial cost that grows with the number of jobs (Figure 15).
"""

from repro.baselines.conventional import ConventionalLoading
from repro.baselines.coordl import CoorDLLoading
from repro.baselines.joader import JoaderLoading

__all__ = ["ConventionalLoading", "CoorDLLoading", "JoaderLoading"]
