"""CoorDL: coordinated, DALI-based shared data loading (Mohan et al., VLDB'21).

CoorDL prepares each mini-batch once and distributes it to every training
process in the job group.  Relative to TensorSocket the paper highlights
(Section 2 and Figure 14):

* CoorDL targets one training process per GPU and cannot collocate several
  models on a single GPU — the experiment drivers only use it in the
  one-model-per-GPU configuration, like the paper.
* Batches are shared through *host* memory: every training process still
  performs its own host-to-device copy over its own PCIe link, and
  participates in the coordination (reference counting, staging into its
  DALI pipeline), which costs CPU per consumer per batch.  This is why
  CoorDL's CPU utilization grows with the collocation degree in Figure 14a
  while TensorSocket's stays flat.
* The job group advances in lock-step: a batch is recycled only after every
  process consumed it, and the distribution buffer is shallow, so dissimilar
  models drag each other (the paper's second criticism).  The lock-step is
  modeled by the shared ticket refcount plus a single-batch buffer.

The per-consumer coordination cost below is calibrated so that a 4-way
collocation costs ≈1.5x the single-job CPU, matching Figure 14a.

Like the real CoorDL cache (a MinIO endpoint jobs connect to), the simulated
pipeline can be served at a ``sim://`` URI and attached by address — pass
``address=`` or call :meth:`~repro.training.loading.LoadingPipeline.serve`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hardware.machine import Machine
from repro.simulation.engine import Simulator
from repro.simulation.resources import Store
from repro.training.loading import BatchSource, BatchTicket, LoadingPipeline
from repro.training.workload import TrainingWorkload


class CoorDLLoading(LoadingPipeline):
    """Simulated CoorDL pipeline (coordinated DALI loading over host memory)."""

    #: Fraction of the base preprocessing cost spent per consumer per batch on
    #: coordination: staging the shared batch into the consumer's DALI
    #: pipeline, reference counting, and the extra memcpy in host memory.
    COORDINATION_FRACTION = 0.17
    #: DALI's optimized C++ pipeline is faster than a torchvision-style Python
    #: pipeline for the same work.
    DALI_PIPELINE_SPEEDUP = 1.35
    #: CoorDL distributes a batch and waits for all consumers before moving on;
    #: its effective distribution buffer is a single batch.
    DISTRIBUTION_BUFFER = 1

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        *,
        loader_workers: int = 4,
        address: Optional[str] = None,
    ) -> None:
        super().__init__(sim, machine, address=address)
        self.loader_workers = max(1, int(loader_workers))
        self._workloads: List[TrainingWorkload] = []
        self._staging: Optional[Store] = None
        self.batches_produced = 0

    def attach(self, workload: TrainingWorkload) -> BatchSource:
        if any(w.gpu_index == workload.gpu_index for w in self._workloads):
            raise ValueError(
                "CoorDL trains one model per GPU; cannot collocate two workloads on "
                f"GPU {workload.gpu_index} (the paper's first limitation of CoorDL)"
            )
        source = BatchSource(
            self.sim, capacity=self.DISTRIBUTION_BUFFER, name=f"{workload.name}-coordl"
        )
        self.sources[workload.name] = source
        self._workloads.append(workload)
        return source

    def start(self, duration_s: float) -> None:
        if not self._workloads:
            raise RuntimeError("no workloads attached to CoorDL")
        self._reference = max(self._workloads, key=lambda w: w.batch_size)
        self._staging = Store(
            self.sim, capacity=max(2, self.loader_workers), name="coordl-staging"
        )
        self._per_consumer_queues = {
            workload.name: Store(self.sim, capacity=1, name=f"{workload.name}-coordl-stage")
            for workload in self._workloads
        }
        for worker_index in range(self.loader_workers):
            self.sim.process(self._worker_loop(duration_s), name=f"coordl-worker-{worker_index}")
        self.sim.process(self._splitter_loop(duration_s), name="coordl-splitter")
        # Each training process participates in the coordination for its own
        # copy of the batch (reference counting + staging into its DALI
        # pipeline + its own host-to-device copy); these run concurrently.
        for workload in self._workloads:
            self.sim.process(
                self._consumer_side_loop(workload, duration_s),
                name=f"coordl-consumer-{workload.name}",
            )

    # -- pipeline processes --------------------------------------------------------------
    def _worker_loop(self, duration_s: float):
        """Shared DALI pipeline: read and preprocess each batch once."""
        storage = self.machine.storage
        cpu = self.machine.cpu
        workload = self._reference
        pipeline_cost = workload.cpu_seconds_per_batch / self.DALI_PIPELINE_SPEEDUP
        while self.sim.now < duration_s:
            yield from storage.read(workload.stored_bytes_per_batch)
            yield from cpu.run(pipeline_cost)
            yield self._staging.put(workload.h2d_bytes_per_batch)

    def _splitter_loop(self, duration_s: float):
        """Announce every prepared batch to every training process."""
        while self.sim.now < duration_s:
            nbytes = yield self._staging.get()
            ticket = BatchTicket(nbytes=nbytes, refs_remaining=len(self._workloads))
            self.batches_produced += 1
            for consumer in self._workloads:
                yield self._per_consumer_queues[consumer.name].put(ticket)

    def _consumer_side_loop(self, workload: TrainingWorkload, duration_s: float):
        """Per-process coordination work plus its own host-to-device copy."""
        cpu = self.machine.cpu
        reference = self._reference
        coordination_cost = (
            reference.cpu_seconds_per_batch
            / self.DALI_PIPELINE_SPEEDUP
            * self.COORDINATION_FRACTION
        )
        queue = self._per_consumer_queues[workload.name]
        source = self.sources[workload.name]
        pcie = self.machine.pcie(workload.gpu_index)
        while self.sim.now < duration_s:
            ticket = yield queue.get()
            yield from cpu.run(coordination_cost)
            yield from pcie.transfer(ticket.nbytes)
            yield source.put(ticket)
