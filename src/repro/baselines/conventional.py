"""The non-shared baseline: per-process data loaders.

This is the same pipeline class the training package defines (it is the
default way PyTorch training scripts load data); it is re-exported here so the
baseline set in :mod:`repro.baselines` is complete and experiment drivers can
import every comparison point from one place.
"""

from repro.training.loading import ConventionalLoading

__all__ = ["ConventionalLoading"]
