"""Reproduction of *TensorSocket: Shared Data Loading for Deep Learning Training*.

The front door is two calls that make the paper's "one-line swap" literal —
serve a data loader at a URI address, then attach any number of trainers to it
by that address alone::

    import repro

    session = repro.serve(loader, address="inproc://cifar", epochs=2)

    for batch in repro.attach("inproc://cifar"):   # from any thread
        ...  # training step

Addresses resolve through a pluggable transport registry
(:mod:`repro.messaging.endpoint`): each URI scheme maps to a transport that
knows how to bind (serve) and connect (attach) an address.  ``inproc://``
(threads of one process) and ``tcp://`` (separate OS processes: a broker
thread for the message envelopes, posix shared memory for zero-copy tensor
hand-off) are built in; new transports plug into the same registry without
touching producer or consumer code.  Explicit ``hub=`` / ``pool=`` object
wiring remains supported everywhere for tests and embedded uses.

The package is organised as the paper's system plus every substrate it relies
on:

* :mod:`repro.tensor` — numpy-backed tensors, shared-memory pools and the
  ``TensorPayload`` zero-copy handle mechanism.
* :mod:`repro.messaging` — the ZeroMQ-style PUB/SUB, PUSH/PULL and heartbeat
  channels, plus the URI endpoint layer and transport registry.
* :mod:`repro.data` — datasets, samplers, transforms and the multi-worker
  ``DataLoader`` the producer wraps.
* :mod:`repro.core` — TensorSocket itself: ``TensorProducer``,
  ``TensorConsumer``, the addressable ``SharedLoaderSession`` and the policies
  (batch buffer, flexible batching, rubberbanding, acknowledgement ledger).
* :mod:`repro.cache` — the budgeted epoch cache: staged batches retained in
  shared memory so repeat epochs republish instead of reloading
  (``serve(loader, cache="all")``; CoorDL-style LRU/MRU partial caching).
* :mod:`repro.simulation` / :mod:`repro.hardware` — the discrete-event
  hardware models (GPUs, NVLink/PCIe, vCPUs, storage, cloud instances) used
  to reproduce the paper's multi-GPU and cloud experiments.
* :mod:`repro.training` — calibrated model cost profiles and the simulated
  training loop / collocation runner; simulated pipelines are served at
  ``sim://`` addresses through the same registry.
* :mod:`repro.baselines` — conventional per-process loading, CoorDL and
  Joader re-implementations.
* :mod:`repro.experiments` — one driver per figure/table of the evaluation.
"""

# The broker *package* must be imported before the api's broker() function
# takes over the `repro.broker` attribute: sys.modules keeps
# `python -m repro.broker` / `from repro.broker import DatasetBroker` working
# while `repro.broker(...)` calls the ergonomic constructor.
import repro.broker as _broker_package  # noqa: F401
from repro.api import DEFAULT_ADDRESS, attach, broker, serve
from repro.broker.service import DatasetBroker
from repro.cache import BatchCache, CachePolicy
from repro.core import (
    ConsumerConfig,
    EpochRunner,
    GroupConsumer,
    ProducerConfig,
    ShardedLoaderSession,
    SharedLoaderSession,
    TensorConsumer,
    TensorProducer,
)
from repro.data import DataLoader, ShardSampler
from repro.messaging import InProcHub, available_schemes, register_transport
from repro.tensor import SharedMemoryPool, Tensor

__version__ = "1.2.0"

__all__ = [
    "serve",
    "attach",
    "broker",
    "DatasetBroker",
    "DEFAULT_ADDRESS",
    "TensorProducer",
    "TensorConsumer",
    "ProducerConfig",
    "ConsumerConfig",
    "SharedLoaderSession",
    "ShardedLoaderSession",
    "GroupConsumer",
    "EpochRunner",
    "DataLoader",
    "ShardSampler",
    "BatchCache",
    "CachePolicy",
    "InProcHub",
    "SharedMemoryPool",
    "Tensor",
    "register_transport",
    "available_schemes",
    "__version__",
]
