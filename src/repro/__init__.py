"""Reproduction of *TensorSocket: Shared Data Loading for Deep Learning Training*.

The package is organised as the paper's system plus every substrate it relies
on (see ``DESIGN.md`` at the repository root for the full inventory):

* :mod:`repro.tensor` — numpy-backed tensors, shared-memory pools and the
  ``TensorPayload`` zero-copy handle mechanism.
* :mod:`repro.messaging` — the ZeroMQ-style PUB/SUB, PUSH/PULL and heartbeat
  channels the producer and consumers communicate over.
* :mod:`repro.data` — datasets, samplers, transforms and the multi-worker
  ``DataLoader`` the producer wraps.
* :mod:`repro.core` — TensorSocket itself: ``TensorProducer``,
  ``TensorConsumer`` and the policies (batch buffer, flexible batching,
  rubberbanding, acknowledgement ledger).
* :mod:`repro.simulation` / :mod:`repro.hardware` — the discrete-event
  hardware models (GPUs, NVLink/PCIe, vCPUs, storage, cloud instances) used
  to reproduce the paper's multi-GPU and cloud experiments.
* :mod:`repro.training` — calibrated model cost profiles and the simulated
  training loop / collocation runner.
* :mod:`repro.baselines` — conventional per-process loading, CoorDL and
  Joader re-implementations.
* :mod:`repro.experiments` — one driver per figure/table of the evaluation.
"""

from repro.core import (
    ConsumerConfig,
    ProducerConfig,
    SharedLoaderSession,
    TensorConsumer,
    TensorProducer,
)
from repro.data import DataLoader
from repro.messaging import InProcHub
from repro.tensor import SharedMemoryPool, Tensor

__version__ = "1.0.0"

__all__ = [
    "TensorProducer",
    "TensorConsumer",
    "ProducerConfig",
    "ConsumerConfig",
    "SharedLoaderSession",
    "DataLoader",
    "InProcHub",
    "SharedMemoryPool",
    "Tensor",
    "__version__",
]
