"""Tensor substrate for the TensorSocket reproduction.

The paper relies on PyTorch tensors: contiguous typed buffers that can live on
the CPU or a GPU, can be sliced without copying, and whose *handles* (data
pointer + metadata) can be shipped between processes so a consumer rebuilds the
tensor without duplicating its bytes.  PyTorch is not available in this
environment, so this subpackage provides the minimal equivalent on top of
numpy:

* :class:`~repro.tensor.device.Device` — a placement label ("cpu", "cuda:0",
  ...) plus helpers for parsing and comparing devices.
* :class:`~repro.tensor.dtype.DType` — a small fixed catalogue of element
  types mapping onto numpy dtypes.
* :class:`~repro.tensor.tensor.Tensor` — a contiguous, device-tagged array
  with the subset of tensor operations the data-loading path needs (slicing
  views, concatenation, ``to(device)``, ``pin_memory`` ...).
* :class:`~repro.tensor.shared_memory.SharedMemoryPool` — reference-counted OS
  shared-memory segments backing tensors so that separate processes can map the
  same bytes.
* :class:`~repro.tensor.payload.TensorPayload` — the pack/unpack handle object
  (the ~59-line ``TensorPayload`` concept from the paper, Section 5) used by
  the producer to publish batches and by consumers to rebuild them zero-copy.
"""

from repro.tensor.device import Device, cpu, cuda
from repro.tensor.dtype import DType, float32, float16, int64, int32, uint8
from repro.tensor.errors import (
    DeviceMismatchError,
    PayloadError,
    QuotaExceededError,
    SharedMemoryError,
    TensorError,
)
from repro.tensor.payload import BatchPayload, TensorPayload
from repro.tensor.shared_memory import SharedMemoryPool, SharedSegment, TenantPool
from repro.tensor.tensor import Tensor, cat, empty, from_numpy, full, stack, zeros

__all__ = [
    "Device",
    "cpu",
    "cuda",
    "DType",
    "float32",
    "float16",
    "int64",
    "int32",
    "uint8",
    "Tensor",
    "from_numpy",
    "empty",
    "zeros",
    "full",
    "stack",
    "cat",
    "SharedMemoryPool",
    "SharedSegment",
    "TenantPool",
    "TensorPayload",
    "BatchPayload",
    "TensorError",
    "DeviceMismatchError",
    "SharedMemoryError",
    "QuotaExceededError",
    "PayloadError",
]
