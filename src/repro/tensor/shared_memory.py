"""Reference-counted shared-memory segments for zero-copy tensor hand-off.

The producer in TensorSocket stages each prepared batch once and then passes
*handles* to consumers.  A batch stays alive until every consumer has
acknowledged it, after which the producer releases it (step 2/6 in Figure 4 of
the paper).  This module provides the storage side of that protocol:

* :class:`SharedSegment` — a named block of bytes that multiple processes (or
  threads) can map.  Two backends are supported:

  - ``"posix"`` uses :mod:`multiprocessing.shared_memory` and therefore works
    across real OS processes (used by the real-mode examples),
  - ``"inproc"`` uses a plain ``bytearray`` held in a module-level registry,
    which is enough for threaded runs, tests and the discrete-event simulator
    and avoids leaking ``/dev/shm`` entries in constrained environments.

* :class:`SharedMemoryPool` — allocates tensors inside segments, tracks a
  reference count per segment (producer hold + one hold per consumer), and
  frees the segment once all holds are released.  The pool also exposes
  accounting (bytes in flight, high-water mark) that Table 3 / Table 4 style
  experiments read as "extra VRAM held by the producer".
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.tensor.dtype import DTypeLike, as_dtype
from repro.tensor.device import DeviceLike
from repro.tensor.errors import SharedMemoryError
from repro.tensor.tensor import Tensor

try:  # pragma: no cover - availability depends on the platform
    from multiprocessing import shared_memory as _posix_shm

    _POSIX_AVAILABLE = True
except ImportError:  # pragma: no cover
    _posix_shm = None
    _POSIX_AVAILABLE = False


# Registry of in-process segments, keyed by name.  Thread-safe via _REGISTRY_LOCK.
_INPROC_REGISTRY: Dict[str, bytearray] = {}
_REGISTRY_LOCK = threading.Lock()


def _new_segment_name(prefix: str) -> str:
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


class SharedSegment:
    """A named, fixed-size block of shareable bytes.

    A segment is created once (``create=True``) by the producer and can be
    attached to by name from any other party (``create=False``).  The segment
    exposes a writable memoryview; tensors are laid out inside it by the
    :class:`SharedMemoryPool`.
    """

    def __init__(
        self,
        name: str,
        size: int,
        *,
        create: bool,
        backend: str = "inproc",
    ) -> None:
        if size <= 0:
            raise SharedMemoryError(f"segment size must be positive, got {size}")
        if backend not in ("inproc", "posix"):
            raise SharedMemoryError(f"unknown shared-memory backend {backend!r}")
        if backend == "posix" and not _POSIX_AVAILABLE:
            raise SharedMemoryError("posix shared memory is not available on this platform")
        self.name = name
        self.size = int(size)
        self.backend = backend
        self._closed = False
        self._shm = None

        if backend == "posix":
            if create:
                self._shm = _posix_shm.SharedMemory(name=name, create=True, size=size)
            else:
                self._shm = _posix_shm.SharedMemory(name=name, create=False)
            self._buffer = self._shm.buf
        else:
            with _REGISTRY_LOCK:
                if create:
                    if name in _INPROC_REGISTRY:
                        raise SharedMemoryError(f"segment {name!r} already exists")
                    _INPROC_REGISTRY[name] = bytearray(size)
                else:
                    if name not in _INPROC_REGISTRY:
                        raise SharedMemoryError(f"segment {name!r} does not exist")
                self._buffer = memoryview(_INPROC_REGISTRY[name])

    # -- access ---------------------------------------------------------------
    @property
    def buffer(self) -> memoryview:
        if self._closed:
            raise SharedMemoryError(f"segment {self.name!r} is closed")
        return memoryview(self._buffer)

    def ndarray(self, shape: Tuple[int, ...], dtype: DTypeLike, offset: int = 0) -> np.ndarray:
        """A numpy view of part of the segment (no copy)."""
        dt = as_dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dt.itemsize
        if offset < 0 or offset + nbytes > self.size:
            raise SharedMemoryError(
                f"view of {nbytes} bytes at offset {offset} exceeds segment size {self.size}"
            )
        flat = np.frombuffer(self.buffer, dtype=dt.numpy_dtype, count=count, offset=offset)
        return flat.reshape(shape)

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Detach this handle from the segment (does not free the memory)."""
        if self._closed:
            return
        self._closed = True
        if self.backend == "posix" and self._shm is not None:  # pragma: no cover
            self._shm.close()

    def unlink(self) -> None:
        """Free the underlying memory.  Only the creator should call this."""
        if self.backend == "posix":  # pragma: no cover
            if self._shm is not None:
                try:
                    self._shm.close()
                except Exception:
                    pass
                try:
                    self._shm.unlink()
                except FileNotFoundError:
                    pass
        else:
            with _REGISTRY_LOCK:
                _INPROC_REGISTRY.pop(self.name, None)
        self._closed = True

    def __repr__(self) -> str:
        return f"SharedSegment(name={self.name!r}, size={self.size}, backend={self.backend!r})"


@dataclass
class _SegmentRecord:
    segment: SharedSegment
    refcount: int
    nbytes: int
    metadata: dict = field(default_factory=dict)


class SharedMemoryPool:
    """Allocates tensors in shared segments and reference-counts their lifetime.

    The pool implements the producer-side bookkeeping from Figure 4: ``store``
    a batch (step 2), hand a reference per consumer, and ``release`` when every
    consumer has acknowledged (step 6).  ``bytes_in_flight`` and
    ``peak_bytes`` give the memory-overhead numbers reported in Tables 3 and 4.
    """

    def __init__(self, backend: str = "inproc", name_prefix: str = "tsock") -> None:
        self._backend = backend
        self._prefix = name_prefix
        self._records: Dict[str, _SegmentRecord] = {}
        self._lock = threading.Lock()
        self._bytes_in_flight = 0
        self._peak_bytes = 0
        self._total_allocated = 0
        self._total_released = 0

    # -- allocation -------------------------------------------------------------
    def allocate_tensor(
        self,
        shape: Tuple[int, ...],
        dtype: DTypeLike = "float32",
        device: DeviceLike = "cpu",
        *,
        initial_refcount: int = 1,
    ) -> Tensor:
        """Allocate an uninitialized tensor inside a fresh shared segment."""
        dt = as_dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        nbytes = max(count * dt.itemsize, 1)
        name = _new_segment_name(self._prefix)
        segment = SharedSegment(name, nbytes, create=True, backend=self._backend)
        array = segment.ndarray(tuple(shape), dt, offset=0)
        with self._lock:
            self._records[name] = _SegmentRecord(segment, int(initial_refcount), nbytes)
            self._bytes_in_flight += nbytes
            self._total_allocated += nbytes
            self._peak_bytes = max(self._peak_bytes, self._bytes_in_flight)
        return Tensor(array, device, segment=segment, segment_offset=0)

    def share_tensor(self, tensor: Tensor, *, initial_refcount: int = 1) -> Tensor:
        """Copy an ordinary tensor into the pool so it can be handed off zero-copy."""
        shared = self.allocate_tensor(
            tensor.shape, tensor.dtype, tensor.device, initial_refcount=initial_refcount
        )
        shared.numpy()[...] = tensor.numpy()
        return shared

    # -- refcounting -------------------------------------------------------------
    def _record_for(self, name: str) -> _SegmentRecord:
        try:
            return self._records[name]
        except KeyError as exc:
            raise SharedMemoryError(f"unknown segment {name!r}") from exc

    def retain(self, name: str, count: int = 1) -> int:
        """Add ``count`` holds on a segment; returns the new refcount."""
        if count <= 0:
            raise ValueError("retain count must be positive")
        with self._lock:
            record = self._record_for(name)
            record.refcount += count
            return record.refcount

    def release(self, name: str, count: int = 1) -> int:
        """Drop ``count`` holds; frees the segment when the count reaches zero."""
        if count <= 0:
            raise ValueError("release count must be positive")
        with self._lock:
            record = self._record_for(name)
            if count > record.refcount:
                raise SharedMemoryError(
                    f"releasing {count} holds on {name!r} but only {record.refcount} held"
                )
            record.refcount -= count
            remaining = record.refcount
            if remaining == 0:
                self._records.pop(name)
                self._bytes_in_flight -= record.nbytes
                self._total_released += record.nbytes
                record.segment.unlink()
        return remaining

    def refcount(self, name: str) -> int:
        with self._lock:
            return self._record_for(name).refcount

    def contains(self, name: str) -> bool:
        with self._lock:
            return name in self._records

    def attach(self, name: str, shape: Tuple[int, ...], dtype: DTypeLike,
               device: DeviceLike = "cpu", offset: int = 0) -> Tensor:
        """Rebuild a tensor view over an existing segment (consumer side)."""
        with self._lock:
            record = self._record_for(name)
        array = record.segment.ndarray(tuple(shape), as_dtype(dtype), offset=offset)
        return Tensor(array, device, segment=record.segment, segment_offset=offset)

    # -- accounting ----------------------------------------------------------------
    @property
    def bytes_in_flight(self) -> int:
        return self._bytes_in_flight

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    @property
    def total_allocated_bytes(self) -> int:
        return self._total_allocated

    @property
    def live_segments(self) -> int:
        with self._lock:
            return len(self._records)

    def shutdown(self) -> None:
        """Free every live segment regardless of refcount (end-of-run cleanup)."""
        with self._lock:
            for record in self._records.values():
                record.segment.unlink()
            self._records.clear()
            self._bytes_in_flight = 0

    def __repr__(self) -> str:
        return (
            f"SharedMemoryPool(backend={self._backend!r}, live={self.live_segments}, "
            f"in_flight={self._bytes_in_flight}B, peak={self._peak_bytes}B)"
        )
