"""Reference-counted shared-memory segments for zero-copy tensor hand-off.

The producer in TensorSocket stages each prepared batch once and then passes
*handles* to consumers.  A batch stays alive until every consumer has
acknowledged it, after which the producer releases it (step 2/6 in Figure 4 of
the paper).  This module provides the storage side of that protocol:

* :class:`SharedSegment` — a named block of bytes that multiple processes (or
  threads) can map.  Two backends are supported:

  - ``"posix"`` uses :mod:`multiprocessing.shared_memory` and therefore works
    across real OS processes (used by the real-mode examples),
  - ``"inproc"`` uses a plain ``bytearray`` held in a module-level registry,
    which is enough for threaded runs, tests and the discrete-event simulator
    and avoids leaking ``/dev/shm`` entries in constrained environments.

* :class:`SharedMemoryPool` — allocates tensors inside segments, tracks a
  reference count per segment (producer hold + one hold per consumer), and
  frees the segment once all holds are released.  The pool also exposes
  accounting (bytes in flight, high-water mark) that Table 3 / Table 4 style
  experiments read as "extra VRAM held by the producer".

Slab allocation
---------------

Freed segments are not unlinked eagerly: they return to per-size-class free
lists (power-of-two classes with quarter subdivisions, exact class preferred)
and are recycled under the *same name* on the next allocation of a matching
size.  After a warm-up epoch the steady-state hot path therefore performs
zero ``shm_open``/``mmap`` on either side: the producer pops a warm segment
off the free list and the consumer's attach-by-name cache hits on the
recycled name.  :meth:`SharedMemoryPool.share_batch` additionally packs every
tensor of one batch into a *single* segment at 64-byte-aligned offsets, so
the per-batch handle count (and cross-process attach count) drops to one.

Because names now repeat, every segment starts with a 64-byte slab header
holding a **generation** counter that the pool bumps on every recycle.
Payload handles carry ``(name, generation)`` and :meth:`attach` rejects a
stale pair with :class:`~repro.tensor.errors.StaleHandleError` — a rubberband
replay or late duplicate ack can never silently alias a recycled segment.
Retained-free memory is bounded by a hard cap (``free_list_max_bytes``) and
an idle trim (``free_idle_seconds``); free-listed segments belong to no
tenant (quotas charge *live* logical bytes only) and surface through the
``repro.pool.free_bytes`` gauge, which drains to zero on :meth:`shutdown`.
"""

from __future__ import annotations

import struct
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.obs.metrics import counter, gauge
from repro.tensor.dtype import DTypeLike, as_dtype
from repro.tensor.device import DeviceLike
from repro.tensor.errors import QuotaExceededError, SharedMemoryError, StaleHandleError
from repro.tensor.tensor import Tensor

try:  # pragma: no cover - availability depends on the platform
    from multiprocessing import shared_memory as _posix_shm

    _POSIX_AVAILABLE = True
except ImportError:  # pragma: no cover
    _posix_shm = None
    _POSIX_AVAILABLE = False


# Registry of in-process segments, keyed by name.
_REGISTRY_LOCK = threading.Lock()
_INPROC_REGISTRY: Dict[str, bytearray] = {}  #: guarded by _REGISTRY_LOCK


_TRACKER_PATCH_LOCK = threading.Lock()

# ---------------------------------------------------------------------------
# Slab layout constants
# ---------------------------------------------------------------------------

#: Magic marking a segment as slab-allocated ("SLAB").
_SLAB_MAGIC = 0x534C4142
_SLAB_VERSION = 1
#: magic u32, version u16, flags u16, generation u64 — written at offset 0.
_SLAB_HEADER = struct.Struct("<IHHQ")
#: The header reserves one cache line; tensor data starts here, and every
#: tensor inside a batch segment is aligned to this quantum.
_SLAB_HEADER_SIZE = 64
_SLAB_ALIGN = 64
#: Smallest data capacity a segment is created with; tiny label tensors and
#: the batch they belong to land in the same few classes instead of one
#: class per odd byte count.
_SLAB_MIN_CLASS = 4096

_REUSE_HITS = counter("repro.pool.segment_reuse_hits")
_REUSE_MISSES = counter("repro.pool.segment_reuse_misses")
#: Real mapping operations: segment creations plus cross-process attach opens.
_MMAP_TOTAL = counter("repro.pool.mmap_total")


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def _size_class(nbytes: int) -> int:
    """Round a data size up to its slab class (jemalloc-style).

    Classes are powers of two subdivided into quarters: between ``2^k`` and
    ``2^(k+1)`` the steps are ``2^k + i * 2^(k-2)``, bounding internal waste
    at 25% while keeping the number of distinct classes (and therefore free
    lists) small.
    """
    if nbytes <= _SLAB_MIN_CLASS:
        return _SLAB_MIN_CLASS
    power = 1 << (int(nbytes) - 1).bit_length()
    half = power >> 1
    if nbytes == power:
        return power
    quarter = half >> 2
    steps = -(-(nbytes - half) // quarter)
    return half + steps * quarter


def _open_posix_untracked(name: str):
    """Attach to an existing posix segment without resource-tracker ownership.

    Only the creating pool may own a segment's lifetime: it unlinks once every
    consumer acknowledged.  Letting the attach register with the resource
    tracker (which Python < 3.13 always does, and which multiprocessing
    children share with their parent) either double-books the name or tears
    live segments down at exit (bpo-39959).  Python 3.13+ exposes
    ``track=False`` for exactly this; older versions need the registration
    suppressed for the duration of the attach.
    """
    try:
        return _posix_shm.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _posix_shm.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


def _new_segment_name(prefix: str) -> str:
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


class SharedSegment:
    """A named, fixed-size block of shareable bytes.

    A segment is created once (``create=True``) by the producer and can be
    attached to by name from any other party (``create=False``).  The segment
    exposes a writable memoryview; tensors are laid out inside it by the
    :class:`SharedMemoryPool`.

    ``generation`` is the slab allocator's recycle counter for pool-owned
    segments (0 for raw segments created outside a pool).  The pool keeps it
    in sync with the in-segment slab header, which is the cross-process
    source of truth.
    """

    def __init__(
        self,
        name: str,
        size: Optional[int] = None,
        *,
        create: bool,
        backend: str = "inproc",
    ) -> None:
        if (create and size is None) or (size is not None and size <= 0):
            raise SharedMemoryError(f"segment size must be positive, got {size}")
        if backend not in ("inproc", "posix"):
            raise SharedMemoryError(f"unknown shared-memory backend {backend!r}")
        if backend == "posix" and not _POSIX_AVAILABLE:
            raise SharedMemoryError("posix shared memory is not available on this platform")
        self.name = name
        self.backend = backend
        self.generation = 0
        self._closed = False
        self._shm = None

        if backend == "posix":
            if create:
                # Serialised against _open_posix_untracked: a create must not
                # run while an attach has the tracker's register patched out,
                # or the new segment would never be tracked.
                with _TRACKER_PATCH_LOCK:
                    self._shm = _posix_shm.SharedMemory(name=name, create=True, size=size)
            else:
                try:
                    self._shm = _open_posix_untracked(name)
                except (FileNotFoundError, OSError) as exc:
                    raise SharedMemoryError(f"segment {name!r} does not exist") from exc
            self._buffer = self._shm.buf
            # A posix segment knows its own size; attaches may omit it (the
            # kernel may also round the creator's size up to a page boundary).
            self.size = int(size) if size is not None else self._shm.size
        else:
            with _REGISTRY_LOCK:
                if create:
                    if name in _INPROC_REGISTRY:
                        raise SharedMemoryError(f"segment {name!r} already exists")
                    _INPROC_REGISTRY[name] = bytearray(size)
                else:
                    if name not in _INPROC_REGISTRY:
                        raise SharedMemoryError(f"segment {name!r} does not exist")
                self._buffer = memoryview(_INPROC_REGISTRY[name])
                self.size = int(size) if size is not None else len(self._buffer)

    # -- access ---------------------------------------------------------------
    @property
    def buffer(self) -> memoryview:
        if self._closed:
            raise SharedMemoryError(f"segment {self.name!r} is closed")
        return memoryview(self._buffer)

    def ndarray(self, shape: Tuple[int, ...], dtype: DTypeLike, offset: int = 0) -> np.ndarray:
        """A numpy view of part of the segment (no copy)."""
        dt = as_dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dt.itemsize
        if offset < 0 or offset + nbytes > self.size:
            raise SharedMemoryError(
                f"view of {nbytes} bytes at offset {offset} exceeds segment size {self.size}"
            )
        flat = np.frombuffer(self.buffer, dtype=dt.numpy_dtype, count=count, offset=offset)
        return flat.reshape(shape)

    # -- lifecycle --------------------------------------------------------------
    def close(self) -> None:
        """Detach this handle from the segment (does not free the memory).

        May raise :class:`BufferError` on the posix backend while numpy views
        of the segment are still alive; the handle stays open in that case.
        """
        if self._closed:
            return
        if self.backend == "posix" and self._shm is not None:
            self._shm.close()
        self._closed = True

    def unlink(self) -> None:
        """Free the underlying memory.  Only the creator should call this."""
        if self.backend == "posix":
            if self._shm is not None:
                try:
                    self._shm.close()
                except Exception:
                    pass
                try:
                    self._shm.unlink()
                except FileNotFoundError:
                    pass
        else:
            with _REGISTRY_LOCK:
                _INPROC_REGISTRY.pop(self.name, None)
        self._closed = True

    def __repr__(self) -> str:
        return f"SharedSegment(name={self.name!r}, size={self.size}, backend={self.backend!r})"


def _write_slab_header(segment: SharedSegment) -> None:
    """Stamp the segment's current generation into its in-band slab header."""
    _SLAB_HEADER.pack_into(
        segment.buffer, 0, _SLAB_MAGIC, _SLAB_VERSION, 0, segment.generation
    )


def _read_slab_generation(segment: SharedSegment) -> Optional[int]:
    """The generation recorded in a segment's slab header, or ``None``.

    Reading the mapped bytes (rather than pool-local state) is what lets an
    attach-by-name consumer in another OS process validate a handle against
    the producer's latest recycle.
    """
    try:
        magic, _version, _flags, generation = _SLAB_HEADER.unpack_from(segment.buffer, 0)
    except (struct.error, SharedMemoryError):
        return None
    if magic != _SLAB_MAGIC:
        return None
    return generation


@dataclass
class _SegmentRecord:
    segment: SharedSegment
    refcount: int
    #: Logical data bytes charged to the accounting buckets and tenant
    #: quotas — the tensor bytes the caller asked for, not the (larger)
    #: size-class capacity the slab actually reserved.
    nbytes: int
    #: Allocator generation of this incarnation of the segment's name.
    generation: int = 0
    #: Holds taken by an epoch cache (see :mod:`repro.cache`).  A segment with
    #: at least one cache hold is accounted under ``cached_bytes`` instead of
    #: ``bytes_in_flight``; the two buckets always sum to the live total.
    cache_holds: int = 0
    metadata: dict = field(default_factory=dict)


@dataclass
class _FreeSegment:
    """One recycled segment parked on a size-class free list."""

    segment: SharedSegment
    #: Data capacity (segment size minus the slab header) — the free-list key.
    capacity: int
    freed_at: float


class SharedMemoryPool:
    """Allocates tensors in shared segments and reference-counts their lifetime.

    The pool implements the producer-side bookkeeping from Figure 4: ``store``
    a batch (step 2), hand a reference per consumer, and ``release`` when every
    consumer has acknowledged (step 6).  ``bytes_in_flight`` and
    ``peak_bytes`` give the memory-overhead numbers reported in Tables 3 and 4.

    Allocation is slab-based: freed segments return to per-size-class free
    lists and are recycled (same name, bumped generation) by later
    allocations, so the steady-state epoch loop creates no new segments.  See
    the module docstring for the layout, the ABA protection and the trim
    policy; ``free_list_max_bytes=0`` disables retention entirely (every free
    unlinks eagerly, the pre-slab behaviour).

    Thread-safety: every mutation and every accounting read takes the pool
    lock, so a background stage worker may ``share_batch``/``allocate_tensor``
    concurrently with the publish thread calling ``retain``/``release`` on
    *other* segments (a live name maps to exactly one record, so the two never
    contend on one record).  Check-then-act sequences over the same segment
    still race between lock acquisitions; use :meth:`release_if_present`
    instead of ``contains()`` + ``release()``, and only ever release a hold
    the caller owns — the ack ledger's per-hold discipline is what guarantees
    a name seen by ``release_if_present`` has not been recycled underneath it
    (a recycle requires the refcount to reach zero first).  The lock is never
    held while tensor bytes are copied.
    """

    def __init__(
        self,
        backend: str = "inproc",
        name_prefix: str = "tsock",
        *,
        attach_by_name: bool = False,
        attach_cache_limit: int = 32,
        free_list_max_bytes: Optional[int] = 256 * 1024 * 1024,
        free_idle_seconds: Optional[float] = 30.0,
    ) -> None:
        self._backend = backend
        self._prefix = name_prefix
        self._lock = threading.Lock()
        self._records: Dict[str, _SegmentRecord] = {}  #: guarded by _lock
        self._bytes_in_flight = 0  #: guarded by _lock
        self._cached_bytes = 0  #: guarded by _lock
        self._peak_bytes = 0  #: guarded by _lock
        self._total_allocated = 0  #: guarded by _lock
        self._total_released = 0  #: guarded by _lock
        # Slab free lists: size-class capacity -> recycled segments, newest
        # last (reuse pops LIFO — the most recently freed segment is the
        # warmest).  ``_free_bytes`` tracks the real retained memory (capacity
        # plus header) and is bounded by the hard cap; the idle trim unlinks
        # entries that sat unused past ``free_idle_seconds``.
        self._free_lists: Dict[int, List[_FreeSegment]] = {}  #: guarded by _lock
        self._free_bytes = 0  #: guarded by _lock
        self._free_list_max_bytes = free_list_max_bytes
        self._free_idle_seconds = free_idle_seconds
        self._reuse_hits = 0  #: guarded by _lock
        self._reuse_misses = 0  #: guarded by _lock
        self._segments_created = 0  #: guarded by _lock
        self._attach_cache_hits = 0  #: guarded by _lock
        self._attach_opens = 0  #: guarded by _lock
        # Consumer-side cross-process mode: segments this pool never allocated
        # can be opened by name (posix shared memory reached from another OS
        # process).  Opened handles are cached and trimmed once the training
        # loop has moved past them; the creator still owns unlinking.
        self._attach_by_name = attach_by_name
        self._attach_cache_limit = max(1, int(attach_cache_limit))
        self._attached: "OrderedDict[str, SharedSegment]" = OrderedDict()  #: guarded by _lock
        # Multi-tenant accounting (the broker's per-dataset quotas): segments
        # allocated through a tenant view are tagged with the tenant name and
        # counted against its quota until freed.  A tenant without a quota
        # entry is unlimited; its usage is still tracked.  Free-listed
        # segments belong to no tenant: quotas bound *live* logical bytes.
        self._tenant_quotas: Dict[str, Optional[int]] = {}  #: guarded by _lock
        self._tenant_bytes: Dict[str, int] = {}  #: guarded by _lock
        # Accounting surfaces as process-wide gauges, summed over live pools.
        # The gauge holds this pool through a weakref, so metrics never extend
        # a pool's lifetime (TenantPool views delegate here — no double count).
        gauge("repro.pool.bytes_in_flight").attach(self, lambda p: p.bytes_in_flight)
        gauge("repro.pool.cached_bytes").attach(self, lambda p: p.cached_bytes)
        gauge("repro.pool.peak_bytes").attach(self, lambda p: p.peak_bytes)
        gauge("repro.pool.live_segments").attach(self, lambda p: p.live_segments)
        gauge("repro.pool.free_bytes").attach(self, lambda p: p.free_bytes)

    # -- slab machinery ----------------------------------------------------------
    def _check_quota_locked(self, tenant: str, nbytes: int) -> None:
        quota = self._tenant_quotas.get(tenant)
        used = self._tenant_bytes.get(tenant, 0)
        if quota is not None and used + nbytes > quota:
            raise QuotaExceededError(
                f"tenant {tenant!r} shared-memory quota exceeded: "
                f"{used} + {nbytes} bytes > quota {quota}"
            )

    def _pop_free_locked(self, size_class: int) -> Optional[_FreeSegment]:
        """Pop a recyclable segment: exact class preferred, else the smallest
        larger class within 2x (bounding internal waste on a fallback fit)."""
        bucket = self._free_lists.get(size_class)
        chosen = size_class if bucket else None
        if chosen is None:
            for capacity in sorted(self._free_lists):
                if capacity <= size_class:
                    continue
                if capacity > 2 * size_class:
                    break
                chosen = capacity
                bucket = self._free_lists[capacity]
                break
        if bucket is None or chosen is None:
            return None
        entry = bucket.pop()
        if not bucket:
            del self._free_lists[chosen]
        self._free_bytes -= entry.segment.size
        return entry

    def _pool_segment_locked(self, segment: SharedSegment) -> None:
        """Return a dead segment to its size-class free list (or retire it).

        The hard cap bounds retained-free memory: past it the segment is
        unlinked instead, and its uuid name is never reused.
        """
        capacity = segment.size - _SLAB_HEADER_SIZE
        if (
            capacity <= 0
            or self._free_list_max_bytes is not None
            and self._free_bytes + segment.size > self._free_list_max_bytes
        ):
            segment.unlink()
            return
        self._free_lists.setdefault(capacity, []).append(
            _FreeSegment(segment, capacity, time.monotonic())
        )
        self._free_bytes += segment.size

    def _trim_idle_free_locked(self, now: float) -> None:
        """Unlink free-listed segments that sat unused past the idle window."""
        if self._free_idle_seconds is None or not self._free_lists:
            return
        cutoff = now - self._free_idle_seconds
        for capacity in list(self._free_lists):
            kept = []
            for entry in self._free_lists[capacity]:
                if entry.freed_at < cutoff:
                    self._free_bytes -= entry.segment.size
                    entry.segment.unlink()
                else:
                    kept.append(entry)
            if kept:
                self._free_lists[capacity] = kept
            else:
                del self._free_lists[capacity]

    def _acquire_segment(self, data_nbytes: int) -> Tuple[SharedSegment, int, bool]:
        """A segment with at least ``data_nbytes`` of data capacity.

        Recycles from the free lists when possible (bumping the generation
        and restamping the slab header); creates a fresh segment otherwise.
        Returns ``(segment, generation, reused)``; the caller owns the
        segment exclusively until it commits a record for it.
        """
        size_class = _size_class(data_nbytes)
        with self._lock:
            self._trim_idle_free_locked(time.monotonic())
            entry = self._pop_free_locked(size_class)
            if entry is not None:
                self._reuse_hits += 1
        if entry is not None:
            segment = entry.segment
            segment.generation += 1
            _write_slab_header(segment)
            _REUSE_HITS.inc()
            return segment, segment.generation, True
        name = _new_segment_name(self._prefix)
        segment = SharedSegment(
            name, _SLAB_HEADER_SIZE + size_class, create=True, backend=self._backend
        )
        segment.generation = 1
        _write_slab_header(segment)
        with self._lock:
            self._reuse_misses += 1
            self._segments_created += 1
        _REUSE_MISSES.inc()
        _MMAP_TOTAL.inc()
        return segment, 1, False

    def _commit_segment(
        self,
        segment: SharedSegment,
        generation: int,
        nbytes: int,
        initial_refcount: int,
        tenant: Optional[str],
    ) -> None:
        """Register an acquired segment as a live record (with quota re-check)."""
        with self._lock:
            if tenant is not None:
                # Re-check under the same lock that commits the record: two
                # tenant allocations racing past the pre-check must not
                # overshoot the quota together.  The rejected segment goes
                # straight back to the free list.
                try:
                    self._check_quota_locked(tenant, nbytes)
                except QuotaExceededError:
                    self._pool_segment_locked(segment)
                    raise
                self._tenant_bytes[tenant] = self._tenant_bytes.get(tenant, 0) + nbytes
            record = _SegmentRecord(
                segment, int(initial_refcount), nbytes, generation=generation
            )
            if tenant is not None:
                record.metadata["tenant"] = tenant
            self._records[segment.name] = record
            self._bytes_in_flight += nbytes
            self._total_allocated += nbytes
            self._note_peak_locked()

    # -- allocation -------------------------------------------------------------
    def allocate_tensor(
        self,
        shape: Tuple[int, ...],
        dtype: DTypeLike = "float32",
        device: DeviceLike = "cpu",
        *,
        initial_refcount: int = 1,
        tenant: Optional[str] = None,
    ) -> Tensor:
        """Allocate an uninitialized tensor inside a (possibly recycled) segment.

        The tensor's data starts right after the slab header
        (``segment_offset == 64``).  ``tenant`` charges the tensor's logical
        bytes to a named tenant's account (see :meth:`set_tenant_quota` /
        :class:`TenantPool`); the quota check runs *before* a segment is
        acquired, so a rejected allocation never touches ``/dev/shm``.
        """
        dt = as_dtype(dtype)
        count = int(np.prod(shape)) if shape else 1
        nbytes = max(count * dt.itemsize, 1)
        if tenant is not None:
            with self._lock:
                self._check_quota_locked(tenant, nbytes)
        segment, generation, _reused = self._acquire_segment(nbytes)
        array = segment.ndarray(tuple(shape), dt, offset=_SLAB_HEADER_SIZE)
        self._commit_segment(segment, generation, nbytes, initial_refcount, tenant)
        return Tensor(array, device, segment=segment, segment_offset=_SLAB_HEADER_SIZE)

    def _note_peak_locked(self) -> None:
        """Peak tracks *total* live bytes — in-flight plus cache-pinned — so
        memory sizing from ``peak_bytes`` stays honest when a cache retains
        whole epochs."""
        self._peak_bytes = max(self._peak_bytes, self._bytes_in_flight + self._cached_bytes)

    def share_tensor(
        self, tensor: Tensor, *, initial_refcount: int = 1, tenant: Optional[str] = None
    ) -> Tensor:
        """Copy an ordinary tensor into the pool so it can be handed off zero-copy."""
        shared = self.allocate_tensor(
            tensor.shape,
            tensor.dtype,
            tensor.device,
            initial_refcount=initial_refcount,
            tenant=tenant,
        )
        shared.numpy()[...] = tensor.numpy()
        return shared

    def share_batch(
        self,
        batch: Mapping[str, Tensor],
        *,
        initial_refcount: int = 1,
        tenant: Optional[str] = None,
    ) -> Dict[str, Tensor]:
        """Copy every tensor of one batch into a *single* shared segment.

        Layout: the slab header, then each tensor at the next 64-byte-aligned
        offset.  The returned tensors are views into the one segment, so
        packing them (``BatchPayload.pack``) yields exactly one segment name
        per batch — one producer hold, one retain per consumer, and one
        cross-process attach per delivery instead of one per tensor.

        Accounting charges the batch's logical tensor bytes (the refcounted
        record and any tenant quota); the slab's size-class rounding only
        shows up in ``free_bytes`` once the segment is recycled.
        """
        if not batch:
            raise SharedMemoryError("cannot share an empty batch")
        items = list(batch.items())
        offsets: Dict[str, int] = {}
        cursor = _SLAB_HEADER_SIZE
        logical = 0
        for key, tensor in items:
            cursor = _align_up(cursor, _SLAB_ALIGN)
            offsets[key] = cursor
            nbytes = max(int(tensor.nbytes), 1)
            cursor += nbytes
            logical += nbytes
        if tenant is not None:
            with self._lock:
                self._check_quota_locked(tenant, logical)
        segment, generation, _reused = self._acquire_segment(cursor - _SLAB_HEADER_SIZE)
        shared: Dict[str, Tensor] = {}
        for key, tensor in items:
            array = segment.ndarray(tensor.shape, tensor.dtype, offset=offsets[key])
            array[...] = tensor.numpy()
            shared[key] = Tensor(
                array, tensor.device, segment=segment, segment_offset=offsets[key]
            )
        self._commit_segment(segment, generation, logical, initial_refcount, tenant)
        return shared

    # -- refcounting -------------------------------------------------------------
    def _record_for_locked(self, name: str) -> _SegmentRecord:
        try:
            return self._records[name]
        except KeyError as exc:
            raise SharedMemoryError(f"unknown segment {name!r}") from exc

    def retain(self, name: str, count: int = 1) -> int:
        """Add ``count`` holds on a segment; returns the new refcount."""
        if count <= 0:
            raise ValueError("retain count must be positive")
        with self._lock:
            record = self._record_for_locked(name)
            record.refcount += count
            return record.refcount

    def release(self, name: str, count: int = 1) -> int:
        """Drop ``count`` holds; recycles the segment when the count reaches zero."""
        if count <= 0:
            raise ValueError("release count must be positive")
        with self._lock:
            record = self._records.get(name)
            if record is None:
                raise SharedMemoryError(f"unknown segment {name!r}")
            return self._release_locked(name, record, count)

    def release_if_present(self, name: str, count: int = 1) -> Optional[int]:
        """Atomic ``contains`` + ``release``: drop holds only if the segment is live.

        Returns the remaining refcount, or ``None`` when the segment is not
        (or no longer) registered.  This is the form concurrent code must
        use: a separate ``contains()`` check followed by ``release()`` races
        with other releasers between the two lock acquisitions.  The caller
        must own the holds it drops — the segment then cannot have been
        recycled under the same name, because recycling requires all holds
        (including the caller's) to be gone first.
        """
        if count <= 0:
            raise ValueError("release count must be positive")
        with self._lock:
            record = self._records.get(name)
            if record is None:
                return None
            return self._release_locked(name, record, count)

    def _release_locked(self, name: str, record: _SegmentRecord, count: int) -> int:
        if count > record.refcount - record.cache_holds:
            raise SharedMemoryError(
                f"releasing {count} holds on {name!r} but only "
                f"{record.refcount - record.cache_holds} non-cache holds held "
                f"(use release_cached for cache holds)"
            )
        record.refcount -= count
        remaining = record.refcount
        if remaining == 0:
            # The guard above caps count at refcount - cache_holds, so a
            # plain release can only zero the refcount when cache_holds == 0:
            # the bytes are necessarily in the in-flight bucket.
            self._free_record_locked(name, record, cached=False)
        return remaining

    def _free_record_locked(self, name: str, record: _SegmentRecord, *, cached: bool) -> None:
        """Drop a dead record from the books and recycle its segment.

        ``cached`` names the bucket the segment's bytes are currently counted
        in (a segment sits in ``cached_bytes`` while it has cache holds,
        ``bytes_in_flight`` otherwise).  The segment goes to the free list
        (its name will be reused at a bumped generation) unless the hard cap
        retires it; the tenant's charge ends here either way — free-listed
        bytes belong to no tenant.
        """
        self._records.pop(name)
        if cached:
            self._cached_bytes -= record.nbytes
        else:
            self._bytes_in_flight -= record.nbytes
        tenant = record.metadata.get("tenant")
        if tenant is not None:
            remaining = self._tenant_bytes.get(tenant, 0) - record.nbytes
            self._tenant_bytes[tenant] = max(0, remaining)
        self._total_released += record.nbytes
        self._pool_segment_locked(record.segment)

    # -- cache holds -----------------------------------------------------------------
    def retain_cached(self, name: str, count: int = 1) -> int:
        """Add ``count`` *cache* holds on a segment; returns the new refcount.

        Cache holds keep a published batch's segments alive across epochs so
        repeat epochs can be republished without reloading (see
        :class:`repro.cache.BatchCache`).  They are accounted separately: a
        segment with at least one cache hold counts toward
        :attr:`cached_bytes` rather than :attr:`bytes_in_flight`, so the
        in-flight figure keeps meaning "staged batches consumers have not yet
        acknowledged" even while a cache pins whole epochs.  A cache hold
        also pins the segment's *generation*: recycling (and the generation
        bump that would invalidate the cached payload's handles) can only
        happen once the refcount — cache holds included — reaches zero.
        """
        if count <= 0:
            raise ValueError("retain count must be positive")
        with self._lock:
            record = self._record_for_locked(name)
            if record.cache_holds == 0:
                self._bytes_in_flight -= record.nbytes
                self._cached_bytes += record.nbytes
            record.cache_holds += count
            record.refcount += count
            return record.refcount

    def release_cached(self, name: str, count: int = 1) -> Optional[int]:
        """Drop ``count`` cache holds (atomic; no-op when the segment is gone).

        When the last cache hold goes and other holds remain (consumers still
        reading a republished batch), the segment's bytes move back to
        ``bytes_in_flight``; when no holds remain at all the segment is
        recycled.  Returns the remaining refcount, or ``None`` when the
        segment was not registered.
        """
        if count <= 0:
            raise ValueError("release count must be positive")
        with self._lock:
            record = self._records.get(name)
            if record is None:
                return None
            if count > record.cache_holds:
                raise SharedMemoryError(
                    f"releasing {count} cache holds on {name!r} but only "
                    f"{record.cache_holds} held"
                )
            record.cache_holds -= count
            record.refcount -= count
            if record.refcount == 0:
                # The segment had cache holds until this call, so its bytes
                # are still counted in the cached bucket.
                self._free_record_locked(name, record, cached=True)
                return 0
            if record.cache_holds == 0:
                # Bucket move only; the total is unchanged, so no peak note.
                self._cached_bytes -= record.nbytes
                self._bytes_in_flight += record.nbytes
            return record.refcount

    def cache_holds(self, name: str) -> int:
        with self._lock:
            record = self._records.get(name)
            return record.cache_holds if record is not None else 0

    def refcount(self, name: str) -> int:
        with self._lock:
            return self._record_for_locked(name).refcount

    def generation(self, name: str) -> Optional[int]:
        """Current generation of a live segment (``None`` when not live)."""
        with self._lock:
            record = self._records.get(name)
            return record.generation if record is not None else None

    def contains(self, name: str) -> bool:
        with self._lock:
            if name in self._records:
                return True
            if self._attach_by_name:
                return self._open_attached_locked(name) is not None
            return False

    # -- cross-process attach ------------------------------------------------------
    def _open_attached_locked(self, name: str) -> Optional[SharedSegment]:
        """Open (or fetch the cached handle of) a segment another process created.

        A cache hit on a recycled name costs no syscall at all — the mapping
        is shared memory, so the producer's header restamp (new generation,
        new batch bytes) is already visible through it.
        """
        segment = self._attached.get(name)
        if segment is not None:
            self._attach_cache_hits += 1
            self._attached.move_to_end(name)
            return segment
        try:
            segment = SharedSegment(name, create=False, backend=self._backend)
        except SharedMemoryError:
            return None
        self._attach_opens += 1
        _MMAP_TOTAL.inc()
        self._attached[name] = segment
        self._trim_attached_locked()
        return segment

    def _trim_attached_locked(self) -> None:
        """Close the oldest cached attach handles once the cache overflows.

        A handle whose tensor views are still alive cannot be closed
        (BufferError); it is *skipped* — kept at its place in the cache and
        retried on a later trim — and trimming continues with the next-oldest
        candidate, so one pinned view cannot let the cache grow without
        bound past ``attach_cache_limit``.
        """
        excess = len(self._attached) - self._attach_cache_limit
        if excess <= 0:
            return
        for name in list(self._attached):
            if excess <= 0:
                break
            try:
                self._attached[name].close()
            except (BufferError, ValueError):
                continue  # still viewed; try the next-oldest instead
            del self._attached[name]
            excess -= 1

    def close_attached(self) -> None:
        """Close every cached attach handle that is no longer viewed."""
        with self._lock:
            for name in list(self._attached):
                try:
                    self._attached[name].close()
                except (BufferError, ValueError):
                    continue
                del self._attached[name]

    def attach(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: DTypeLike,
        device: DeviceLike = "cpu",
        offset: int = 0,
        *,
        generation: Optional[int] = None,
    ) -> Tensor:
        """Rebuild a tensor view over an existing segment (consumer side).

        ``generation`` (from a payload handle) guards against the slab
        allocator's name reuse: if the segment was recycled since the handle
        was packed, the attach raises
        :class:`~repro.tensor.errors.StaleHandleError` instead of silently
        aliasing the new occupant's bytes.  Producer-side records are checked
        against the pool's books; by-name attaches from another process are
        checked against the segment's in-band slab header.
        """
        with self._lock:
            record = self._records.get(name)
            if record is not None:
                segment = record.segment
                if generation is not None and record.generation != generation:
                    raise StaleHandleError(
                        f"stale handle for segment {name!r}: packed at generation "
                        f"{generation}, segment was recycled and is now generation "
                        f"{record.generation}"
                    )
            elif self._attach_by_name:
                segment = self._open_attached_locked(name)
                if segment is None:
                    raise SharedMemoryError(f"unknown segment {name!r}")
                if generation is not None:
                    current = _read_slab_generation(segment)
                    if current is None:
                        raise SharedMemoryError(
                            f"segment {name!r} carries no slab header; cannot "
                            f"validate handle generation {generation}"
                        )
                    if current != generation:
                        raise StaleHandleError(
                            f"stale handle for segment {name!r}: packed at generation "
                            f"{generation}, segment was recycled and is now generation "
                            f"{current}"
                        )
            else:
                raise SharedMemoryError(f"unknown segment {name!r}")
        array = segment.ndarray(tuple(shape), as_dtype(dtype), offset=offset)
        return Tensor(array, device, segment=segment, segment_offset=offset)

    # -- free-list maintenance ------------------------------------------------------
    def trim_free(self, max_bytes: int = 0) -> int:
        """Unlink free-listed segments (oldest first) down to ``max_bytes``.

        Returns the number of bytes released.  ``trim_free()`` with the
        default empties the free lists entirely — the explicit way to drain
        ``free_bytes`` to zero without shutting the pool down.
        """
        released = 0
        with self._lock:
            while self._free_bytes > max_bytes and self._free_lists:
                oldest_capacity = None
                oldest_index = None
                oldest: Optional[_FreeSegment] = None
                for capacity, bucket in self._free_lists.items():
                    for index, entry in enumerate(bucket):
                        if oldest is None or entry.freed_at < oldest.freed_at:
                            oldest_capacity, oldest_index, oldest = capacity, index, entry
                if oldest is None:
                    break
                bucket = self._free_lists[oldest_capacity]
                bucket.pop(oldest_index)
                if not bucket:
                    del self._free_lists[oldest_capacity]
                self._free_bytes -= oldest.segment.size
                released += oldest.segment.size
                oldest.segment.unlink()
        return released

    # -- accounting ----------------------------------------------------------------
    @property
    def bytes_in_flight(self) -> int:
        with self._lock:
            return self._bytes_in_flight

    @property
    def cached_bytes(self) -> int:
        """Bytes pinned by epoch-cache holds (disjoint from ``bytes_in_flight``)."""
        with self._lock:
            return self._cached_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark of total live bytes (in-flight + cache-pinned)."""
        with self._lock:
            return self._peak_bytes

    @property
    def free_bytes(self) -> int:
        """Real memory retained on the slab free lists (capacity + headers)."""
        with self._lock:
            return self._free_bytes

    @property
    def free_segments(self) -> int:
        with self._lock:
            return sum(len(bucket) for bucket in self._free_lists.values())

    @property
    def segment_reuse_hits(self) -> int:
        """Allocations served by recycling a free-listed segment."""
        with self._lock:
            return self._reuse_hits

    @property
    def segment_reuse_misses(self) -> int:
        """Allocations that had to create a fresh segment."""
        with self._lock:
            return self._reuse_misses

    @property
    def segments_created(self) -> int:
        """Total segments this pool ever created (``shm_open`` + ``mmap``)."""
        with self._lock:
            return self._segments_created

    @property
    def attach_cache_hits(self) -> int:
        """By-name lookups served from the attach cache (no syscall)."""
        with self._lock:
            return self._attach_cache_hits

    @property
    def attach_opens(self) -> int:
        """By-name attaches that had to open + map a segment."""
        with self._lock:
            return self._attach_opens

    @property
    def mmap_total(self) -> int:
        """Mapping operations performed: segment creations + attach opens."""
        with self._lock:
            return self._segments_created + self._attach_opens

    @property
    def total_allocated_bytes(self) -> int:
        with self._lock:
            return self._total_allocated

    @property
    def live_segments(self) -> int:
        with self._lock:
            return len(self._records)

    # -- tenants -------------------------------------------------------------------
    def set_tenant_quota(self, tenant: str, quota_bytes: Optional[int]) -> None:
        """Register (or resize) a tenant's byte quota; ``None`` is unlimited."""
        if quota_bytes is not None and quota_bytes <= 0:
            raise ValueError("quota_bytes must be positive when given")
        with self._lock:
            self._tenant_quotas[tenant] = quota_bytes
            self._tenant_bytes.setdefault(tenant, 0)

    def drop_tenant(self, tenant: str) -> int:
        """Forget a tenant's quota entry; returns the bytes it still held.

        Live segments stay tagged and keep decrementing the (now orphaned)
        usage counter as they free, so a non-zero return flags an eviction
        that ran before the tenant's session finished draining.  Segments
        the tenant already freed sit on the shared free lists untagged —
        eviction does not (and must not) reclaim them from other tenants.
        """
        with self._lock:
            self._tenant_quotas.pop(tenant, None)
            return self._tenant_bytes.pop(tenant, 0)

    def tenant_bytes(self, tenant: str) -> int:
        """Live bytes currently charged to ``tenant`` (in-flight + cached).

        Free-listed bytes are never charged here: a segment's tenant charge
        ends the moment its last hold is released, even while the slab keeps
        the segment warm for the next allocation.
        """
        with self._lock:
            return self._tenant_bytes.get(tenant, 0)

    def tenant_quota(self, tenant: str) -> Optional[int]:
        with self._lock:
            return self._tenant_quotas.get(tenant)

    def tenant_view(self, tenant: str, quota_bytes: Optional[int] = None) -> "TenantPool":
        """A quota-scoped view of this pool charging allocations to ``tenant``."""
        self.set_tenant_quota(tenant, quota_bytes)
        return TenantPool(self, tenant)

    def shutdown(self) -> None:
        """Free every live and free-listed segment regardless of refcount
        (end-of-run cleanup); ``free_bytes`` drains to zero here too."""
        with self._lock:
            for record in self._records.values():
                record.segment.unlink()
            self._records.clear()
            self._bytes_in_flight = 0
            self._cached_bytes = 0
            for bucket in self._free_lists.values():
                for entry in bucket:
                    entry.segment.unlink()
            self._free_lists.clear()
            self._free_bytes = 0
            for segment in self._attached.values():
                try:
                    segment.close()
                except (BufferError, ValueError):
                    pass
            self._attached.clear()
            for tenant in self._tenant_bytes:
                self._tenant_bytes[tenant] = 0

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SharedMemoryPool(backend={self._backend!r}, "
                f"live={len(self._records)}, "
                f"in_flight={self._bytes_in_flight}B, "
                f"cached={self._cached_bytes}B, peak={self._peak_bytes}B, "
                f"free={self._free_bytes}B)"
            )


class TenantPool:
    """One tenant's quota-scoped view of a shared :class:`SharedMemoryPool`.

    The broker hands each mounted dataset's producers a ``TenantPool`` instead
    of the shared pool itself: allocations (the only operations that consume
    memory) are charged to the tenant and rejected with
    :class:`~repro.tensor.errors.QuotaExceededError` past its quota, while
    every other operation — refcounting, cache holds, attach, accounting
    reads — passes straight through to the shared pool, so payloads staged by
    one tenant stay reachable to every consumer of the same transport.  The
    slab free lists are likewise shared: a segment freed by one tenant is
    uncharged from it immediately and may be recycled by any other.

    ``shutdown()`` is deliberately a no-op: the shared pool outlives any one
    tenant, and a tenant's bytes drain through ordinary releases when its
    session shuts down (the broker asserts they reach zero).
    """

    def __init__(self, pool: SharedMemoryPool, tenant: str) -> None:
        self._pool = pool
        self.tenant = tenant

    def allocate_tensor(
        self,
        shape: Tuple[int, ...],
        dtype: DTypeLike = "float32",
        device: DeviceLike = "cpu",
        *,
        initial_refcount: int = 1,
    ) -> Tensor:
        return self._pool.allocate_tensor(
            shape,
            dtype,
            device,
            initial_refcount=initial_refcount,
            tenant=self.tenant,
        )

    def share_tensor(self, tensor: Tensor, *, initial_refcount: int = 1) -> Tensor:
        return self._pool.share_tensor(
            tensor, initial_refcount=initial_refcount, tenant=self.tenant
        )

    def share_batch(
        self, batch: Mapping[str, Tensor], *, initial_refcount: int = 1
    ) -> Dict[str, Tensor]:
        return self._pool.share_batch(
            batch, initial_refcount=initial_refcount, tenant=self.tenant
        )

    @property
    def bytes_used(self) -> int:
        """Live bytes charged to this tenant."""
        return self._pool.tenant_bytes(self.tenant)

    @property
    def quota_bytes(self) -> Optional[int]:
        return self._pool.tenant_quota(self.tenant)

    def shutdown(self) -> None:
        """No-op: only the transport owner may shut the shared pool down."""

    def __getattr__(self, name: str):
        # Everything not overridden (retain/release/cache holds/attach/
        # accounting properties) acts on the shared pool.
        return getattr(self._pool, name)

    def __repr__(self) -> str:
        quota = self.quota_bytes
        return (
            f"TenantPool(tenant={self.tenant!r}, used={self.bytes_used}B, "
            f"quota={'unlimited' if quota is None else f'{quota}B'})"
        )
