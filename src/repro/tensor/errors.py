"""Exception hierarchy for the tensor substrate."""


class TensorError(Exception):
    """Base class for all tensor-substrate errors."""


class DeviceMismatchError(TensorError):
    """Raised when an operation combines tensors on incompatible devices."""


class SharedMemoryError(TensorError):
    """Raised when a shared-memory segment cannot be created, mapped or freed."""


class QuotaExceededError(SharedMemoryError):
    """Raised when an allocation would push a tenant past its byte quota."""


class StaleHandleError(SharedMemoryError):
    """Raised when a (name, generation) handle refers to a recycled segment.

    The slab allocator reuses segment names; a handle packed before the
    segment was recycled must be rejected — attaching it would silently
    alias whatever batch lives in the segment now (the ABA hazard)."""


class PayloadError(TensorError):
    """Raised when a :class:`TensorPayload` cannot be packed or unpacked."""
