"""Exception hierarchy for the tensor substrate."""


class TensorError(Exception):
    """Base class for all tensor-substrate errors."""


class DeviceMismatchError(TensorError):
    """Raised when an operation combines tensors on incompatible devices."""


class SharedMemoryError(TensorError):
    """Raised when a shared-memory segment cannot be created, mapped or freed."""


class QuotaExceededError(SharedMemoryError):
    """Raised when an allocation would push a tenant past its byte quota."""


class PayloadError(TensorError):
    """Raised when a :class:`TensorPayload` cannot be packed or unpacked."""
