"""Tensor handle packing and unpacking (the ``TensorPayload`` mechanism).

Section 3.2.4 of the paper: instead of sending batch bytes to each consumer,
the producer sends "small packets containing pointers to the data".  Each
packet describes where the bytes already live (shared segment name, byte
offset, shape, dtype, device) and the consumer rebuilds a tensor *view* over
those bytes without copying.

Two payload kinds are provided:

* ``TensorPayload.from_shared`` — the TensorSocket path: a handle onto a
  shared segment.  ``payload_nbytes`` is tiny (a few hundred bytes of
  metadata) regardless of how large the batch is.
* ``TensorPayload.inline`` — the copy-the-bytes path used by byte-copy
  baselines (e.g. Joader's NumPy-over-IPC delivery).  ``payload_nbytes``
  equals the tensor size, which is exactly the cost the paper's design avoids.

``BatchPayload`` groups the per-tensor payloads of one batch (e.g. images and
labels) together with bookkeeping the protocol needs: epoch, batch index,
producer-batch id and slice bounds under flexible batching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.tensor.device import as_device
from repro.tensor.dtype import as_dtype
from repro.tensor.errors import PayloadError, SharedMemoryError, StaleHandleError
from repro.tensor.shared_memory import SharedMemoryPool
from repro.tensor.tensor import Tensor

#: Estimated wire size of one packed tensor handle, in bytes.  Used by the
#: hardware simulator to account for control-plane traffic (it is deliberately
#: pessimistic; real ZeroMQ messages are smaller).
HANDLE_WIRE_BYTES = 256


@dataclass(frozen=True)
class TensorPayload:
    """A packed description of one tensor.

    Exactly one of ``segment_name`` (shared handle) or ``inline_bytes``
    (byte copy) is set.  ``generation`` rides along with shared handles: the
    pool recycles segment names, and the generation lets ``unpack`` reject a
    handle whose segment was recycled after packing (the ABA hazard) instead
    of silently reading the new occupant's bytes.
    """

    shape: Tuple[int, ...]
    dtype: str
    device: str
    segment_name: Optional[str] = None
    segment_offset: int = 0
    inline_bytes: Optional[bytes] = None
    generation: Optional[int] = None

    # -- constructors -----------------------------------------------------------
    @staticmethod
    def from_shared(tensor: Tensor) -> "TensorPayload":
        """Pack a shared-memory tensor into a pointer handle (zero-copy)."""
        if not tensor.is_shared:
            raise PayloadError(
                "tensor is not backed by a shared segment; use SharedMemoryPool."
                "share_tensor() first or pack it inline"
            )
        # Raw segments created outside a pool have generation 0 — no recycle
        # can ever happen to them, so the handle carries no generation and
        # unpack skips the check.
        generation = getattr(tensor.segment, "generation", 0)
        return TensorPayload(
            shape=tensor.shape,
            dtype=tensor.dtype.name,
            device=str(tensor.device),
            segment_name=tensor.segment.name,
            segment_offset=tensor.segment_offset,
            generation=generation if generation else None,
        )

    @staticmethod
    def inline(tensor: Tensor) -> "TensorPayload":
        """Pack a tensor by copying its bytes (the expensive path).

        The payload holds a zero-copy ``memoryview`` of the tensor's
        contiguous bytes — the copy is deferred to the framing layer (or to
        pickling, see ``__reduce__``), so an inline payload that never
        leaves the process never duplicates the tensor.
        """
        array = np.ascontiguousarray(tensor.numpy())
        return TensorPayload(
            shape=tensor.shape,
            dtype=tensor.dtype.name,
            device=str(tensor.device),
            inline_bytes=array.data.cast("B"),
        )

    def __reduce__(self):
        # memoryviews cannot be pickled; materialize the inline bytes only
        # when the payload actually leaves the process.
        inline = self.inline_bytes
        if inline is not None and not isinstance(inline, bytes):
            inline = bytes(inline)
        return (
            TensorPayload,
            (
                self.shape,
                self.dtype,
                self.device,
                self.segment_name,
                self.segment_offset,
                inline,
                self.generation,
            ),
        )

    @staticmethod
    def pack(tensor: Tensor) -> "TensorPayload":
        """Pack using the cheapest representation available for the tensor."""
        if tensor.is_shared:
            return TensorPayload.from_shared(tensor)
        return TensorPayload.inline(tensor)

    # -- properties --------------------------------------------------------------
    @property
    def is_shared(self) -> bool:
        return self.segment_name is not None

    @property
    def tensor_nbytes(self) -> int:
        """Size of the tensor the payload describes."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count * as_dtype(self.dtype).itemsize

    @property
    def payload_nbytes(self) -> int:
        """Bytes that actually travel on the wire for this payload."""
        if self.inline_bytes is not None:
            return len(self.inline_bytes) + HANDLE_WIRE_BYTES
        return HANDLE_WIRE_BYTES

    # -- unpacking ----------------------------------------------------------------
    def unpack(self, pool: Optional[SharedMemoryPool] = None) -> Tensor:
        """Rebuild the tensor this payload describes.

        Shared payloads need the ``pool`` that owns the segment; inline
        payloads are self-contained.
        """
        device = as_device(self.device)
        if self.inline_bytes is not None:
            array = np.frombuffer(self.inline_bytes, dtype=as_dtype(self.dtype).numpy_dtype)
            array = array.reshape(self.shape).copy()
            return Tensor(array, device)
        if pool is None:
            raise PayloadError("a SharedMemoryPool is required to unpack a shared payload")
        # attach() looks the segment up under the pool lock; a separate
        # contains() probe first would race with concurrent releases between
        # the two lock acquisitions.
        try:
            return pool.attach(
                self.segment_name,
                self.shape,
                self.dtype,
                device=device,
                offset=self.segment_offset,
                generation=self.generation,
            )
        except StaleHandleError as exc:
            raise PayloadError(
                f"segment {self.segment_name!r} was recycled after this payload was "
                f"packed (handle generation {self.generation}); the bytes it pointed "
                "at are gone"
            ) from exc
        except SharedMemoryError as exc:
            raise PayloadError(
                f"segment {self.segment_name!r} is not (or no longer) registered in the pool; "
                "it may have been released before this consumer acknowledged it"
            ) from exc

    def to_dict(self) -> dict:
        """A JSON-serializable description (inline bytes are hex-encoded)."""
        inline = self.inline_bytes
        return {
            "shape": list(self.shape),
            "dtype": self.dtype,
            "device": self.device,
            "segment_name": self.segment_name,
            "segment_offset": self.segment_offset,
            "inline_bytes": bytes(inline).hex() if inline is not None else None,
            "generation": self.generation,
        }

    @staticmethod
    def from_dict(data: Mapping) -> "TensorPayload":
        inline = data.get("inline_bytes")
        return TensorPayload(
            shape=tuple(data["shape"]),
            dtype=data["dtype"],
            device=data["device"],
            segment_name=data.get("segment_name"),
            segment_offset=int(data.get("segment_offset", 0)),
            inline_bytes=bytes.fromhex(inline) if inline is not None else None,
            generation=data.get("generation"),
        )


@dataclass(frozen=True)
class BatchPayload:
    """The packed form of one training batch published by the producer.

    Attributes
    ----------
    batch_index:
        Index of this batch within the current epoch (producer numbering).
    epoch:
        Epoch number the batch belongs to.
    tensors:
        Named tensor payloads, e.g. ``{"inputs": ..., "targets": ...}``.
    producer_batch_id:
        Monotonic id of the producer batch this consumer batch was carved
        from (equals ``batch_index`` unless flexible batching is active).
    slice_start / slice_stop:
        Row range inside the producer batch, set under flexible batching.
    is_last_in_epoch:
        Marks the final batch of an epoch so consumers can roll their epoch
        counters without a separate control message.
    """

    batch_index: int
    epoch: int
    tensors: Mapping[str, TensorPayload]
    producer_batch_id: Optional[int] = None
    slice_start: Optional[int] = None
    slice_stop: Optional[int] = None
    is_last_in_epoch: bool = False
    metadata: Mapping[str, object] = field(default_factory=dict)

    # -- constructors -----------------------------------------------------------
    @staticmethod
    def pack(
        batch: Mapping[str, Tensor],
        *,
        batch_index: int,
        epoch: int,
        producer_batch_id: Optional[int] = None,
        slice_start: Optional[int] = None,
        slice_stop: Optional[int] = None,
        is_last_in_epoch: bool = False,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> "BatchPayload":
        if not batch:
            raise PayloadError("cannot pack an empty batch")
        tensors = {name: TensorPayload.pack(t) for name, t in batch.items()}
        return BatchPayload(
            batch_index=batch_index,
            epoch=epoch,
            tensors=tensors,
            producer_batch_id=producer_batch_id,
            slice_start=slice_start,
            slice_stop=slice_stop,
            is_last_in_epoch=is_last_in_epoch,
            metadata=dict(metadata or {}),
        )

    # -- unpacking ----------------------------------------------------------------
    def unpack(self, pool: Optional[SharedMemoryPool] = None) -> Dict[str, Tensor]:
        """Rebuild every tensor in the batch."""
        return {name: payload.unpack(pool) for name, payload in self.tensors.items()}

    # -- sizes ----------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        """Number of samples in the batch (leading dimension of any tensor)."""
        first = next(iter(self.tensors.values()))
        return first.shape[0] if first.shape else 0

    @property
    def tensor_nbytes(self) -> int:
        return sum(p.tensor_nbytes for p in self.tensors.values())

    @property
    def payload_nbytes(self) -> int:
        return sum(p.payload_nbytes for p in self.tensors.values()) + HANDLE_WIRE_BYTES

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Unique shared segments referenced by this batch (for refcounting).

        With single-segment batch packing (``SharedMemoryPool.share_batch``)
        every tensor of the batch lives in one segment, so this collapses to
        one name per batch.
        """
        names = []
        for payload in self.tensors.values():
            if payload.is_shared and payload.segment_name not in names:
                names.append(payload.segment_name)
        return tuple(names)

    @property
    def segment_handles(self) -> Tuple[Tuple[str, Optional[int]], ...]:
        """Unique ``(segment_name, generation)`` pairs referenced by this batch."""
        handles: Dict[str, Optional[int]] = {}
        for payload in self.tensors.values():
            if payload.is_shared and payload.segment_name not in handles:
                handles[payload.segment_name] = payload.generation
        return tuple(handles.items())

    def key(self) -> Tuple[int, int]:
        """A (epoch, batch_index) identity used for acknowledgements."""
        return (self.epoch, self.batch_index)
