"""A minimal, numpy-backed tensor with device placement and zero-copy views.

The TensorSocket design depends on a handful of tensor properties that we need
to reproduce faithfully without PyTorch:

* tensors own (or view) a contiguous buffer that can be addressed by a handle,
* slicing a tensor produces a *view* over the same buffer (used for flexible
  batch sizing, Section 3.2.6 of the paper),
* tensors can be moved between devices, and that movement is what generates
  PCIe / NVLink traffic,
* a tensor can be rebuilt from (buffer handle, offset, shape, dtype, device)
  without copying the bytes (used by :class:`~repro.tensor.payload.TensorPayload`).

This module implements exactly that and nothing more.  Numerical operators are
limited to the ones the data pipeline and tests use.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor.device import Device, DeviceLike, as_device, cpu
from repro.tensor.dtype import DType, DTypeLike, as_dtype
from repro.tensor.errors import DeviceMismatchError, TensorError

ShapeLike = Union[int, Sequence[int]]


def _normalize_shape(shape: ShapeLike) -> Tuple[int, ...]:
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    shape = tuple(int(s) for s in shape)
    if any(s < 0 for s in shape):
        raise ValueError(f"negative dimension in shape {shape}")
    return shape


class Tensor:
    """A contiguous, device-tagged, numpy-backed tensor.

    Parameters
    ----------
    array:
        The backing numpy array.  It is made C-contiguous on construction; a
        copy is taken only if the input is not already contiguous.
    device:
        Where the tensor notionally lives.  The bytes are always host memory in
        this reproduction; the device tag drives the hardware simulator's
        transfer accounting.
    segment:
        Optional :class:`~repro.tensor.shared_memory.SharedSegment` that owns
        the bytes.  Present when the tensor was allocated from a
        :class:`~repro.tensor.shared_memory.SharedMemoryPool`, enabling
        zero-copy hand-off between processes.
    segment_offset:
        Byte offset of this tensor's data inside ``segment``.
    """

    __slots__ = ("_array", "_device", "_segment", "_segment_offset", "_pinned")

    def __init__(
        self,
        array: np.ndarray,
        device: DeviceLike = "cpu",
        *,
        segment=None,
        segment_offset: int = 0,
        pinned: bool = False,
    ) -> None:
        if not isinstance(array, np.ndarray):
            raise TypeError(f"Tensor expects a numpy array, got {type(array)!r}")
        if not array.flags["C_CONTIGUOUS"]:
            array = np.ascontiguousarray(array)
        as_dtype(array.dtype)  # validate supported dtype
        self._array = array
        self._device = as_device(device)
        self._segment = segment
        self._segment_offset = int(segment_offset)
        self._pinned = bool(pinned)

    # -- basic metadata ------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self._array.shape)

    @property
    def ndim(self) -> int:
        return self._array.ndim

    @property
    def dtype(self) -> DType:
        return as_dtype(self._array.dtype)

    @property
    def device(self) -> Device:
        return self._device

    @property
    def is_cuda(self) -> bool:
        return self._device.is_cuda

    @property
    def is_pinned(self) -> bool:
        return self._pinned

    @property
    def segment(self):
        """The shared-memory segment backing this tensor, if any."""
        return self._segment

    @property
    def segment_offset(self) -> int:
        return self._segment_offset

    @property
    def is_shared(self) -> bool:
        """Whether the tensor's bytes live in a shared-memory segment."""
        return self._segment is not None

    def numel(self) -> int:
        return int(self._array.size)

    @property
    def nbytes(self) -> int:
        return int(self._array.nbytes)

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TypeError("len() of a 0-d tensor")
        return self.shape[0]

    # -- data access ---------------------------------------------------------
    def numpy(self) -> np.ndarray:
        """Return the backing numpy array (no copy)."""
        return self._array

    def item(self):
        return self._array.item()

    def tolist(self):
        return self._array.tolist()

    def __getitem__(self, key) -> "Tensor":
        view = self._array[key]
        if np.isscalar(view) or view.ndim == 0:
            view = np.asarray(view)
        offset = self._segment_offset
        if isinstance(view, np.ndarray) and view.base is not None:
            # Compute the byte offset of the view inside the original buffer so
            # that a sliced tensor can still be described by a payload handle.
            offset += int(
                view.__array_interface__["data"][0]
                - self._array.__array_interface__["data"][0]
            )
        if not view.flags["C_CONTIGUOUS"]:
            # Non-contiguous views (e.g. strided fancy indexing) must be
            # materialized; they can no longer be described by a simple handle.
            view = np.ascontiguousarray(view)
            return Tensor(view, self._device)
        return Tensor(
            view,
            self._device,
            segment=self._segment,
            segment_offset=offset,
            pinned=self._pinned,
        )

    def slice_rows(self, start: int, stop: int) -> "Tensor":
        """A contiguous view of rows ``[start, stop)`` along dimension zero.

        This is the primitive used by flexible batch sizing: the producer batch
        is a large contiguous tensor and each consumer batch is a row-slice
        view of it, so no bytes move when a consumer batch is carved out.
        """
        if self.ndim == 0:
            raise TensorError("cannot row-slice a 0-d tensor")
        n = self.shape[0]
        if not (0 <= start <= stop <= n):
            raise IndexError(
                f"row slice [{start}, {stop}) out of bounds for length {n}"
            )
        return self[start:stop]

    # -- movement ------------------------------------------------------------
    def to(self, device: DeviceLike) -> "Tensor":
        """Return a tensor on ``device``.

        Moving to the *same* device returns ``self``.  Moving across devices
        copies the bytes (mirroring a real host-to-device or device-to-device
        transfer); the hardware simulator charges the corresponding link.
        """
        target = as_device(device)
        if target == self._device:
            return self
        return Tensor(self._array.copy(), target, pinned=False)

    def cpu(self) -> "Tensor":
        return self.to(cpu())

    def cuda(self, index: int = 0) -> "Tensor":
        return self.to(Device("cuda", index))

    def pin_memory(self) -> "Tensor":
        """Mark the tensor as page-locked host memory (metadata only)."""
        if self._device.is_cuda:
            raise TensorError("only CPU tensors can be pinned")
        return Tensor(
            self._array,
            self._device,
            segment=self._segment,
            segment_offset=self._segment_offset,
            pinned=True,
        )

    # -- shape manipulation ----------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        view = self._array.reshape(shape)
        return Tensor(
            view,
            self._device,
            segment=self._segment,
            segment_offset=self._segment_offset,
            pinned=self._pinned,
        )

    def flatten(self) -> "Tensor":
        return self.reshape(self.numel())

    def clone(self) -> "Tensor":
        return Tensor(self._array.copy(), self._device)

    def astype(self, dtype: DTypeLike) -> "Tensor":
        target = as_dtype(dtype)
        return Tensor(self._array.astype(target.numpy_dtype), self._device)

    def contiguous(self) -> "Tensor":
        return self

    # -- arithmetic (the small subset transforms/tests need) ------------------
    def _coerce_other(self, other):
        if isinstance(other, Tensor):
            if other.device != self.device:
                raise DeviceMismatchError(
                    f"operands on different devices: {self.device} vs {other.device}"
                )
            return other._array
        return other

    def __add__(self, other) -> "Tensor":
        return Tensor(self._array + self._coerce_other(other), self._device)

    def __sub__(self, other) -> "Tensor":
        return Tensor(self._array - self._coerce_other(other), self._device)

    def __mul__(self, other) -> "Tensor":
        return Tensor(self._array * self._coerce_other(other), self._device)

    def __truediv__(self, other) -> "Tensor":
        return Tensor(self._array / self._coerce_other(other), self._device)

    __radd__ = __add__
    __rmul__ = __mul__

    def mean(self) -> float:
        return float(self._array.mean())

    def sum(self) -> float:
        return float(self._array.sum())

    def max(self) -> float:
        return float(self._array.max())

    def min(self) -> float:
        return float(self._array.min())

    # -- comparison helpers ----------------------------------------------------
    def equal(self, other: "Tensor") -> bool:
        """Exact equality of shape, dtype and contents (device ignored)."""
        if not isinstance(other, Tensor):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.dtype == other.dtype
            and bool(np.array_equal(self._array, other._array))
        )

    def allclose(self, other: "Tensor", rtol: float = 1e-5, atol: float = 1e-8) -> bool:
        return bool(np.allclose(self._array, other._array, rtol=rtol, atol=atol))

    def shares_memory_with(self, other: "Tensor") -> bool:
        """Whether two tensors view overlapping bytes (zero-copy check)."""
        return bool(np.shares_memory(self._array, other._array))

    def __repr__(self) -> str:
        return (
            f"Tensor(shape={self.shape}, dtype={self.dtype}, device={self.device}"
            f"{', shared' if self.is_shared else ''})"
        )


# -- constructors -------------------------------------------------------------

def from_numpy(array: np.ndarray, device: DeviceLike = "cpu") -> Tensor:
    """Wrap a numpy array as a :class:`Tensor` without copying."""
    return Tensor(array, device)


def empty(shape: ShapeLike, dtype: DTypeLike = "float32", device: DeviceLike = "cpu") -> Tensor:
    shape = _normalize_shape(shape)
    return Tensor(np.empty(shape, dtype=as_dtype(dtype).numpy_dtype), device)


def zeros(shape: ShapeLike, dtype: DTypeLike = "float32", device: DeviceLike = "cpu") -> Tensor:
    shape = _normalize_shape(shape)
    return Tensor(np.zeros(shape, dtype=as_dtype(dtype).numpy_dtype), device)


def full(
    shape: ShapeLike,
    fill_value,
    dtype: DTypeLike = "float32",
    device: DeviceLike = "cpu",
) -> Tensor:
    shape = _normalize_shape(shape)
    return Tensor(np.full(shape, fill_value, dtype=as_dtype(dtype).numpy_dtype), device)


def arange(n: int, dtype: DTypeLike = "int64", device: DeviceLike = "cpu") -> Tensor:
    return Tensor(np.arange(n, dtype=as_dtype(dtype).numpy_dtype), device)


def _check_same_device(tensors: Sequence[Tensor]) -> Device:
    devices = {t.device for t in tensors}
    if len(devices) > 1:
        raise DeviceMismatchError(f"tensors on multiple devices: {sorted(map(str, devices))}")
    return next(iter(devices))


def stack(tensors: Sequence[Tensor]) -> Tensor:
    """Stack tensors along a new leading dimension (the collate primitive)."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot stack an empty sequence of tensors")
    device = _check_same_device(tensors)
    return Tensor(np.stack([t.numpy() for t in tensors]), device)


def cat(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    """Concatenate tensors along an existing dimension."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot concatenate an empty sequence of tensors")
    device = _check_same_device(tensors)
    return Tensor(np.concatenate([t.numpy() for t in tensors], axis=dim), device)
