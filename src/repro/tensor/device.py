"""Device placement labels.

A :class:`Device` mirrors ``torch.device``: a type (``cpu`` or ``cuda``) plus
an optional index.  Devices are value objects — they carry no resources — and
are used throughout the repository to tag where a tensor's bytes notionally
live and to drive the hardware simulator's accounting of host-to-device and
device-to-device transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

_VALID_TYPES = ("cpu", "cuda")


@dataclass(frozen=True, order=True)
class Device:
    """A placement label such as ``cpu``, ``cuda:0`` or ``cuda:3``.

    Parameters
    ----------
    type:
        Either ``"cpu"`` or ``"cuda"``.  A bare string such as ``"cuda:1"`` may
        also be given, in which case the index is parsed out of it.
    index:
        GPU ordinal.  Must be ``None`` for CPU devices; defaults to ``0`` for
        CUDA devices when omitted.
    """

    type: str
    index: Optional[int] = None

    def __post_init__(self) -> None:
        dev_type = self.type
        index = self.index
        if ":" in dev_type:
            if index is not None:
                raise ValueError(
                    f"device string {dev_type!r} already carries an index; "
                    f"got explicit index={index} as well"
                )
            dev_type, _, idx_text = dev_type.partition(":")
            try:
                index = int(idx_text)
            except ValueError as exc:
                raise ValueError(f"invalid device index in {self.type!r}") from exc
        if dev_type not in _VALID_TYPES:
            raise ValueError(
                f"unknown device type {dev_type!r}; expected one of {_VALID_TYPES}"
            )
        if dev_type == "cpu":
            if index not in (None, 0):
                raise ValueError("cpu device does not take an index")
            index = None
        elif index is None:
            index = 0
        if index is not None and index < 0:
            raise ValueError(f"device index must be non-negative, got {index}")
        object.__setattr__(self, "type", dev_type)
        object.__setattr__(self, "index", index)

    # -- predicates ---------------------------------------------------------
    @property
    def is_cpu(self) -> bool:
        return self.type == "cpu"

    @property
    def is_cuda(self) -> bool:
        return self.type == "cuda"

    # -- formatting ---------------------------------------------------------
    def __str__(self) -> str:
        if self.index is None:
            return self.type
        return f"{self.type}:{self.index}"

    def __repr__(self) -> str:
        return f"Device({str(self)!r})"


DeviceLike = Union[Device, str]


def as_device(value: DeviceLike) -> Device:
    """Coerce a string or :class:`Device` into a :class:`Device`."""
    if isinstance(value, Device):
        return value
    if isinstance(value, str):
        return Device(value)
    raise TypeError(f"cannot interpret {value!r} as a device")


def cpu() -> Device:
    """The host device."""
    return Device("cpu")


def cuda(index: int = 0) -> Device:
    """The GPU device with the given ordinal."""
    return Device("cuda", index)
