"""Element types for tensors.

A small closed catalogue of element types, each mapping onto a numpy dtype.
Keeping our own wrapper (instead of passing numpy dtypes around) lets payloads
serialize the dtype as a short stable string and lets the hardware simulator
compute byte volumes without importing numpy in every module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

import numpy as np


@dataclass(frozen=True)
class DType:
    """An element type: a name, a byte width, and the backing numpy dtype."""

    name: str
    itemsize: int
    is_floating_point: bool

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self.name)

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"DType({self.name!r})"


float64 = DType("float64", 8, True)
float32 = DType("float32", 4, True)
float16 = DType("float16", 2, True)
int64 = DType("int64", 8, False)
int32 = DType("int32", 4, False)
int16 = DType("int16", 2, False)
int8 = DType("int8", 1, False)
uint8 = DType("uint8", 1, False)
bool_ = DType("bool", 1, False)

_BY_NAME: Dict[str, DType] = {
    dt.name: dt
    for dt in (float64, float32, float16, int64, int32, int16, int8, uint8, bool_)
}

DTypeLike = Union[DType, str, np.dtype, type]


def as_dtype(value: DTypeLike) -> DType:
    """Coerce a name, numpy dtype or :class:`DType` into a :class:`DType`."""
    if isinstance(value, DType):
        return value
    name = np.dtype(value).name
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise TypeError(f"unsupported tensor dtype {value!r}") from exc


def all_dtypes() -> tuple:
    """Every supported dtype, useful for property-based tests."""
    return tuple(_BY_NAME.values())
