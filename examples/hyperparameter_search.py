"""Hyper-parameter search with a shared loader: the paper's motivating use case.

Three softmax-regression models train simultaneously on the *same* synthetic
classification dataset with different learning rates.  A single TensorSocket
producer decodes and batches the data once; each candidate model is a consumer.
Because the models are tiny the example runs in seconds, but the structure is
exactly that of a real tuning sweep: one loader, N training processes, and the
data pipeline cost paid once instead of N times.

Run with::

    python examples/hyperparameter_search.py
"""

import threading

import numpy as np

import repro
from repro.data import DataLoader, Dataset
from repro.data.transforms import Lambda, Compose, ToTensor

ADDRESS = "inproc://hyperparameter-search"


class GaussianBlobsDataset(Dataset):
    """A learnable synthetic dataset: Gaussian clusters, one per class."""

    def __init__(self, size: int = 4096, num_classes: int = 4, dim: int = 16, seed: int = 0):
        self.size = size
        self.num_classes = num_classes
        self.dim = dim
        rng = np.random.default_rng(seed)
        self.centers = rng.normal(0.0, 3.0, size=(num_classes, dim)).astype(np.float32)
        self.seed = seed

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int):
        rng = np.random.default_rng((self.seed, index))
        label = int(rng.integers(0, self.num_classes))
        features = self.centers[label] + rng.normal(0.0, 1.0, self.dim).astype(np.float32)
        return {"features": features, "label": label}


class SoftmaxRegression:
    """A minimal numpy softmax classifier trained with SGD."""

    def __init__(self, dim: int, num_classes: int, learning_rate: float):
        self.weights = np.zeros((dim, num_classes), dtype=np.float32)
        self.bias = np.zeros(num_classes, dtype=np.float32)
        self.learning_rate = learning_rate

    def step(self, features: np.ndarray, labels: np.ndarray) -> float:
        logits = features @ self.weights + self.bias
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        batch = features.shape[0]
        loss = float(-np.log(probs[np.arange(batch), labels] + 1e-9).mean())
        grad = probs
        grad[np.arange(batch), labels] -= 1.0
        grad /= batch
        self.weights -= self.learning_rate * (features.T @ grad)
        self.bias -= self.learning_rate * grad.sum(axis=0)
        return loss

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        predictions = (features @ self.weights + self.bias).argmax(axis=1)
        return float((predictions == labels).mean())


def train_candidate(name, learning_rate, dataset, results):
    consumer = repro.attach(ADDRESS, consumer_id=name, max_epochs=3)
    model = SoftmaxRegression(dataset.dim, dataset.num_classes, learning_rate)
    last_loss = float("nan")
    for batch in consumer:
        features = batch["features"].numpy()
        labels = batch["label"].numpy()
        last_loss = model.step(features, labels)
    consumer.close()

    # Held-out evaluation on freshly drawn samples.
    eval_rng = np.random.default_rng(12345)
    eval_labels = eval_rng.integers(0, dataset.num_classes, size=1024)
    eval_features = dataset.centers[eval_labels] + eval_rng.normal(0, 1.0, (1024, dataset.dim))
    results[name] = {
        "learning_rate": learning_rate,
        "final_loss": round(last_loss, 4),
        "accuracy": round(model.accuracy(eval_features.astype(np.float32), eval_labels), 4),
    }


def main() -> None:
    dataset = GaussianBlobsDataset()
    pipeline = Compose([Lambda(lambda item: item, nominal_cpu_seconds=1e-4), ToTensor()])
    loader = DataLoader(dataset, batch_size=64, transform=pipeline, shuffle=True, num_workers=2)
    # One shared loader served by address; each candidate attaches by URI.
    session = repro.serve(loader, address=ADDRESS, epochs=3, start=False)

    learning_rates = [0.5, 0.05, 0.005]
    results: dict = {}
    threads = [
        threading.Thread(
            target=train_candidate,
            args=(f"lr-{rate}", rate, dataset, results),
        )
        for rate in learning_rates
    ]
    for thread in threads:
        thread.start()
    session.start()
    for thread in threads:
        thread.join()
    session.shutdown()

    print("Hyper-parameter sweep over a shared data loader")
    print("------------------------------------------------")
    for name, row in sorted(results.items(), key=lambda kv: -kv[1]["accuracy"]):
        print(f"{name:10s} lr={row['learning_rate']:<7} "
              f"loss={row['final_loss']:<8} accuracy={row['accuracy']}")
    best = max(results.values(), key=lambda row: row["accuracy"])
    print(f"best candidate: lr={best['learning_rate']} (accuracy {best['accuracy']})")
    print(f"data pipeline executed once for {len(learning_rates)} candidates: "
          f"{session.producer.batches_loaded} batches loaded, "
          f"{session.producer.payloads_published} payloads published")


if __name__ == "__main__":
    main()
