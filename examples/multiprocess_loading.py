"""Cross-process shared loading over ``tcp://``: the paper's real deployment.

The paper runs the producer as a long-lived server that training *processes*
reach over ZeroMQ sockets plus OS shared memory.  This example is that
deployment in miniature: the parent process serves a data loader at a
``tcp://`` address (port 0 auto-assigns; the resolved address is read back
from the session), and each trainer is a genuinely separate OS process started
with :mod:`multiprocessing` that attaches by the address string alone.

Only the small pointer envelopes cross the TCP socket; the tensor bytes live
in posix shared memory, mapped zero-copy into every trainer.

Run with::

    python examples/multiprocess_loading.py
"""

import multiprocessing
import time

import repro
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor

EPOCHS = 2
TRAINERS = 2


def build_loader() -> DataLoader:
    """An ordinary data loader, exactly as a non-shared training script would build it."""
    dataset = SyntheticImageDataset(size=256, image_size=32, payload_bytes=256)
    pipeline = Compose([DecodeJpeg(height=32, width=32), Normalize(), ToTensor()])
    return DataLoader(dataset, batch_size=32, transform=pipeline, num_workers=2)


def train(address: str, name: str, results: "multiprocessing.Queue") -> None:
    """A training *process*: attach by address, iterate like a data loader."""
    consumer = repro.attach(
        address, consumer_id=name, max_epochs=EPOCHS, receive_timeout=60
    )
    samples = 0
    checksum = 0.0
    zero_copy = True
    started = time.perf_counter()
    for batch in consumer:
        images = batch["image"]          # view over posix shared memory
        labels = batch["label"]
        samples += len(labels)
        checksum += float(images.numpy().mean())
        zero_copy = zero_copy and images.is_shared
        # ... model forward/backward would go here ...
    elapsed = time.perf_counter() - started
    consumer.close()
    results.put((name, samples, round(samples / elapsed, 1), round(checksum, 4), zero_copy))


def main() -> None:
    # Port 0: the OS assigns a free port, surfaced via the resolved address.
    session = repro.serve(
        build_loader(), address="tcp://127.0.0.1:0", epochs=EPOCHS, start=False
    )
    print(f"serving shared loader at {session.address}")

    results: "multiprocessing.Queue" = multiprocessing.Queue()
    trainers = [
        multiprocessing.Process(
            target=train, args=(session.address, f"trainer-{i}", results)
        )
        for i in range(TRAINERS)
    ]
    for trainer in trainers:
        trainer.start()
    session.start()

    rows = sorted(results.get(timeout=120) for _ in trainers)
    for trainer in trainers:
        trainer.join(timeout=30)
    session.shutdown()

    print("Cross-process shared data loading over tcp://")
    print("---------------------------------------------")
    for name, samples, rate, checksum, zero_copy in rows:
        print(f"{name}: {samples} samples at {rate} samples/s "
              f"(checksum {checksum}, zero-copy {zero_copy})")
    checksums = {row[3] for row in rows}
    print(f"all trainer processes observed identical data: {len(checksums) == 1}")
    print(f"producer loaded each batch once and published "
          f"{session.producer.payloads_published} payloads to {TRAINERS} processes")


if __name__ == "__main__":
    main()
