"""Epoch cache: pay the loading cost once *ever*, not once per epoch.

Two trainers share one loader with an expensive (~2 ms/item) preprocessing
pipeline across three epochs, served with ``cache="all"``.  Epoch 0 runs the
loader and stages every batch in shared memory; epochs 1 and 2 republish the
retained segments — no loading, no decoding, no copies — so their throughput
is bounded only by publish/ack work.  The per-epoch table printed at the end
shows the epoch-2+ speedup, and the cache counters confirm the loader was
never touched again.

Run with::

    python examples/epoch_cache.py
"""

import threading
import time

import repro
from repro.core import ConsumerConfig
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, SleepTransform, ToTensor

ADDRESS = "inproc://epoch-cache"
EPOCHS = 3
BATCH_SIZE = 8
N_ITEMS = 128
SECONDS_PER_ITEM = 0.002  # stands in for heavy decode/augmentation work


def build_loader() -> DataLoader:
    dataset = SyntheticImageDataset(size=N_ITEMS, image_size=32, payload_bytes=256)
    pipeline = SleepTransform(
        Compose([DecodeJpeg(height=32, width=32), Normalize(), ToTensor()]),
        seconds_per_item=SECONDS_PER_ITEM,
    )
    return DataLoader(dataset, batch_size=BATCH_SIZE, transform=pipeline)


def train(session, name: str, stats: dict) -> None:
    """A 'training process' that records its throughput per epoch."""
    consumer = session.consumer(
        ConsumerConfig(consumer_id=name, max_epochs=EPOCHS, receive_timeout=60)
    )
    batches_per_epoch = N_ITEMS // BATCH_SIZE
    rates = {}
    count = 0
    started = time.perf_counter()
    for batch in consumer:
        _ = batch["image"]  # zero-copy shared view; training step goes here
        count += 1
        if count % batches_per_epoch == 0:
            now = time.perf_counter()
            rates[count // batches_per_epoch - 1] = batches_per_epoch / (now - started)
            started = now
    stats[name] = rates
    consumer.close()


def main() -> None:
    session = repro.serve(
        build_loader(), address=ADDRESS, epochs=EPOCHS, cache="all", start=False
    )
    stats: dict = {}
    trainers = [
        threading.Thread(target=train, args=(session, f"trainer-{i}", stats))
        for i in range(2)
    ]
    for trainer in trainers:
        trainer.start()
    time.sleep(0.2)  # let both trainers register before the first batch
    session.start()
    for trainer in trainers:
        trainer.join()

    producer_stats = session.stats()["producer"]
    cache = producer_stats["cache"]
    session.shutdown()

    print("Epoch caching: repeat epochs straight from shared memory")
    print("--------------------------------------------------------")
    print("| trainer | epoch | source | batches/sec |")
    print("|---------|-------|--------|-------------|")
    for name, rates in sorted(stats.items()):
        for epoch, rate in sorted(rates.items()):
            source = "loader" if epoch == 0 else "cache"
            print(f"| {name} | {epoch} | {source} | {rate:10.1f} |")
    epoch0 = min(rates[0] for rates in stats.values())
    cached = min(rates[e] for rates in stats.values() for e in rates if e >= 1)
    print(f"cached-epoch speedup: {cached / epoch0:.1f}x")
    print(
        f"loader ran {producer_stats['batches_loaded']} batches (epoch 0 only); "
        f"cache served {cache['hits']} hits, {cache['misses']} misses, "
        f"{cache['evictions']} evictions"
    )


if __name__ == "__main__":
    main()
