"""Sharded serving: one dataset, three cooperating producers, two trainers.

A single producer tops out at one thread's load/stage bandwidth.  Serving
with ``shards=3`` splits the sample space over three member producers that
load their disjoint shards concurrently behind **one** address — the trainers
still call ``repro.attach(address)`` and iterate one ordered stream covering
the whole dataset every epoch (merged by ``(epoch, batch index, shard)``; add
``interleave="any"`` for arrival-order delivery).

The table printed at the end shows ``session.stats()``'s per-member rows:
each shard loaded roughly a third of the batches, both trainers consumed the
full dataset each epoch, and the shared pool drained to zero.

Run with::

    python examples/sharded_serving.py
"""

import threading
import time

import repro
from repro.core import ConsumerConfig
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, SleepTransform, ToTensor

ADDRESS = "inproc://sharded-serving"
SHARDS = 3
TRAINERS = 2
EPOCHS = 2
BATCH_SIZE = 8
N_ITEMS = 120
SECONDS_PER_ITEM = 0.002  # stands in for heavy decode/augmentation work


def build_loader() -> DataLoader:
    dataset = SyntheticImageDataset(size=N_ITEMS, image_size=32, payload_bytes=256)
    pipeline = SleepTransform(
        Compose([DecodeJpeg(height=32, width=32), Normalize(), ToTensor()]),
        seconds_per_item=SECONDS_PER_ITEM,
    )
    return DataLoader(dataset, batch_size=BATCH_SIZE, transform=pipeline)


def train(session, name: str, results: dict) -> None:
    """A 'training process': attach to the group, count what it sees."""
    consumer = session.consumer(
        ConsumerConfig(consumer_id=name, max_epochs=EPOCHS, receive_timeout=60)
    )
    samples = 0
    started = time.perf_counter()
    for batch in consumer:
        samples += batch["image"].shape[0]  # zero-copy shared view
    elapsed = time.perf_counter() - started
    results[name] = (samples, consumer.batches_consumed, elapsed)
    consumer.close()


def main() -> None:
    session = repro.serve(
        build_loader(), address=ADDRESS, shards=SHARDS, epochs=EPOCHS, start=False
    )
    print(f"serving {N_ITEMS} samples x {EPOCHS} epochs from {SHARDS} shards at {ADDRESS}")

    results: dict = {}
    trainers = [
        threading.Thread(target=train, args=(session, f"trainer-{i}", results))
        for i in range(TRAINERS)
    ]
    for thread in trainers:
        thread.start()
    time.sleep(0.2)  # let both trainers register before the first batch
    session.start()
    for thread in trainers:
        thread.join()

    stats = session.stats()
    print("\n| shard | address | batches loaded | payloads published |")
    print("|---|---|---|---|")
    for row in stats["members"]:
        print(
            f"| {row['shard']} | {row['address'].split('//', 1)[1]} "
            f"| {row['batches_loaded']} | {row['payloads_published']} |"
        )
    aggregate = stats["producer"]
    print(
        f"\ngroup totals: {aggregate['batches_loaded']} batches loaded, "
        f"{aggregate['payloads_published']} payloads published, "
        f"bytes_in_flight={aggregate['bytes_in_flight']}"
    )
    for name, (samples, batches, elapsed) in sorted(results.items()):
        print(
            f"{name}: {samples} samples in {batches} batches "
            f"({samples / elapsed:.0f} samples/sec)"
        )
    expected = N_ITEMS * EPOCHS
    assert all(samples == expected for samples, _, _ in results.values()), results
    session.shutdown()
    print("\nevery trainer saw every sample exactly once per epoch; pool drained.")


if __name__ == "__main__":
    main()
