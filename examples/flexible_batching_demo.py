"""Flexible batch sizing and batch-order variation (paper Sections 3.2.6/3.2.7).

Two consumers request *different* batch sizes from the same producer.  The
producer collates larger producer batches and serves each consumer row-slices
of its requested size, so both traverse the dataset at the same rate.  The
example also prints the slicing plan and its bounded data repetition — the
quantities illustrated by the paper's Figure 5.

Run with::

    python examples/flexible_batching_demo.py
"""

import threading
from collections import Counter

import repro
from repro.core.flexible_batch import FlexibleBatcher, recommend_producer_batch_size
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor

ADDRESS = "inproc://flexible-demo"


def consume(name, batch_size, observations):
    consumer = repro.attach(
        ADDRESS, consumer_id=name, batch_size=batch_size, max_epochs=1
    )
    sizes = Counter()
    rows = 0
    for batch in consumer:
        sizes[batch["image"].shape[0]] += 1
        rows += batch["image"].shape[0]
    observations[name] = {"batch_sizes_seen": dict(sizes), "rows": rows}
    consumer.close()


def main() -> None:
    dataset = SyntheticImageDataset(size=256, image_size=24, payload_bytes=128)
    pipeline = Compose([DecodeJpeg(height=24, width=24), Normalize(), ToTensor()])
    loader = DataLoader(dataset, batch_size=32, transform=pipeline)

    consumer_batches = {"consumer-a": 16, "consumer-b": 24}
    producer_batch = recommend_producer_batch_size(list(consumer_batches.values()))

    print("Flexible batch sizing")
    print("---------------------")
    print(f"consumer batch sizes: {consumer_batches}")
    print(f"recommended producer batch size: {producer_batch}")
    planner = FlexibleBatcher(producer_batch, consumer_batches, use_offsets=True)
    for consumer, share in planner.repetition_report().items():
        plan = planner.plan_for(consumer)
        print(f"  {consumer}: {len(plan.slices)} slices per producer batch, "
              f"repeated share {share:.1%}")

    # Bind the address first (start=False) so both consumers can attach by
    # URI before the producer fixes the batch geometry for the epoch.
    session = repro.serve(
        loader,
        address=ADDRESS,
        epochs=1,
        flexible_batching=True,
        producer_batch_size=producer_batch,
        consumer_offsets=True,
        shuffle_slices=True,
        start=False,
    )
    observations: dict = {}
    threads = [
        threading.Thread(target=consume, args=(name, size, observations))
        for name, size in consumer_batches.items()
    ]
    for thread in threads:
        thread.start()
    session.start()
    for thread in threads:
        thread.join()
    session.shutdown()

    print()
    print("Observed at the consumers")
    print("-------------------------")
    for name, row in sorted(observations.items()):
        print(f"  {name}: batch sizes {row['batch_sizes_seen']}, {row['rows']} rows consumed "
              f"(dataset has {len(dataset)})")


if __name__ == "__main__":
    main()
