"""Multi-tenant broker: one data plane, many datasets, many consumer groups.

One :class:`~repro.broker.DatasetBroker` binds a single address and a single
shared-memory pool, then mounts three named datasets behind it:

* ``imagenet`` — an eagerly mounted loader with a per-tenant memory quota,
* ``audio``   — a sharded group (two member producers, one merged stream),
* ``video``   — a *lazy* dataset: only a loader factory is registered, and
  nothing loads until the first consumer attaches.

Consumers address datasets by name — ``repro.attach("<plane>/imagenet")`` —
and the catalog channel at ``<plane>/catalog`` answers list/describe for
clients that want to discover what is being served.  At the end the broker's
per-tenant accounting shows every dataset drained its shared memory to zero.

Run with::

    python examples/multi_tenant_broker.py
"""

import threading
import time

import repro
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor

ADDRESS = "inproc://tenant-plane"
BATCH_SIZE = 8
N_ITEMS = 64


def make_loader(image_size=16):
    dataset = SyntheticImageDataset(N_ITEMS, image_size=image_size, payload_bytes=32)
    pipeline = Compose([DecodeJpeg(height=image_size, width=image_size),
                        Normalize(), ToTensor()])
    return DataLoader(dataset, batch_size=BATCH_SIZE, transform=pipeline)


def train(dataset_name, label, results):
    consumer = repro.attach(
        f"{ADDRESS}/{dataset_name}", max_epochs=1, receive_timeout=30,
        consumer_id=label,
    )
    results[label] = sum(1 for _ in consumer)
    consumer.close()


def main():
    broker = repro.broker(ADDRESS)
    try:
        # Three tenants, one plane.  Each publish() mounts a full producer
        # session behind the broker's endpoint; the quota scopes how much of
        # the shared pool the tenant may hold in flight at once.
        broker.publish("imagenet", make_loader(), quota_bytes=64 << 20, epochs=1)
        broker.publish("audio", make_loader(), shards=2, epochs=1)
        broker.publish("video", loader_factory=make_loader, epochs=1)

        print(f"plane: {broker.address}")
        for row in broker.list_datasets():
            print(f"  {row['address']:<32} state={row['state']}"
                  + (f" quota={row['quota_bytes'] >> 20}MiB" if row["quota_bytes"] else ""))
        print()

        # The catalog answers describe() for any client that only knows the
        # plane address — this is what repro.attach() uses over tcp://.
        manifest = broker.describe("audio")
        print(f"catalog describe audio: shards={manifest.shards} kind={manifest.kind}")
        print()

        # Two trainers on imagenet, one on audio, one on the lazy video
        # dataset (its loader factory runs on this first attach).
        results = {}
        threads = [
            threading.Thread(target=train, args=("imagenet", "imagenet-a", results)),
            threading.Thread(target=train, args=("imagenet", "imagenet-b", results)),
            threading.Thread(target=train, args=("audio", "audio-a", results)),
            threading.Thread(target=train, args=("video", "video-a", results)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        expected = N_ITEMS // BATCH_SIZE
        print("batches per trainer (expected "
              f"{expected}): {dict(sorted(results.items()))}")
        assert all(count == expected for count in results.values())

        # Late acks are still in flight when the trainer threads join; give
        # the ledger a moment to release the last batches before reading the
        # per-tenant accounting.
        deadline = time.time() + 5
        while broker.pool.bytes_in_flight and time.time() < deadline:
            time.sleep(0.02)

        print()
        print("per-tenant accounting after the epoch:")
        for name, row in sorted(broker.stats()["datasets"].items()):
            print(f"  {name:<10} state={row['state']:<10} "
                  f"bytes_used={row['bytes_used']} consumers={row['consumers']}")
    finally:
        broker.shutdown()
    print("\nall tenants drained; plane shut down cleanly")


if __name__ == "__main__":
    main()
