"""Quickstart: share one data loader between two training consumers.

This is the reproduction of the paper's Figure 3 in runnable form, using the
URI-addressed API: a standard training script's ``DataLoader`` is served at an
address with :func:`repro.serve`, and each training loop becomes a consumer
that attaches by that address alone — no hub or pool objects change hands.

Run with::

    python examples/quickstart.py
"""

import threading
import time

import repro
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor

ADDRESS = "inproc://quickstart"


def build_loader() -> DataLoader:
    """An ordinary data loader, exactly as a non-shared training script would build it."""
    dataset = SyntheticImageDataset(size=512, image_size=32, payload_bytes=256)
    pipeline = Compose([DecodeJpeg(height=32, width=32), Normalize(), ToTensor()])
    return DataLoader(dataset, batch_size=32, transform=pipeline, num_workers=2)


def train(consumer, name: str, stats: dict) -> None:
    """A 'training process': iterate the consumer exactly like a data loader."""
    samples = 0
    checksum = 0.0
    started = time.perf_counter()
    for batch in consumer:
        images = batch["image"]          # Tensor view over shared memory
        labels = batch["label"]
        samples += len(labels)
        checksum += float(images.numpy().mean())
        # ... model forward/backward would go here ...
    elapsed = time.perf_counter() - started
    stats[name] = {
        "samples": samples,
        "samples_per_s": round(samples / elapsed, 1),
        "checksum": round(checksum, 4),
    }
    consumer.close()


def main() -> None:
    # Serve the loader at its address; start=False keeps the producer idle
    # until both trainers have attached, so they see identical epochs.
    session = repro.serve(
        build_loader(), address=ADDRESS, epochs=2, buffer_size=2, start=False
    )
    stats: dict = {}

    trainers = []
    for i in range(2):
        consumer = repro.attach(ADDRESS, consumer_id=f"trainer-{i}", max_epochs=2)
        trainers.append(
            threading.Thread(target=train, args=(consumer, f"trainer-{i}", stats))
        )
    for trainer in trainers:
        trainer.start()
    session.start()
    for trainer in trainers:
        trainer.join()
    session.shutdown()

    print("Shared data loading with TensorSocket")
    print("-------------------------------------")
    for name, row in sorted(stats.items()):
        print(f"{name}: {row['samples']} samples at {row['samples_per_s']} samples/s "
              f"(checksum {row['checksum']})")
    checksums = {row["checksum"] for row in stats.values()}
    print(f"both trainers observed identical data: {len(checksums) == 1}")
    print(f"producer published {session.producer.payloads_published} batches once, "
          f"serving {len(stats)} consumers")


if __name__ == "__main__":
    main()
