"""Quickstart: share one data loader between two training consumers.

This is the reproduction of the paper's Figure 3 in runnable form: a standard
training script's ``DataLoader`` is wrapped in a producer, and the training
loops become consumers that receive zero-copy batch handles.

Run with::

    python examples/quickstart.py
"""

import threading
import time

from repro.core import ConsumerConfig, ProducerConfig, SharedLoaderSession
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor


def build_loader() -> DataLoader:
    """An ordinary data loader, exactly as a non-shared training script would build it."""
    dataset = SyntheticImageDataset(size=512, image_size=32, payload_bytes=256)
    pipeline = Compose([DecodeJpeg(height=32, width=32), Normalize(), ToTensor()])
    return DataLoader(dataset, batch_size=32, transform=pipeline, num_workers=2)


def train(session: SharedLoaderSession, name: str, stats: dict) -> None:
    """A 'training process': iterate the consumer exactly like a data loader."""
    consumer = session.consumer(ConsumerConfig(consumer_id=name, max_epochs=2))
    samples = 0
    checksum = 0.0
    started = time.perf_counter()
    for batch in consumer:
        images = batch["image"]          # Tensor view over shared memory
        labels = batch["label"]
        samples += len(labels)
        checksum += float(images.numpy().mean())
        # ... model forward/backward would go here ...
    elapsed = time.perf_counter() - started
    stats[name] = {
        "samples": samples,
        "samples_per_s": round(samples / elapsed, 1),
        "checksum": round(checksum, 4),
    }
    consumer.close()


def main() -> None:
    session = SharedLoaderSession(
        build_loader(),
        producer_config=ProducerConfig(epochs=2, buffer_size=2),
    )
    stats: dict = {}
    session.start()

    trainers = [
        threading.Thread(target=train, args=(session, f"trainer-{i}", stats)) for i in range(2)
    ]
    for trainer in trainers:
        trainer.start()
    for trainer in trainers:
        trainer.join()
    session.shutdown()

    print("Shared data loading with TensorSocket")
    print("-------------------------------------")
    for name, row in sorted(stats.items()):
        print(f"{name}: {row['samples']} samples at {row['samples_per_s']} samples/s "
              f"(checksum {row['checksum']})")
    checksums = {row["checksum"] for row in stats.values()}
    print(f"both trainers observed identical data: {len(checksums) == 1}")
    print(f"producer published {session.producer.payloads_published} batches once, "
          f"serving {len(stats)} consumers")


if __name__ == "__main__":
    main()
