"""Cloud cost planning with the collocation simulator.

The paper's headline economic claim is that shared data loading lets a small,
cheap cloud instance deliver the training throughput of a much larger one
(Sections 4.3 and 4.5).  This example uses the same simulated hardware and
collocation runner as the benchmark harness to answer a practical question:

    "I want to run a 4-way hyper-parameter sweep of an input-bound model —
     which AWS G5 instance should I rent, and should I share the loader?"

Run with::

    python examples/cloud_cost_planner.py
"""

from repro.experiments.harness import DATASET_BYTES
from repro.hardware.instances import aws_g5_instances
from repro.training import CollocationRunner, SharingStrategy, TrainingWorkload, get_model


def plan(model_name: str = "CLMR", collocation: int = 4) -> None:
    model = get_model(model_name)
    print(f"Planning a {collocation}-way sweep of {model_name} "
          f"({model.cpu_seconds_per_sample * 1e3:.0f} ms CPU per sample)")
    print()
    header = f"{'instance':<12} {'strategy':<13} {'agg samples/s':>14} {'CPU %':>7} " \
             f"{'$/hour':>7} {'samples/$':>12}"
    print(header)
    print("-" * len(header))

    best = None
    for spec in aws_g5_instances():
        for strategy in (SharingStrategy.NONE, SharingStrategy.TENSORSOCKET):
            workloads = [
                TrainingWorkload(model=model, gpu_index=0, name=f"{model.name}-{i}")
                for i in range(collocation)
            ]
            result = CollocationRunner(
                spec,
                strategy=strategy,
                total_loader_workers=spec.vcpus,
                duration_s=90,
                warmup_s=15,
                dataset_bytes=DATASET_BYTES.get(model.dataset, None),
            ).run(workloads)
            samples_per_dollar = result.samples_per_dollar() or 0.0
            print(f"{spec.name:<12} {str(strategy):<13} "
                  f"{result.aggregate_samples_per_second:>14.1f} "
                  f"{result.cpu_utilization_percent:>7.1f} "
                  f"{spec.cost_per_hour:>7.2f} "
                  f"{samples_per_dollar:>12.0f}")
            if best is None or samples_per_dollar > best[2]:
                best = (spec.name, strategy, samples_per_dollar,
                        result.aggregate_samples_per_second)

    print()
    name, strategy, samples_per_dollar, aggregate = best
    print(f"Most cost-efficient choice: {name} with strategy '{strategy}' "
          f"({aggregate:.0f} samples/s, {samples_per_dollar:.0f} samples per dollar)")


if __name__ == "__main__":
    plan()
