"""Sharded-producer-group microbenchmark: N members vs one producer.

The scenario sharding exists for (ROADMAP: sharding as the scale axis after
batching, transports and caching): per-item preprocessing is expensive enough
that a single producer's load path is the bottleneck no matter how deep its
pipeline is.  ``repro.serve(loader, shards=N)`` splits the sample space over
N member producers that load their disjoint shards concurrently, while the
consumer still sees one ordered stream.

The headline measurement asserts the scaling is real: **>= 1.5x batches/sec
at ``shards=4`` vs ``shards=1``** with a >= 2 ms/item transform on
``inproc://``.  (Expected gain is ~3-4x — four members load in parallel — so
1.5x leaves CI headroom.)  A ``tcp://`` variant runs the same group behind
the broker path.

Sizes are deliberately small; the suite doubles as the CI smoke test for a
wedged group merge (CI runs it in TINY mode under ``timeout``).
"""

import os
import threading
import time

import pytest

import repro
from repro.core import ConsumerConfig
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, SleepTransform, ToTensor

#: Tiny-size mode for CI smoke runs (REPRO_BENCH_TINY=1): enough batches to
#: catch a wedged merge, too few for a stable throughput ratio.
TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

SECONDS_PER_ITEM = 0.002  # the issue's "CPU-bound transform" floor
BATCH_SIZE = 4
N_ITEMS = 32 if TINY else 96
N_CONSUMERS = 2


def make_loader():
    dataset = SyntheticImageDataset(N_ITEMS, image_size=16, payload_bytes=32)
    pipeline = SleepTransform(
        Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()]),
        seconds_per_item=SECONDS_PER_ITEM,
    )
    return DataLoader(dataset, batch_size=BATCH_SIZE, transform=pipeline)


def run_epoch(address, shards, *, interleave="index"):
    """One epoch served from ``shards`` members; returns batches/sec."""
    session = repro.serve(
        make_loader(),
        address=address,
        epochs=1,
        poll_interval=0.002,
        shards=shards,
        start=False,
    )
    counts = {}

    def consume(name):
        consumer = session.consumer(
            ConsumerConfig(
                consumer_id=name, max_epochs=1, receive_timeout=30, interleave=interleave
            )
        )
        counts[name] = sum(1 for _ in consumer)
        consumer.close()

    threads = [
        threading.Thread(target=consume, args=(f"bench-{i}",)) for i in range(N_CONSUMERS)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.2)  # let both consumers register before the first batch
    started = time.perf_counter()
    session.start()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - started
    alive = [t for t in threads if t.is_alive()]
    assert not alive, f"consumers wedged at shards={shards}: {alive}"
    # Leak check BEFORE shutdown(): pool.shutdown() zeroes the accounting, so
    # asserting afterwards would be vacuous.
    deadline = time.time() + 5
    while session.pool.bytes_in_flight and time.time() < deadline:
        time.sleep(0.02)
    assert session.pool.bytes_in_flight == 0, "staged batches leaked after join()"
    session.shutdown()
    expected = N_ITEMS // BATCH_SIZE
    assert all(count == expected for count in counts.values()), counts
    return expected / elapsed


@pytest.mark.overlap_ratio
def test_shard_scaling_speedup_inproc(bench_record):
    """shards=4 must beat shards=1 by >= 1.5x on inproc:// (acceptance).

    Marked ``overlap_ratio``: wall-clock sensitive, so CI's main test step
    deselects it and only the TINY smoke step (which skips the ratio
    assertion) runs it on shared runners.
    """
    single = run_epoch("inproc://bench-shards-1", 1)
    sharded = max(
        run_epoch(f"inproc://bench-shards-4-{attempt}", 4) for attempt in range(2)
    )
    ratio = sharded / single
    bench_record(
        shards_1_batches_per_sec=single,
        shards_4_batches_per_sec=sharded,
        ratio=ratio,
    )
    print(
        f"\n| shards | batches/sec |\n|---|---|\n"
        f"| 1 (single producer) | {single:.1f} |\n"
        f"| 4 (producer group)  | {sharded:.1f} |\n"
        f"ratio: {ratio:.2f}x"
    )
    if TINY:
        # Tiny smoke mode checks liveness + leak-freedom, not the ratio.
        assert ratio > 0
    else:
        assert ratio >= 1.5, (
            f"sharded group only {ratio:.2f}x single producer "
            f"({sharded:.1f} vs {single:.1f} batches/sec)"
        )


@pytest.mark.overlap_ratio
def test_shard_scaling_any_interleave(bench_record):
    """Arrival-order delivery removes head-of-line blocking; it must be at
    least as live as the in-order merge (throughput printed, not ratio-
    asserted against it — both are dominated by the shard load path)."""
    throughput = run_epoch("inproc://bench-shards-any", 4, interleave="any")
    bench_record(batches_per_sec=throughput, shards=4, interleave="any")
    print(f"\ninterleave='any' (4 shards): {throughput:.1f} batches/sec")
    assert throughput > 0


def test_shard_scaling_tcp(bench_record):
    """The sharded group behind the tcp:// broker: same delivery guarantees
    (every batch once per consumer, pool drained); throughput printed, not
    asserted (loopback jitter)."""
    throughput = run_epoch("tcp://127.0.0.1:0", 4)
    bench_record(batches_per_sec=throughput, shards=4, transport="tcp")
    print(f"\ntcp:// sharded (4 members): {throughput:.1f} batches/sec")
    assert throughput > 0
