"""Broker fan-out benchmark: N datasets x M consumers through one plane.

The scenario the multi-tenant broker exists for (ISSUE: one data plane, many
datasets, many consumer groups): a node hosts several tenants' datasets and
each tenant runs its own consumers.  Without the broker every dataset needs
its own ``repro.serve()`` call — its own endpoint, its own shared-memory pool,
its own accounting.  With the broker all datasets mount behind one address and
one pool, consumers attach by name, and per-tenant quotas keep one dataset
from starving the rest.

The measurement: ``N_DATASETS`` datasets, each drained by ``N_CONSUMERS``
consumers, once through a single :class:`~repro.broker.DatasetBroker` and once
through separate ``repro.serve()`` sessions.  The acceptance criterion is that
sharing the plane is not a per-dataset regression: **broker aggregate
throughput >= 0.5x the separate-sessions aggregate** (they do the same work on
the same cores; measured locally the ratio is ~1.0, and 0.5 leaves CI
headroom).  Both paths must drain their pools to zero — the broker run checks
this per tenant, which is exactly the accounting ``serve()`` cannot give you.

``REPRO_BENCH_TINY=1`` switches to a smoke run that checks liveness and
leak-freedom only (CI runs it under ``timeout``).
"""

import os
import threading
import time

import pytest

import repro
from repro.core import ConsumerConfig
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, SleepTransform, ToTensor

#: Tiny-size mode for CI smoke runs (REPRO_BENCH_TINY=1): enough batches to
#: catch a wedged mount, too few for a stable throughput ratio.
TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

SECONDS_PER_ITEM = 0.002  # keep the load path CPU-bound, as in the paper
BATCH_SIZE = 4
N_ITEMS = 16 if TINY else 48
N_DATASETS = 2
N_CONSUMERS = 2


def make_loader():
    dataset = SyntheticImageDataset(N_ITEMS, image_size=16, payload_bytes=32)
    pipeline = SleepTransform(
        Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()]),
        seconds_per_item=SECONDS_PER_ITEM,
    )
    return DataLoader(dataset, batch_size=BATCH_SIZE, transform=pipeline)


def drain_all(attach, names):
    """Drain every (dataset, consumer) pair concurrently; returns batches/sec
    aggregated across all datasets.

    ``attach(name, consumer_config)`` must hand back a started consumer for
    the named dataset; the wall clock covers first attach to last join, the
    same window the separate-sessions baseline pays.
    """
    counts = {}

    def consume(name, index):
        consumer = attach(
            name,
            ConsumerConfig(
                consumer_id=f"{name}-c{index}", max_epochs=1, receive_timeout=30
            ),
        )
        counts[(name, index)] = sum(1 for _ in consumer)
        consumer.close()

    threads = [
        threading.Thread(target=consume, args=(name, index))
        for name in names
        for index in range(N_CONSUMERS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - started
    alive = [t for t in threads if t.is_alive()]
    assert not alive, f"consumers wedged: {alive}"
    expected = N_ITEMS // BATCH_SIZE
    assert all(count == expected for count in counts.values()), counts
    return expected * len(names) / elapsed


def run_broker_plane(names):
    """All datasets behind one broker; returns aggregate batches/sec."""
    broker = repro.broker("inproc://bench-fanout-broker")
    try:
        for name in names:
            broker.publish(name, make_loader(), epochs=1, poll_interval=0.002)
        throughput = drain_all(broker.attach_dataset, names)
        # Per-tenant drain check BEFORE shutdown(): shutdown zeroes the
        # accounting, so asserting afterwards would be vacuous.
        deadline = time.time() + 5
        while broker.pool.bytes_in_flight and time.time() < deadline:
            time.sleep(0.02)
        rows = broker.stats()["datasets"]
        residue = {n: row["bytes_used"] for n, row in rows.items() if row["bytes_used"]}
        assert not residue, f"tenants leaked shared memory: {residue}"
        assert broker.pool.bytes_in_flight == 0, "broker pool leaked"
    finally:
        broker.shutdown()
    return throughput


def run_separate_sessions(names):
    """One serve() call per dataset; returns aggregate batches/sec."""
    sessions = {
        name: repro.serve(
            make_loader(),
            address=f"inproc://bench-fanout-solo-{name}",
            epochs=1,
            poll_interval=0.002,
        )
        for name in names
    }
    try:
        throughput = drain_all(
            lambda name, config: sessions[name].consumer(config), names
        )
        for name, session in sessions.items():
            deadline = time.time() + 5
            while session.pool.bytes_in_flight and time.time() < deadline:
                time.sleep(0.02)
            assert session.pool.bytes_in_flight == 0, f"{name} leaked"
    finally:
        for session in sessions.values():
            session.shutdown()
    return throughput


@pytest.mark.overlap_ratio
def test_broker_fanout_vs_separate_sessions(bench_record):
    """Sharing one plane must not be a per-dataset regression (>= 0.5x).

    Marked ``overlap_ratio``: wall-clock sensitive, so CI's main test step
    deselects it and only the TINY smoke step (which skips the ratio
    assertion) runs it on shared runners.
    """
    names = [f"tenant{i}" for i in range(N_DATASETS)]
    separate = run_separate_sessions(names)
    brokered = max(run_broker_plane(names) for _attempt in range(2))
    ratio = brokered / separate
    bench_record(
        datasets=N_DATASETS,
        consumers_per_dataset=N_CONSUMERS,
        broker_batches_per_sec=brokered,
        separate_batches_per_sec=separate,
        ratio=ratio,
    )
    print(
        f"\n| plane | aggregate batches/sec |\n|---|---|\n"
        f"| {N_DATASETS} separate serve() sessions | {separate:.1f} |\n"
        f"| one broker, {N_DATASETS} datasets     | {brokered:.1f} |\n"
        f"ratio: {ratio:.2f}x"
    )
    if TINY:
        # Tiny smoke mode checks liveness + leak-freedom, not the ratio.
        assert ratio > 0
    else:
        assert ratio >= 0.5, (
            f"brokered plane only {ratio:.2f}x separate sessions "
            f"({brokered:.1f} vs {separate:.1f} batches/sec)"
        )


def test_broker_fanout_smoke(bench_record):
    """Liveness + leak-freedom of the brokered plane alone (runs in the main
    CI test step; no wall-clock comparison)."""
    names = [f"smoke{i}" for i in range(N_DATASETS)]
    throughput = run_broker_plane(names)
    bench_record(
        name="broker_fanout_smoke",
        datasets=N_DATASETS,
        consumers_per_dataset=N_CONSUMERS,
        broker_batches_per_sec=throughput,
    )
    print(f"\nbroker fan-out ({N_DATASETS} datasets x {N_CONSUMERS} consumers): "
          f"{throughput:.1f} batches/sec aggregate")
    assert throughput > 0
