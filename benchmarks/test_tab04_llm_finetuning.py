"""Table 4: Qwen2.5-0.5B fine-tuning traffic and memory."""

from repro.experiments import run_table4


def test_tab04_llm_finetuning(experiment):
    result = experiment(run_table4)
    baseline = result.row_where(mode="baseline", gpu=0)["tokens_per_s"]
    shared = result.row_where(mode="shared", role="consumer", gpu=1)["tokens_per_s"]
    assert abs(shared - baseline) / baseline < 0.05
