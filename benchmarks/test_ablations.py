"""Ablation benches for the design choices called out in DESIGN.md."""

from repro.experiments import (
    run_ablation_buffer_size,
    run_ablation_delivery_mode,
    run_ablation_gpu_sharing,
    run_ablation_producer_batch,
    run_ablation_rubberband,
)


def test_ablation_buffer_size(experiment):
    result = experiment(run_ablation_buffer_size)
    by_size = {row["buffer_size"]: row["aggregate_samples_per_s"] for row in result.rows}
    assert by_size[2] >= 0.95 * max(by_size.values())


def test_ablation_gpu_sharing(experiment):
    result = experiment(run_ablation_gpu_sharing)
    assert (
        result.row_where(sharing_mode="mps")["aggregate_samples_per_s"]
        >= result.row_where(sharing_mode="multi_stream")["aggregate_samples_per_s"]
    )


def test_ablation_delivery_mode(experiment):
    result = experiment(run_ablation_delivery_mode)
    assert all(row["reduction_factor"] > 1000 for row in result.rows)


def test_ablation_producer_batch(experiment):
    result = experiment(run_ablation_producer_batch)
    assert all(row["bound_holds"] for row in result.rows)


def test_ablation_rubberband(experiment):
    result = experiment(run_ablation_rubberband)
    assert result.row_where(window_fraction=0.02, join_after_batches=5)[
        "batches_until_training_starts"
    ] == 0
