"""Micro-benchmarks of the real (non-simulated) library primitives.

These measure the mechanisms Section 3.2.4 relies on: packing a batch into a
pointer payload, rebuilding tensors from handles, and pushing batches through
the in-process producer/consumer protocol end to end.
"""

import numpy as np

import repro
from repro.core import ConsumerConfig
from repro.core.consumer import TensorConsumer
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, ToTensor
from repro.tensor import BatchPayload, SharedMemoryPool, from_numpy


def test_payload_pack_unpack_throughput(benchmark, bench_record):
    pool = SharedMemoryPool()
    images = pool.share_tensor(from_numpy(np.zeros((128, 3, 64, 64), dtype=np.float32)))
    labels = pool.share_tensor(from_numpy(np.zeros(128, dtype=np.int64)))

    def pack_and_unpack():
        payload = BatchPayload.pack({"inputs": images, "targets": labels}, batch_index=0, epoch=0)
        return payload.unpack(pool)

    result = benchmark(pack_and_unpack)
    assert result["inputs"].shares_memory_with(images)
    mean = benchmark.stats.stats.mean
    bench_record(mean_seconds=mean, roundtrips_per_sec=1.0 / mean)
    pool.shutdown()


def test_shared_loader_end_to_end_throughput(benchmark, bench_record):
    """One epoch through serve() + attach() on the inproc:// transport."""

    def one_epoch():
        dataset = SyntheticImageDataset(64, image_size=16, payload_bytes=32)
        pipeline = Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()])
        loader = DataLoader(dataset, batch_size=16, transform=pipeline)
        session = repro.serve(
            loader, address="inproc://microbench", epochs=1, poll_interval=0.002
        )
        consumer = repro.attach(
            "inproc://microbench", max_epochs=1, receive_timeout=20
        )
        batches = sum(1 for _ in consumer)
        consumer.close()
        session.shutdown()
        return batches

    batches = benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    mean = benchmark.stats.stats.mean
    bench_record(mean_epoch_seconds=mean, batches_per_sec=batches / mean, transport="inproc")
    assert batches == 4


def test_shared_loader_tcp_end_to_end_throughput(benchmark, bench_record):
    """The same epoch over the tcp:// transport, for comparison with the
    inproc:// number above: envelopes cross a real loopback socket through the
    broker while tensor bytes stay in posix shared memory.

    The consumer is built directly (not via ``repro.attach``) so it dials the
    broker instead of taking the same-process session shortcut.
    """

    def one_epoch():
        dataset = SyntheticImageDataset(64, image_size=16, payload_bytes=32)
        pipeline = Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()])
        loader = DataLoader(dataset, batch_size=16, transform=pipeline)
        session = repro.serve(
            loader, address="tcp://127.0.0.1:0", epochs=1, poll_interval=0.002,
            start=False,
        )
        consumer = TensorConsumer(
            address=session.address,
            config=ConsumerConfig(max_epochs=1, receive_timeout=20),
        )
        session.start()
        batches = sum(1 for _ in consumer)
        consumer.close()
        session.shutdown()
        return batches

    batches = benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    mean = benchmark.stats.stats.mean
    bench_record(mean_epoch_seconds=mean, batches_per_sec=batches / mean, transport="tcp")
    assert batches == 4
