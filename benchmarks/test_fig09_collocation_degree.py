"""Figure 9: throughput vs. collocation degree for MobileNet S and L."""

from repro.experiments import run_figure9


def test_fig09_collocation_degree(experiment):
    result = experiment(run_figure9)
    small = [r for r in result.rows if r["model"] == "MobileNet S"]
    assert small[-1]["shared_samples_per_s"] > 1.5 * small[-1]["non_shared_samples_per_s"]
