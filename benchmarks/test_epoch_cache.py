"""Epoch-cache benchmark: repeat epochs served straight from shared memory.

The scenario the cache exists for: per-item preprocessing is expensive
(>= 2 ms/item — decode + augment territory), trainers run several epochs, and
the data fits the cache budget.  Epoch 0 pays the full load+decode+transform
cost once; with ``cache="all"`` every later epoch republishes the staged
segments — no loader, no stage worker, no copy — so its throughput is bounded
by publish/ack work alone.

Headline assertion (the issue's acceptance criterion): **>= 2x batches/sec on
cached epochs (epoch >= 2, i.e. the second pass onward) vs epoch 0** with a
>= 2 ms/item transform.  Measured locally the gap is typically 10-50x; 2x
leaves CI headroom.  ``REPRO_BENCH_TINY=1`` switches to a smoke run that
checks liveness and leak-freedom only (CI runs it under ``timeout``).

Every run also asserts the memory contract: ``bytes_in_flight == 0`` once
consumers finish, and both ``bytes_in_flight`` and ``cached_bytes`` are zero
after ``session.shutdown()`` — including the early-exit paths (mid-epoch
stop, skip-epoch, consumer churn).
"""

import os
import threading
import time

import pytest

import repro
from repro.core import ConsumerConfig
from repro.core.consumer import TensorConsumer
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, SleepTransform, ToTensor
from repro.experiments.harness import measure_epoch_throughput

#: Tiny-size mode for CI smoke runs (REPRO_BENCH_TINY=1): enough batches to
#: catch a wedged cache path, too few for a stable throughput ratio.
TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

SECONDS_PER_ITEM = 0.002  # the issue's "expensive transform" floor
BATCH_SIZE = 4
N_ITEMS = 24 if TINY else 64
EPOCHS = 3
N_CONSUMERS = 2


def make_loader(n_items=N_ITEMS):
    dataset = SyntheticImageDataset(n_items, image_size=16, payload_bytes=32)
    pipeline = SleepTransform(
        Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()]),
        seconds_per_item=SECONDS_PER_ITEM,
    )
    return DataLoader(dataset, batch_size=BATCH_SIZE, transform=pipeline)


def assert_session_drained(session, timeout=5.0):
    """Both pool buckets at zero BEFORE shutdown() zeroes the accounting.

    ``bytes_in_flight`` must drain once the last ack lands; ``cached_bytes``
    drains when the producer loop's join() clears the cache."""
    deadline = time.time() + timeout
    pool = session.pool
    while (pool.bytes_in_flight or pool.cached_bytes) and time.time() < deadline:
        time.sleep(0.02)
    assert pool.bytes_in_flight == 0, "staged batches leaked"
    assert pool.cached_bytes == 0, "cache holds leaked"


def run_epochs(address, *, cache=None, epochs=EPOCHS):
    """Run ``epochs`` epochs; returns per-epoch batches/sec seen by consumer 0."""
    serve_kwargs = dict(
        epochs=epochs,
        poll_interval=0.002,
        pipeline_depth=4,
        pipeline_workers=4,
        start=False,
    )
    if cache is not None:
        serve_kwargs["cache"] = cache
    session = repro.serve(make_loader(), address=address, **serve_kwargs)
    expected = N_ITEMS // BATCH_SIZE
    epoch_times, counts = measure_epoch_throughput(
        session, epochs=epochs, batches_per_epoch=expected, consumers=N_CONSUMERS
    )
    assert all(count == expected * epochs for count in counts.values()), counts
    stats = session.stats()["producer"]
    assert_session_drained(session)
    session.shutdown()
    assert session.pool.bytes_in_flight == 0 and session.pool.cached_bytes == 0
    return epoch_times, stats


@pytest.mark.overlap_ratio
def test_cached_epochs_at_least_2x_epoch0(bench_record):
    """Epoch >= 2 (the cached passes) must beat epoch 0 by >= 2x (criterion).

    Marked ``overlap_ratio``: wall-clock sensitive, so CI's main test step
    deselects it and only the TINY smoke step (which skips the ratio
    assertion) runs it on shared runners.
    """
    epoch_times, stats = run_epochs("inproc://bench-epoch-cache", cache="all")
    epoch0 = epoch_times[0]
    cached = min(epoch_times[e] for e in range(1, EPOCHS))
    ratio = cached / epoch0
    bench_record(
        epoch0_batches_per_sec=epoch0,
        cached_batches_per_sec=cached,
        ratio=ratio,
        per_epoch={str(e): epoch_times[e] for e in sorted(epoch_times)},
    )
    rows = "\n".join(
        f"| {e} | {'loader' if e == 0 else 'cache'} | {epoch_times[e]:.1f} |"
        for e in sorted(epoch_times)
    )
    print(f"\n| epoch | source | batches/sec |\n|---|---|---|\n{rows}\nratio: {ratio:.1f}x")
    assert stats["batches_loaded"] == N_ITEMS // BATCH_SIZE  # epoch 0 only
    assert stats["cache"]["hits"] == (EPOCHS - 1) * (N_ITEMS // BATCH_SIZE)
    if TINY:
        assert ratio > 0  # liveness + leak-freedom only
    else:
        assert ratio >= 2.0, (
            f"cached epochs only {ratio:.2f}x epoch 0 "
            f"({cached:.1f} vs {epoch0:.1f} batches/sec)"
        )


def test_epoch_cache_tcp_with_late_attacher():
    """The cache behind the tcp:// broker: cached segments are republished by
    *name*, so a process (here: endpoint-connected consumer) that attaches
    after epoch 0 maps them zero-copy without the producer reloading.

    The producer runs open-ended (``epochs=None``) so the late attach cannot
    race the end of the run: it pauses waiting for consumers between the
    anchor leaving and the late joiner arriving, then serves the late
    joiner's whole epoch from cache."""
    session = repro.serve(
        make_loader(),
        address="tcp://127.0.0.1:0",
        epochs=None,
        cache="all",
        poll_interval=0.002,
        start=False,
    )
    expected = N_ITEMS // BATCH_SIZE
    results = {}

    def consume(name, max_epochs):
        consumer = TensorConsumer(
            address=session.address,
            config=ConsumerConfig(consumer_id=name, max_epochs=max_epochs, receive_timeout=60),
        )
        results[name] = [tuple(batch["index"].tolist()) for batch in consumer]
        consumer.close()

    anchor = threading.Thread(target=consume, args=("anchor", EPOCHS))
    anchor.start()
    time.sleep(0.2)
    session.start()
    # Wait until epoch 0 is fully loaded and cached, then attach late: the
    # late consumer is admitted at an epoch boundary and everything it
    # receives is served from cache.
    deadline = time.time() + 120
    while session.producer.epochs_completed < 1 and time.time() < deadline:
        time.sleep(0.02)
    assert session.producer.epochs_completed >= 1
    late = threading.Thread(target=consume, args=("late", 1))
    late.start()
    anchor.join(timeout=180)
    late.join(timeout=180)
    assert not anchor.is_alive() and not late.is_alive()
    session.producer.stop()
    assert len(results["anchor"]) == expected * EPOCHS
    # Replayed epochs carry identical data, and the late joiner's full epoch
    # matches an anchor epoch batch-for-batch.
    assert results["anchor"][:expected] == results["anchor"][expected : 2 * expected]
    assert len(results["late"]) == expected
    assert results["late"] == results["anchor"][:expected]
    stats = session.stats()["producer"]
    assert stats["cache"]["hits"] > 0
    # stop() makes the open-ended producer loop exit; its join() then clears
    # the cache, so both buckets must reach zero before pool.shutdown().
    assert_session_drained(session)
    session.shutdown()
    assert session.pool.bytes_in_flight == 0 and session.pool.cached_bytes == 0


# ---------------------------------------------------------------------------
# Early-exit paths: every one must drain cache holds to zero
# ---------------------------------------------------------------------------


def test_early_exit_stop_drains_cache():
    session = repro.serve(
        make_loader(),
        address="inproc://bench-cache-stop",
        epochs=None,
        cache="all",
        pipeline_depth=4,
        start=False,
    )
    seen = []

    def consume():
        consumer = session.consumer(
            ConsumerConfig(consumer_id="stopper", receive_timeout=60)
        )
        for batch in consumer:
            seen.append(batch)
            if len(seen) >= 3:
                break
        consumer.close()

    thread = threading.Thread(target=consume)
    thread.start()
    time.sleep(0.2)
    session.start()
    thread.join(timeout=120)
    assert not thread.is_alive()
    assert session.pool.cached_bytes > 0  # the cache really was filling
    session.producer.stop()
    session.shutdown()
    assert session.pool.bytes_in_flight == 0
    assert session.pool.cached_bytes == 0
    assert session.pool.live_segments == 0


def test_early_exit_churn_drains_cache():
    """Consumers that leave mid-run never strand cache or in-flight holds."""
    session = repro.serve(
        make_loader(),
        address="inproc://bench-cache-churn",
        epochs=2,
        cache="all",
        start=False,
    )
    expected = N_ITEMS // BATCH_SIZE

    def quitter():
        consumer = session.consumer(
            ConsumerConfig(consumer_id="quitter", max_epochs=2, receive_timeout=60)
        )
        for i, _ in enumerate(consumer):
            if i >= 2:
                break
        consumer.close()

    def stayer():
        consumer = session.consumer(
            ConsumerConfig(consumer_id="stayer", max_epochs=2, receive_timeout=60)
        )
        count = sum(1 for _ in consumer)
        consumer.close()
        assert count == expected * 2

    threads = [threading.Thread(target=quitter), threading.Thread(target=stayer)]
    for thread in threads:
        thread.start()
    time.sleep(0.2)
    session.start()
    for thread in threads:
        thread.join(timeout=180)
    assert not any(t.is_alive() for t in threads)
    assert_session_drained(session)
    session.shutdown()
    assert session.pool.bytes_in_flight == 0 and session.pool.cached_bytes == 0


def test_early_exit_skip_epoch_drains_cache():
    """Everyone leaves mid-epoch while a newcomer waits for the next one: the
    abandoned epoch's staged/cached holds must all come back."""
    session = repro.serve(
        make_loader(),
        address="inproc://bench-cache-skip",
        epochs=2,
        cache="all",
        pipeline_depth=2,
        rubberband_fraction=0.0,  # newcomers always park for the next epoch
        start=False,
    )

    def early():
        consumer = session.consumer(
            ConsumerConfig(consumer_id="early", max_epochs=2, receive_timeout=60)
        )
        for i, _ in enumerate(consumer):
            if i >= 1:
                break
        consumer.close()

    early_thread = threading.Thread(target=early)
    early_thread.start()
    time.sleep(0.2)
    session.start()
    early_thread.join(timeout=120)
    assert not early_thread.is_alive()

    late_counts = []

    def late():
        consumer = session.consumer(
            ConsumerConfig(consumer_id="late", max_epochs=1, receive_timeout=60)
        )
        late_counts.append(sum(1 for _ in consumer))
        consumer.close()

    late_thread = threading.Thread(target=late)
    late_thread.start()
    late_thread.join(timeout=180)
    assert not late_thread.is_alive()
    assert late_counts and late_counts[0] == N_ITEMS // BATCH_SIZE
    assert_session_drained(session)
    session.shutdown()
    assert session.pool.bytes_in_flight == 0 and session.pool.cached_bytes == 0
