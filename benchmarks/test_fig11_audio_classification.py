"""Figure 11: CLMR audio classification on AWS G5 instances."""

from repro.experiments import run_figure11
from repro.experiments.audio_classification import cost_saving_summary


def test_fig11_audio_classification(experiment):
    result = experiment(run_figure11)
    summary = cost_saving_summary(result)
    print(f"\ncost saving summary: {summary}")
    assert summary["cost_saving_percent"] > 40
