"""Slab-allocator benchmark: segment reuse kills steady-state mmap churn.

Seed behavior (PR <= 9): every tensor of every batch paid a fresh
``shm_open`` + ``ftruncate`` + ``mmap`` and a later ``unlink``, with uuid
names guaranteeing the consumer's attach cache missed on each delivery.  The
slab allocator recycles freed segments through size-class free lists (same
name, bumped generation) and packs each batch into one segment, so after a
warm-up pass the hot path allocates nothing.

Two measurements:

* **Allocation microbench** — the same publish/release traffic against a
  slab pool (``share_batch`` + default free lists) and a seed-shaped pool
  (``free_list_max_bytes=0`` restores eager unlink, per-tensor
  ``share_tensor`` restores one segment per tensor).  Headline assertion:
  the seed regime creates **>= 5x more segments** for identical traffic, and
  the slab's steady state (after batch 0) creates **zero** new segments.
* **End-to-end session** — a short multi-epoch serve: once the free list is
  warm, ``repro.pool.segment_reuse_hits`` covers the remaining batches and
  ``segments_created`` stays near the in-flight window, far under one per
  batch.  ``bytes_in_flight`` AND ``free_bytes`` drain to zero on shutdown.

``REPRO_BENCH_TINY=1`` shrinks sizes and skips the wall-clock ratio
assertion (CI runs the smoke under ``timeout``); the creation-count
assertions are deterministic and always on.
"""

import os
import time

import numpy as np
import pytest

import repro
from repro.core import ConsumerConfig
from repro.tensor import SharedMemoryPool, from_numpy

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

N_BATCHES = 40 if TINY else 200
TENSOR_SHAPE = (16, 32) if TINY else (64, 128)  # float32 inputs
N_ITEMS = 24 if TINY else 48
BATCH_SIZE = 4
EPOCHS = 3


def _batch():
    return {
        "inputs": from_numpy(np.ones(TENSOR_SHAPE, dtype=np.float32)),
        "targets": from_numpy(np.zeros(TENSOR_SHAPE[0], dtype=np.int64)),
    }


def _drive(pool, *, slab: bool, batches: int) -> float:
    """Publish/ack ``batches`` batches; returns wall seconds."""
    started = time.perf_counter()
    for _ in range(batches):
        if slab:
            staged = pool.share_batch(_batch())
            for name in {t.segment.name for t in staged.values()}:
                pool.release(name)
        else:
            staged = {k: pool.share_tensor(t) for k, t in _batch().items()}
            for tensor in staged.values():
                pool.release(tensor.segment.name)
    return time.perf_counter() - started


@pytest.mark.overlap_ratio
def test_slab_vs_seed_allocation(bench_record):
    """>= 5x fewer segment creations than the seed regime (criterion).

    Marked ``overlap_ratio``: the wall-clock ratio is load sensitive, so the
    main CI step deselects this test and only the TINY smoke step (which
    skips that one assertion) runs it on shared runners.  The creation-count
    assertions hold at any speed and run in both modes.
    """
    seed_pool = SharedMemoryPool(free_list_max_bytes=0, name_prefix="seed")
    slab_pool = SharedMemoryPool(name_prefix="slab")
    try:
        # Warm both pools with one batch so the timed region is steady state.
        _drive(seed_pool, slab=False, batches=1)
        _drive(slab_pool, slab=True, batches=1)
        warm_creations = slab_pool.segments_created
        seed_seconds = _drive(seed_pool, slab=False, batches=N_BATCHES)
        slab_seconds = _drive(slab_pool, slab=True, batches=N_BATCHES)
        seed_creations = seed_pool.segments_created
        slab_creations = slab_pool.segments_created
        ratio = seed_seconds / slab_seconds if slab_seconds else float("inf")
        bench_record(
            name="segment_reuse",
            batches=N_BATCHES,
            seed_segments_created=seed_creations,
            slab_segments_created=slab_creations,
            creation_ratio=seed_creations / max(slab_creations, 1),
            slab_reuse_hits=slab_pool.segment_reuse_hits,
            slab_mmap_total=slab_pool.mmap_total,
            seed_mmap_total=seed_pool.mmap_total,
            seed_seconds=seed_seconds,
            slab_seconds=slab_seconds,
            wall_ratio=ratio,
        )
        print(
            f"\n| regime | segments created | mmap ops | seconds |\n|---|---|---|---|\n"
            f"| seed (fresh per tensor) | {seed_creations} | "
            f"{seed_pool.mmap_total} | {seed_seconds:.3f} |\n"
            f"| slab (reuse + batch packing) | {slab_creations} | "
            f"{slab_pool.mmap_total} | {slab_seconds:.3f} |\n"
            f"creation ratio: {seed_creations / max(slab_creations, 1):.0f}x, "
            f"wall ratio: {ratio:.2f}x"
        )
        # Steady state allocates nothing: the warm-up batch created the one
        # segment the whole run recycles.
        assert slab_creations == warm_creations, "slab created segments after warm-up"
        assert slab_pool.segment_reuse_hits >= N_BATCHES
        # Seed behavior pays one creation per tensor per batch: 2x per batch.
        assert seed_creations == 2 * (N_BATCHES + 1)
        assert seed_creations >= 5 * slab_creations
        if not TINY:
            assert ratio >= 1.0, (
                f"slab allocation slower than seed regime ({ratio:.2f}x)"
            )
    finally:
        seed_pool.shutdown()
        slab_pool.shutdown()
    assert seed_pool.free_bytes == 0 and slab_pool.free_bytes == 0


def test_end_to_end_session_reuses_segments(bench_record):
    """A multi-epoch serve stops creating segments once the list is warm."""

    class IndexDataset:
        def __len__(self):
            return N_ITEMS

        def __getitem__(self, index):
            return {"index": np.array([index], dtype=np.int64)}

    from repro.data import DataLoader

    session = repro.serve(
        DataLoader(IndexDataset(), batch_size=BATCH_SIZE),
        address="inproc://bench-segment-reuse",
        epochs=EPOCHS,
        start=False,
    )
    import threading

    counts = []

    def consume():
        consumer = session.consumer(
            ConsumerConfig(consumer_id="bench", max_epochs=EPOCHS, receive_timeout=60)
        )
        counts.append(sum(1 for _ in consumer))
        consumer.close()

    thread = threading.Thread(target=consume)
    thread.start()
    time.sleep(0.1)
    session.start()
    thread.join(timeout=120)
    assert not thread.is_alive()
    batches = (N_ITEMS // BATCH_SIZE) * EPOCHS
    assert counts and counts[0] == batches
    created = session.pool.segments_created
    reuse_hits = session.pool.segment_reuse_hits
    bench_record(
        name="segment_reuse_session",
        session_batches=batches,
        session_segments_created=created,
        session_reuse_hits=reuse_hits,
        session_mmap_total=session.pool.mmap_total,
    )
    # Every batch needed a segment; reuse covered all but the warm-up ones.
    assert created + reuse_hits >= batches
    assert reuse_hits > 0
    assert created < batches, (
        f"created {created} segments for {batches} batches: free list never warmed"
    )
    # The drain contract, free list included (stop path).
    session.shutdown()
    assert session.pool.bytes_in_flight == 0
    assert session.pool.cached_bytes == 0
    assert session.pool.free_bytes == 0
