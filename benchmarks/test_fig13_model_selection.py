"""Figure 13: mixed workload (RegNetX 2 + RegNetX 4) on AWS G5 instances."""

from repro.experiments import run_figure13


def test_fig13_model_selection(experiment):
    result = experiment(run_figure13)
    shared_small = result.row_where(instance="g5.2xlarge", strategy="tensorsocket")
    nonshared_large = result.row_where(instance="g5.8xlarge", strategy="none")
    assert shared_small["aggregate_samples_per_s"] > 0.9 * nonshared_large["aggregate_samples_per_s"]
