"""Figure 15: Joader vs. TensorSocket vs. baseline on the H100 server."""

from repro.experiments import run_figure15


def test_fig15_joader_comparison(experiment):
    result = experiment(run_figure15)
    for row in result.rows:
        if row["collocation_degree"] > 1:
            assert (
                row["baseline_samples_per_s"]
                < row["joader_samples_per_s"]
                < row["tensorsocket_samples_per_s"]
            )
