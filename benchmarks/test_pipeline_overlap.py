"""Producer-pipeline overlap microbenchmark: slow transform x fast consumers.

The scenario the overlapped pipeline exists for (ROADMAP: async + batching as
the next scaling lever): per-item preprocessing is expensive, consumers train
faster than the loader loads.  Strictly sequential (``pipeline_depth=1``) the
producer alternates between loading and delivering, so consumers stall on
every batch; with ``pipeline_depth > 1`` loading and staging run behind a
bounded window and the publish loop stays busy.

The headline measurement asserts the overlap is real: **>= 1.3x batches/sec at
``pipeline_depth=4`` vs ``pipeline_depth=1``** with a >= 2 ms/item transform
and two fast consumers on ``inproc://``.  (Expected gain is ~2-3x — the slow
transform parallelizes across the pipeline's loader workers — so 1.3x leaves
CI headroom.)  A ``tcp://`` variant measures the same pipeline across the
broker path.

Sizes are deliberately small; the suite doubles as the CI smoke test for a
wedged pipeline (CI runs it under ``timeout``).
"""

import os
import time

import pytest

import repro
from repro.core import ConsumerConfig, ProducerConfig
from repro.core.consumer import TensorConsumer
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, SleepTransform, ToTensor

import threading

#: Tiny-size mode for CI smoke runs (REPRO_BENCH_TINY=1): enough batches to
#: catch a wedged pipeline, too few for a stable throughput ratio.
TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

SECONDS_PER_ITEM = 0.002  # the issue's "slow transform" floor
BATCH_SIZE = 4
N_ITEMS = 32 if TINY else 96
N_CONSUMERS = 2


def make_loader():
    dataset = SyntheticImageDataset(N_ITEMS, image_size=16, payload_bytes=32)
    pipeline = SleepTransform(
        Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()]),
        seconds_per_item=SECONDS_PER_ITEM,
    )
    return DataLoader(dataset, batch_size=BATCH_SIZE, transform=pipeline)


def run_epoch(address, depth, *, direct_consumer=False):
    """One epoch at the given pipeline depth; returns (batches/sec, session pool)."""
    session = repro.serve(
        make_loader(),
        address=address,
        epochs=1,
        poll_interval=0.002,
        pipeline_depth=depth,
        pipeline_workers=None if depth == 1 else 4,
        start=False,
    )
    counts = {}

    def consume(name):
        config = ConsumerConfig(consumer_id=name, max_epochs=1, receive_timeout=30)
        if direct_consumer:
            consumer = TensorConsumer(address=session.address, config=config)
        else:
            consumer = session.consumer(config)
        counts[name] = sum(1 for _ in consumer)
        consumer.close()

    threads = [
        threading.Thread(target=consume, args=(f"bench-{i}",)) for i in range(N_CONSUMERS)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.2)  # let both consumers register before the first batch
    started = time.perf_counter()
    session.start()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - started
    alive = [t for t in threads if t.is_alive()]
    assert not alive, f"consumers wedged at depth={depth}: {alive}"
    # Leak check BEFORE shutdown(): pool.shutdown() zeroes the accounting, so
    # asserting afterwards would be vacuous.
    deadline = time.time() + 5
    while session.pool.bytes_in_flight and time.time() < deadline:
        time.sleep(0.02)
    assert session.pool.bytes_in_flight == 0, "staged batches leaked after join()"
    session.shutdown()
    expected = N_ITEMS // BATCH_SIZE
    assert all(count == expected for count in counts.values()), counts
    return expected / elapsed


@pytest.mark.overlap_ratio
def test_pipeline_overlap_speedup_inproc(bench_record):
    """Depth 4 must beat depth 1 by >= 1.3x on inproc:// (acceptance criterion).

    Marked ``overlap_ratio``: wall-clock sensitive, so CI's main test step
    deselects it and only the TINY smoke step (which skips the ratio
    assertion) runs it on shared runners.
    """
    sequential = run_epoch("inproc://bench-overlap-d1", 1)
    overlapped = max(
        run_epoch(f"inproc://bench-overlap-d4-{attempt}", 4) for attempt in range(2)
    )
    ratio = overlapped / sequential
    bench_record(
        depth_1_batches_per_sec=sequential,
        depth_4_batches_per_sec=overlapped,
        ratio=ratio,
    )
    print(
        f"\n| pipeline_depth | batches/sec |\n|---|---|\n"
        f"| 1 (sequential) | {sequential:.1f} |\n"
        f"| 4 (overlapped) | {overlapped:.1f} |\n"
        f"ratio: {ratio:.2f}x"
    )
    if TINY:
        # Tiny smoke mode checks liveness + leak-freedom, not the ratio.
        assert ratio > 0
    else:
        assert ratio >= 1.3, (
            f"overlapped pipeline only {ratio:.2f}x sequential "
            f"({overlapped:.1f} vs {sequential:.1f} batches/sec)"
        )


def test_pipeline_overlap_tcp(bench_record):
    """The overlapped pipeline behind the tcp:// broker: same delivery
    guarantees (every batch once, pool drained); throughput is printed for
    comparison with the inproc:// numbers, not asserted (loopback jitter)."""
    throughput = run_epoch("tcp://127.0.0.1:0", 4, direct_consumer=True)
    bench_record(batches_per_sec=throughput, depth=4, transport="tcp")
    print(f"\ntcp:// overlapped (depth 4): {throughput:.1f} batches/sec")
    assert throughput > 0


@pytest.mark.parametrize("depth", [1, 4])
def test_pipeline_end_to_end_throughput(benchmark, bench_record, depth):
    """pytest-benchmark timings per depth, for the bench_output.txt record."""
    batches = benchmark.pedantic(
        lambda: run_epoch(f"inproc://bench-overlap-b{depth}", depth),
        rounds=1,
        iterations=1,
    )
    bench_record(batches_per_sec=batches, depth=depth)
    assert batches > 0
