"""Observability overhead benchmark: instrumented vs. uninstrumented hot path.

The metrics registry claims a lock-free hot path (per-thread accumulation
cells, see ``repro.obs.metrics``) and the batch-lifecycle tracing claims the
stamps are cheap enough to ride every payload.  This benchmark holds both to
the acceptance criterion: the fully instrumented pipeline must stay **within
5%** of the same pipeline with recording disabled.

The workload mirrors ``test_pipeline_overlap``'s end-to-end run (2 ms/item
transform, two consumers, pipeline depth 4) — the shape the instrumentation
actually rides in production, where per-batch bookkeeping is amortized over
real load work.  ``repro.obs.metrics.set_enabled(False)`` turns every
``inc``/``observe`` into an early return without editing a single call site,
so the A and B runs execute identical data-plane code.

Runs alternate A/B (best-of-N each) so slow drift on a shared runner hits
both arms equally.  ``REPRO_BENCH_TINY=1`` keeps the liveness check but skips
the ratio assertion, like the other wall-clock benchmarks.
"""

import os
import threading
import time

import pytest

import repro
from repro.core import ConsumerConfig
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, SleepTransform, ToTensor
from repro.obs.metrics import set_enabled

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

SECONDS_PER_ITEM = 0.002
BATCH_SIZE = 4
N_ITEMS = 32 if TINY else 96
N_CONSUMERS = 2
DEPTH = 4
ATTEMPTS = 1 if TINY else 3

#: Acceptance criterion: instrumented throughput >= 95% of uninstrumented.
MAX_REGRESSION = 0.05


def make_loader():
    dataset = SyntheticImageDataset(N_ITEMS, image_size=16, payload_bytes=32)
    pipeline = SleepTransform(
        Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()]),
        seconds_per_item=SECONDS_PER_ITEM,
    )
    return DataLoader(dataset, batch_size=BATCH_SIZE, transform=pipeline)


def run_epoch(tag):
    """One instrumentation-shaped epoch; returns batches/sec."""
    session = repro.serve(
        make_loader(),
        address=f"inproc://bench-obs-overhead-{tag}",
        epochs=1,
        poll_interval=0.002,
        pipeline_depth=DEPTH,
        pipeline_workers=4,
        start=False,
    )
    counts = {}

    def consume(name):
        consumer = session.consumer(
            ConsumerConfig(consumer_id=name, max_epochs=1, receive_timeout=30)
        )
        counts[name] = sum(1 for _ in consumer)
        consumer.close()

    threads = [
        threading.Thread(target=consume, args=(f"obs-bench-{i}",))
        for i in range(N_CONSUMERS)
    ]
    for thread in threads:
        thread.start()
    time.sleep(0.2)  # let both consumers register before the first batch
    started = time.perf_counter()
    session.start()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - started
    alive = [t for t in threads if t.is_alive()]
    assert not alive, f"consumers wedged: {alive}"
    session.shutdown()
    expected = N_ITEMS // BATCH_SIZE
    assert all(count == expected for count in counts.values()), counts
    return expected / elapsed


def measure(instrumented, attempt):
    previous = set_enabled(instrumented)
    try:
        label = "on" if instrumented else "off"
        return run_epoch(f"{label}-{attempt}")
    finally:
        set_enabled(previous)


@pytest.mark.overlap_ratio
def test_obs_overhead(bench_record):
    """Instrumented within 5% of uninstrumented on the end-to-end pipeline.

    Marked ``overlap_ratio``: wall-clock sensitive, so CI's main test step
    deselects it and runs the TINY smoke variant (liveness only) under a
    timeout instead.
    """
    on_rates, off_rates = [], []
    for attempt in range(ATTEMPTS):
        # Alternate arms so runner drift is shared, not attributed to one.
        off_rates.append(measure(False, attempt))
        on_rates.append(measure(True, attempt))
    instrumented = max(on_rates)
    uninstrumented = max(off_rates)
    ratio = instrumented / uninstrumented
    bench_record(
        name="obs_overhead",
        instrumented_batches_per_sec=instrumented,
        uninstrumented_batches_per_sec=uninstrumented,
        ratio=ratio,
        max_regression=MAX_REGRESSION,
    )
    print(
        f"\n| recording | batches/sec |\n|---|---|\n"
        f"| off | {uninstrumented:.1f} |\n"
        f"| on  | {instrumented:.1f} |\n"
        f"ratio: {ratio:.3f}"
    )
    if TINY:
        # Tiny smoke mode checks liveness, not the ratio.
        assert ratio > 0
    else:
        assert ratio >= 1.0 - MAX_REGRESSION, (
            f"observability costs {100 * (1 - ratio):.1f}% of throughput "
            f"({instrumented:.1f} vs {uninstrumented:.1f} batches/sec; "
            f"budget is {100 * MAX_REGRESSION:.0f}%)"
        )
