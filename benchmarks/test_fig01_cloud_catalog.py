"""Figure 1 + Table 2: the cloud-instance catalogue and evaluation machines."""

from repro.experiments import run_figure1, run_table2


def test_fig01_cloud_catalog(experiment):
    result = experiment(run_figure1)
    aws = result.row_where(provider="aws")
    # The paper's motivation: most offerings sit at modest vCPU:GPU ratios.
    assert aws["share_at_or_below_12"] >= 0.4


def test_tab02_machine_catalog(experiment):
    result = experiment(run_table2)
    assert result.row_where(instance="g5.8xlarge")["cost_per_hour"] > result.row_where(
        instance="g5.2xlarge"
    )["cost_per_hour"]
