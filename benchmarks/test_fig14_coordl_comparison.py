"""Figure 14: CoorDL vs. TensorSocket vs. baseline scaling."""

from repro.experiments import run_figure14


def test_fig14_coordl_comparison(experiment):
    result = experiment(run_figure14)
    row = result.row_where(collocation_degree=4)
    assert row["baseline_throughput_x"] < 0.35
    assert row["coordl_cpu_x"] > row["tensorsocket_cpu_x"]
