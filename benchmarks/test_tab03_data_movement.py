"""Table 3: disk / PCIe / NVLink traffic and VRAM for 4x MobileNet L."""

from repro.experiments import run_table3


def test_tab03_data_movement(experiment):
    result = experiment(run_table3)
    baseline_disk = result.row_where(mode="baseline", gpu=0)["disk_mb_s"]
    shared_disk = result.row_where(mode="shared", gpu=0)["disk_mb_s"]
    assert shared_disk < baseline_disk / 3
    assert result.row_where(mode="shared", gpu=1)["nvlink_mb_s"] > 100
