"""Shared helpers for the benchmark harness.

Every benchmark runs one experiment driver exactly once under
pytest-benchmark's timer (``rounds=1``) — the interesting output is the
reproduced figure/table itself, which is printed so that
``pytest benchmarks/ --benchmark-only`` leaves a full paper-vs-measured record
in the captured output (see ``bench_output.txt`` / ``EXPERIMENTS.md``).

Alongside the printed markdown, every benchmark also leaves a
machine-readable record: ``BENCH_<name>.json`` under ``benchmarks/results/``
(override the directory with ``REPRO_BENCH_DIR``).  Experiment-driver
benchmarks get this automatically through the ``experiment`` fixture; the
hand-written microbenchmarks (pipeline overlap, epoch cache, shard scaling,
library microbench, broker fanout) record their headline numbers through the
``bench_record`` fixture.  Each file carries the measured payload plus enough
context to interpret it later (test name, TINY mode, schema version).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest

#: Bumped when the envelope changes shape (payload keys are per-benchmark).
BENCH_SCHEMA_VERSION = 1


def bench_results_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_DIR")
    if override:
        return Path(override)
    return Path(__file__).parent / "results"


def _bench_name(request) -> str:
    name = request.node.name
    name = re.sub(r"^test_", "", name)
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name)


def _registry_latency_columns() -> dict:
    """p50/p95/p99 batch latency from the obs registry, if any batch flowed.

    Cumulative over the pytest process (the registry is process-wide), which
    is the right envelope context: it answers "what did batches cost while
    this run produced these numbers".
    """
    try:
        from repro.obs.metrics import REGISTRY
    except ImportError:
        return {}
    latency = REGISTRY.get("repro.consumer.batch_latency_seconds")
    if latency is None or not latency.count():
        return {}
    return {
        "batch_latency_seconds": {
            "count": latency.count(),
            "p50": latency.percentile(0.50),
            "p95": latency.percentile(0.95),
            "p99": latency.percentile(0.99),
        }
    }


def emit_bench_json(request, payload: dict, *, name: str = None) -> Path:
    """Write one ``BENCH_<name>.json`` record and return its path."""
    name = name or _bench_name(request)
    directory = bench_results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": name,
        "test": request.node.nodeid,
        "tiny": os.environ.get("REPRO_BENCH_TINY") == "1",
        **_registry_latency_columns(),
        **payload,
    }
    path = directory / f"BENCH_{name}.json"

    def jsonable(value):
        # Numpy scalars and other numerics fall back to float; everything
        # else becomes its repr rather than failing the benchmark.
        try:
            return float(value)
        except (TypeError, ValueError):
            return repr(value)

    text = json.dumps(record, indent=2, default=jsonable) + "\n"
    path.write_text(text)
    # Mirror the record at the repo root (tracked in git, unlike results/),
    # so the perf trajectory is visible in history instead of staying local.
    try:
        (Path(__file__).parent.parent / f"BENCH_{name}.json").write_text(text)
    except OSError:
        pass  # read-only checkout: the results/ copy above still exists
    return path


@pytest.fixture
def bench_record(request):
    """Record this benchmark's headline numbers as ``BENCH_<name>.json``.

    Call it with the payload (``bench_record(ratio=2.1, single=..., ...)``);
    repeated calls merge into one file.  Pass ``name=`` to override the
    file-name stem derived from the test name.
    """
    state = {"payload": {}, "name": None}

    def _record(name: str = None, **fields):
        if name is not None:
            state["name"] = name
        state["payload"].update(fields)
        return emit_bench_json(request, state["payload"], name=state["name"])

    return _record


def run_experiment_once(benchmark, driver, request=None, **kwargs):
    """Run an experiment driver once under the benchmark timer and print it."""
    result = benchmark.pedantic(lambda: driver(**kwargs), rounds=1, iterations=1)
    print()
    print(result.to_markdown())
    if request is not None:
        emit_bench_json(
            request,
            {
                "experiment_id": result.experiment_id,
                "title": result.title,
                "rows": result.rows,
                "reference": result.reference,
                "notes": result.notes,
            },
        )
    return result


@pytest.fixture
def experiment(benchmark, request):
    """Fixture form of :func:`run_experiment_once`; also emits BENCH json."""

    def _run(driver, **kwargs):
        return run_experiment_once(benchmark, driver, request=request, **kwargs)

    return _run
