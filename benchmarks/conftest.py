"""Shared helpers for the benchmark harness.

Every benchmark runs one experiment driver exactly once under
pytest-benchmark's timer (``rounds=1``) — the interesting output is the
reproduced figure/table itself, which is printed so that
``pytest benchmarks/ --benchmark-only`` leaves a full paper-vs-measured record
in the captured output (see ``bench_output.txt`` / ``EXPERIMENTS.md``).
"""

from __future__ import annotations

import pytest


def run_experiment_once(benchmark, driver, **kwargs):
    """Run an experiment driver once under the benchmark timer and print it."""
    result = benchmark.pedantic(lambda: driver(**kwargs), rounds=1, iterations=1)
    print()
    print(result.to_markdown())
    return result


@pytest.fixture
def experiment(benchmark):
    """Fixture form of :func:`run_experiment_once`."""

    def _run(driver, **kwargs):
        return run_experiment_once(benchmark, driver, **kwargs)

    return _run
