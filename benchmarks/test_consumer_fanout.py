"""Consumer fan-out benchmark: 1 -> 8 -> 64 consumers on one producer.

The reactor refactor's scalability claim (ISSUE: one event loop per process
for attach, subscriptions, heartbeats, and group merge): attaching K
consumers must cost O(1) threads, and the producer must not slow down as the
fan-out grows — the paper's collocation story depends on serving many
trainers at one producer's cost.

The measurement: one CPU-bound producer (sleep-padded transform, so the load
path is the bottleneck by construction), drained concurrently by 1, 8, and
64 consumers.  Producer batches/sec must stay within 30% flat across the
sweep, and the largest run must not add any repro-owned thread beyond the
shared ``repro-reactor``.

``REPRO_BENCH_TINY=1`` switches to a smoke run (fewer items, 1 -> 8 only)
that keeps the thread-count assertion but skips the flatness ratio — too few
batches for a stable rate on shared CI runners.
"""

import os
import threading
import time

import pytest

import repro
from repro.core import ConsumerConfig
from repro.data import DataLoader, SyntheticImageDataset
from repro.data.transforms import Compose, DecodeJpeg, Normalize, SleepTransform, ToTensor

TINY = os.environ.get("REPRO_BENCH_TINY") == "1"

SECONDS_PER_ITEM = 0.004  # producer-side load cost dominates by construction
BATCH_SIZE = 4
N_ITEMS = 16 if TINY else 96
CONSUMER_COUNTS = [1, 8] if TINY else [1, 8, 64]
ATTEMPTS = 1 if TINY else 2


def make_loader():
    dataset = SyntheticImageDataset(N_ITEMS, image_size=16, payload_bytes=32)
    pipeline = SleepTransform(
        Compose([DecodeJpeg(height=16, width=16), Normalize(), ToTensor()]),
        seconds_per_item=SECONDS_PER_ITEM,
    )
    return DataLoader(dataset, batch_size=BATCH_SIZE, transform=pipeline)


def run_fanout(n_consumers, *, check_threads=False):
    """Serve one epoch to ``n_consumers`` trainers; returns (batches/sec,
    set of unexpected attach-side thread names)."""
    address = f"inproc://bench-consumer-fanout-{n_consumers}"
    session = repro.serve(make_loader(), address=address, epochs=1, start=False)
    unexpected = set()
    try:
        before = set(threading.enumerate())
        consumers = [
            session.consumer(
                ConsumerConfig(
                    consumer_id=f"fan{i}", max_epochs=1, receive_timeout=60
                )
            )
            for i in range(n_consumers)
        ]
        counts = [0] * n_consumers

        def consume(i, consumer):
            counts[i] = sum(1 for _ in consumer)

        trainers = [
            threading.Thread(
                target=consume, args=(i, c), name=f"bench-trainer-{i}"
            )
            for i, c in enumerate(consumers)
        ]
        started = time.perf_counter()
        session.start()
        for t in trainers:
            t.start()
        while any(t.is_alive() for t in trainers):
            if check_threads:
                unexpected |= {
                    t.name
                    for t in threading.enumerate()
                    if t not in before
                    and not t.name.startswith("bench-trainer-")
                    and t.name
                    not in ("repro-reactor", "repro-producer", "repro-session-describe")
                    and not t.name.endswith("-stage")
                    and not t.name.startswith("repro-loader-worker-")
                }
            time.sleep(0.005)
        for t in trainers:
            t.join(timeout=120)
        elapsed = time.perf_counter() - started
        alive = [t for t in trainers if t.is_alive()]
        assert not alive, f"consumers wedged: {alive}"
        expected = N_ITEMS // BATCH_SIZE
        assert all(count == expected for count in counts), counts
        return expected / elapsed, unexpected
    finally:
        session.shutdown()


@pytest.mark.overlap_ratio
def test_consumer_fanout_flat_producer_cost(bench_record):
    """Producer batches/sec within 30% flat from 1 to 64 consumers, and the
    widest fan-out adds no repro-owned thread beyond the shared reactor.

    Marked ``overlap_ratio``: wall-clock sensitive, so CI's main test step
    deselects it and runs the TINY smoke variant (which keeps the
    thread-count assertion) under a timeout instead; the tier-1 thread-count
    regression test lives in ``tests/test_reactor.py``."""
    rates = {}
    unexpected_threads = set()
    for n in CONSUMER_COUNTS:
        check = n == max(CONSUMER_COUNTS)
        best = 0.0
        for _attempt in range(ATTEMPTS):
            rate, unexpected = run_fanout(n, check_threads=check)
            best = max(best, rate)
            unexpected_threads |= unexpected
        rates[n] = best

    bench_record(
        name="consumer_fanout",
        consumer_counts=CONSUMER_COUNTS,
        producer_batches_per_sec={str(n): rates[n] for n in CONSUMER_COUNTS},
        flatness=min(rates.values()) / max(rates.values()),
        unexpected_threads=sorted(unexpected_threads),
    )
    rows = "\n".join(
        f"| {n} | {rates[n]:.1f} |" for n in CONSUMER_COUNTS
    )
    print(f"\n| consumers | producer batches/sec |\n|---|---|\n{rows}")

    # The thread-count assertion runs in every mode, TINY smoke included:
    # it is the regression guard for the reactor refactor.
    assert not unexpected_threads, (
        f"fan-out spawned unexpected threads: {sorted(unexpected_threads)}"
    )
    if not TINY:
        flatness = min(rates.values()) / max(rates.values())
        assert flatness >= 0.7, (
            f"producer cost not flat across fan-out: {rates} "
            f"(min/max = {flatness:.2f}, need >= 0.70)"
        )
