"""Figure 10: default vs. flexible batch sizing on the H100 server."""

from repro.experiments import run_figure10


def test_fig10_flexible_batching(experiment):
    result = experiment(run_figure10)
    default = result.row_where(mode="default")["aggregate_samples_per_s"]
    flexible = result.row_where(mode="flexible")["aggregate_samples_per_s"]
    assert flexible > 0.85 * default
