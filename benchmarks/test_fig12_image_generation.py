"""Figure 12: online DALL-E 2 training with shared CLIP inference."""

from repro.experiments import run_figure12


def test_fig12_image_generation(experiment):
    result = experiment(run_figure12)
    quad = result.row_where(collocation_degree=4)
    assert 1.05 < quad["aggregate_speedup"] < 1.35
