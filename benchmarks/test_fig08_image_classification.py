"""Figure 8: image classification, 4-way collocation on the A100 server."""

from repro.experiments import run_figure8


def test_fig08_image_classification(experiment):
    result = experiment(run_figure8)
    # Shape checks from the paper: MobileNet S ~2x, MobileNet L unaffected,
    # CPU freed across the board.
    assert result.row_where(model="MobileNet S")["speedup"] > 1.7
    assert abs(result.row_where(model="MobileNet L")["speedup"] - 1.0) < 0.1
    for row in result.rows:
        assert row["shared_cpu_percent"] < row["non_shared_cpu_percent"]
